//! Replay-engine driver: replays a synthetic workload through the
//! sharded engine and prints the merged statistics, alerts, and
//! throughput. Optionally exports the run's full telemetry snapshot.
//!
//! ```text
//! replay [synflood|mix] [shards] [interval_ms]
//!        [--shards N] [--interval-ms M] [--batch B]
//!        [--faults SPEC] [--seed N]
//!        [--metrics-out PATH] [--metrics-format prom|json]
//!        [--trace-out PATH]
//! ```
//!
//! Flags win over the positional forms. `--metrics-out` writes the
//! telemetry snapshot to PATH — JSON by default, Prometheus text
//! exposition with `--metrics-format prom`. `--trace-out` writes the
//! epoch lifecycle trace as a JSON event array.
//!
//! `--faults` runs the replay under a seeded fault schedule (see
//! `faultinject` for the spec grammar, e.g.
//! `shard_crash=1@3,ctrl_loss=0.30`); `--seed` picks the chaos seed
//! (default 0). The run then prints a `chaos:` summary line with the
//! surviving shard count, coverage, and incident tally — and the same
//! `(spec, seed)` pair always replays bit-identically.

use anomaly::synflood::SynFloodConfig;
use faultinject::FaultSchedule;
use replay::{run_replay_with_faults, ReplayConfig};
use workloads::{PacketMixWorkload, Schedule, SynFloodWorkload};

fn usage() -> ! {
    eprintln!(
        "usage: replay [synflood|mix] [shards] [interval_ms]\n\
         \x20             [--shards N] [--interval-ms M] [--batch B]\n\
         \x20             [--faults SPEC] [--seed N]\n\
         \x20             [--metrics-out PATH] [--metrics-format prom|json]\n\
         \x20             [--trace-out PATH]"
    );
    std::process::exit(2);
}

/// What the command line asked for.
struct Options {
    workload: String,
    shards: usize,
    interval_ms: u64,
    batch: usize,
    faults: Option<String>,
    seed: u64,
    metrics_out: Option<String>,
    metrics_format: MetricsFormat,
    trace_out: Option<String>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    Json,
    Prom,
}

fn parse_args(args: &[String]) -> Options {
    let mut opts = Options {
        workload: String::from("synflood"),
        shards: 4,
        interval_ms: 10,
        batch: 256,
        faults: None,
        seed: 0,
        metrics_out: None,
        metrics_format: MetricsFormat::Json,
        trace_out: None,
    };
    let mut positional = 0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("replay: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--shards" => {
                opts.shards = flag_value("--shards").parse().unwrap_or_else(|_| usage());
            }
            "--interval-ms" => {
                opts.interval_ms = flag_value("--interval-ms")
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            "--batch" => {
                opts.batch = flag_value("--batch").parse().unwrap_or_else(|_| usage());
            }
            "--faults" => opts.faults = Some(flag_value("--faults")),
            "--seed" => {
                opts.seed = flag_value("--seed").parse().unwrap_or_else(|_| usage());
            }
            "--metrics-out" => opts.metrics_out = Some(flag_value("--metrics-out")),
            "--metrics-format" => {
                opts.metrics_format = match flag_value("--metrics-format").as_str() {
                    "json" => MetricsFormat::Json,
                    "prom" => MetricsFormat::Prom,
                    other => {
                        eprintln!("replay: unknown metrics format {other:?} (want prom|json)");
                        usage()
                    }
                };
            }
            "--trace-out" => opts.trace_out = Some(flag_value("--trace-out")),
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => {
                eprintln!("replay: unknown flag {flag}");
                usage()
            }
            positional_arg => {
                match positional {
                    0 => opts.workload = positional_arg.to_string(),
                    1 => opts.shards = positional_arg.parse().unwrap_or_else(|_| usage()),
                    2 => opts.interval_ms = positional_arg.parse().unwrap_or_else(|_| usage()),
                    _ => usage(),
                }
                positional += 1;
            }
        }
    }
    if opts.shards == 0 {
        eprintln!("replay: shards must be at least 1");
        usage();
    }
    if opts.interval_ms == 0 {
        eprintln!("replay: interval_ms must be at least 1");
        usage();
    }
    if opts.batch == 0 {
        eprintln!("replay: batch must be at least 1");
        usage();
    }
    opts
}

fn generate(name: &str) -> Schedule {
    match name {
        "synflood" => {
            let (s, victim) = SynFloodWorkload {
                background_cps: 500,
                flood_pps: 50_000,
                flood_start: 400_000_000,
                duration: 900_000_000,
                seed: 4,
                ..SynFloodWorkload::default()
            }
            .generate();
            println!("workload: synflood (victim {victim}, onset 400 ms)");
            s
        }
        "mix" => {
            let (s, _) = PacketMixWorkload {
                packets: 100_000,
                ..PacketMixWorkload::default()
            }
            .generate();
            println!("workload: mix (100k packets, stable composition)");
            s
        }
        _ => usage(),
    }
}

fn write_or_die(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("replay: cannot write {what} to {path}: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args);

    let schedule = generate(&opts.workload);
    let cfg = ReplayConfig {
        shards: opts.shards,
        batch: opts.batch,
        detector: SynFloodConfig {
            interval_ns: opts.interval_ms * 1_000_000,
            ..SynFloodConfig::default()
        },
    };
    let faults = match &opts.faults {
        Some(spec) => match FaultSchedule::parse(spec, opts.seed) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("replay: {e}");
                std::process::exit(2);
            }
        },
        None => FaultSchedule::none(),
    };
    let out = run_replay_with_faults(&schedule, &cfg, &faults);

    println!(
        "replayed {} packets over {} epochs on {} shard(s) in {:.1} ms ({:.0} pkt/s)",
        out.packets,
        out.epochs,
        opts.shards,
        out.elapsed.as_secs_f64() * 1e3,
        out.throughput_pps(),
    );
    println!(
        "merged: mean frame len = {} B (N·x domain /{}), median len = {:?} B, kinds seen = {}",
        if out.merged.len_stats.n() > 0 {
            out.merged.len_stats.xsum() / out.merged.len_stats.n() as i64
        } else {
            0
        },
        out.merged.len_stats.n(),
        out.merged.len_median.estimate(0),
        out.merged.kinds.n_distinct(),
    );
    match out.detected_at {
        Some(at) => println!(
            "alerts: {} (first at {:.1} ms)",
            out.alerts.len(),
            at as f64 / 1e6
        ),
        None => println!("alerts: none"),
    }
    if opts.faults.is_some() {
        let h = &out.health;
        println!(
            "chaos: seed {} | shards alive {}/{}, coverage {:.1}%, incidents {}, \
             reports dropped {}, rerouted {} frames",
            opts.seed,
            h.shards_alive,
            h.shards_configured,
            h.coverage() * 100.0,
            h.incidents.len(),
            h.reports_dropped,
            h.packets_rerouted,
        );
        for inc in &h.incidents {
            println!(
                "chaos: shard {} quarantined at epoch {}: {:?}",
                inc.shard, inc.epoch, inc.kind
            );
        }
    }

    if let Some(path) = &opts.metrics_out {
        let snap = out.telemetry.snapshot();
        let rendered = match opts.metrics_format {
            MetricsFormat::Json => telemetry::render_json(&snap),
            MetricsFormat::Prom => telemetry::render_prometheus(&snap),
        };
        write_or_die(path, &rendered, "metrics");
        println!(
            "metrics: {} families / {} samples written to {path}",
            snap.metrics.len(),
            snap.sample_count(),
        );
    }
    if let Some(path) = &opts.trace_out {
        write_or_die(path, &out.telemetry.trace.to_json(), "trace");
        println!(
            "trace: {} events written to {path} ({} dropped at cap)",
            out.telemetry.trace.events().len(),
            out.telemetry.trace.dropped(),
        );
    }
}
