//! Replay-engine driver: replays a synthetic workload through the
//! sharded engine and prints the merged statistics, alerts, and
//! throughput.
//!
//! ```text
//! replay [synflood|mix] [shards] [interval_ms]
//! ```

use anomaly::synflood::SynFloodConfig;
use replay::{run_replay, ReplayConfig};
use workloads::{PacketMixWorkload, Schedule, SynFloodWorkload};

fn usage() -> ! {
    eprintln!("usage: replay [synflood|mix] [shards] [interval_ms]");
    std::process::exit(2);
}

fn generate(name: &str) -> Schedule {
    match name {
        "synflood" => {
            let (s, victim) = SynFloodWorkload {
                background_cps: 500,
                flood_pps: 50_000,
                flood_start: 400_000_000,
                duration: 900_000_000,
                seed: 4,
                ..SynFloodWorkload::default()
            }
            .generate();
            println!("workload: synflood (victim {victim}, onset 400 ms)");
            s
        }
        "mix" => {
            let (s, _) = PacketMixWorkload {
                packets: 100_000,
                ..PacketMixWorkload::default()
            }
            .generate();
            println!("workload: mix (100k packets, stable composition)");
            s
        }
        _ => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args.first().map_or("synflood", String::as_str);
    let shards: usize = args
        .get(1)
        .map_or(Ok(4), |a| a.parse())
        .unwrap_or_else(|_| usage());
    let interval_ms: u64 = args
        .get(2)
        .map_or(Ok(10), |a| a.parse())
        .unwrap_or_else(|_| usage());
    if shards == 0 {
        eprintln!("replay: shards must be at least 1");
        usage();
    }
    if interval_ms == 0 {
        eprintln!("replay: interval_ms must be at least 1");
        usage();
    }

    let schedule = generate(workload);
    let cfg = ReplayConfig {
        shards,
        detector: SynFloodConfig {
            interval_ns: interval_ms * 1_000_000,
            ..SynFloodConfig::default()
        },
        ..ReplayConfig::default()
    };
    let out = run_replay(&schedule, &cfg);

    println!(
        "replayed {} packets over {} epochs on {} shard(s) in {:.1} ms ({:.0} pkt/s)",
        out.packets,
        out.epochs,
        shards,
        out.elapsed.as_secs_f64() * 1e3,
        out.throughput_pps(),
    );
    println!(
        "merged: mean frame len = {} B (N·x domain /{}), median len = {:?} B, kinds seen = {}",
        if out.merged.len_stats.n() > 0 {
            out.merged.len_stats.xsum() / out.merged.len_stats.n() as i64
        } else {
            0
        },
        out.merged.len_stats.n(),
        out.merged.len_median.estimate(0),
        out.merged.kinds.n_distinct(),
    );
    match out.detected_at {
        Some(at) => println!(
            "alerts: {} (first at {:.1} ms)",
            out.alerts.len(),
            at as f64 / 1e6
        ),
        None => println!("alerts: none"),
    }
}
