//! Crash-consistent epoch checkpoints for the replay pool.
//!
//! At a configurable epoch cadence the coordinator serializes its full
//! deterministic state — the per-shard tracker sets (via the raw
//! export/import constructors in `stat4-core`), the supervisor's
//! degraded-mode bookkeeping, the delivered-signal log the detection
//! ensemble replays on resume, alert provenance verbatim, and the
//! lifecycle generation plus the optional data-plane shadow registers —
//! into one versioned JSON document guarded by an FNV-1a 64 checksum.
//!
//! **Write discipline.** A checkpoint is written to a temp file in the
//! same directory, fsynced, then atomically renamed into place (and the
//! directory fsynced, best effort). A crash mid-write therefore leaves
//! either the previous checkpoint set intact or a stray temp file the
//! loader ignores — never a half-written `ckpt-*.json`. The
//! `ckpt_corrupt` fault domain injects torn writes / bit rot *after*
//! the checksum is computed, so the loader's validation path is
//! testable.
//!
//! **Read discipline.** [`load_latest`] scans the directory newest
//! ordinal first and returns the first checkpoint whose magic, version
//! and checksum all validate, reporting every rejected file — a torn
//! or rotted newest checkpoint falls back to its predecessor instead
//! of wedging recovery.
//!
//! **Why a signal log instead of serialized engines.** The detection
//! ensemble and the drilldown ladder are path-dependent objects with
//! private state spread over eight engines. Rather than chase every
//! field, the checkpoint stores the exact per-interval inputs they
//! observed ([`ContextEntry`]); [`Checkpoint::rebuild_detection`]
//! replays them (with any committed weight overrides re-applied at
//! their original positions) through fresh instances. Detection is a
//! pure function of that input sequence, so the rebuilt state — engine
//! internals, fired log, metrics, ladder phase — is bit-identical to
//! the state at checkpoint time.

use crate::provenance::AlertProvenanceRecord;
use crate::snapshot::{
    ju, jus, obj, opt_u64, parse_record, record_json, req, req_arr, req_i64, req_str, req_u64,
    req_usize,
};
use crate::{build_ensemble, IncidentKind, ReplayConfig, ShardIncident, ShardState};
use anomaly::{Ensemble, ScoreDrilldown, SignalContext, SignalValues};
use faultinject::{CkptCorruption, FaultSchedule};
use p4sim::PipelineState;
use stat4_core::freq::FrequencyDist;
use stat4_core::hll::HyperLogLog;
use stat4_core::percentile::{MarkerRaw, PercentileSet};
use stat4_core::running::RunningStats;
use stat4_core::sketch::CountMinSketch;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use telemetry::json::render;
use telemetry::Json;

/// First bytes of every checkpoint document.
pub const MAGIC: &str = "stat4-replay-ckpt";
/// Current checkpoint format version; parsers reject anything newer.
pub const VERSION: u64 = 1;

/// FNV-1a 64 — the checksum guarding a checkpoint payload. Chosen for
/// the same reason the fault injector uses SplitMix64: dependency-free,
/// deterministic, and plenty to catch torn writes and bit rot (this is
/// an integrity check, not an adversarial MAC).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Raw serialized form of one shard's full tracker set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStateRaw {
    /// Kind-distribution domain minimum.
    pub kinds_min: i64,
    /// Kind-distribution cell counts.
    pub kinds_counts: Vec<u64>,
    /// Length-moment sample count.
    pub len_n: u64,
    /// Length-moment running sum.
    pub len_xsum: i64,
    /// Length-moment running sum of squares.
    pub len_xsumsq: i64,
    /// Sketch row count.
    pub sk_rows: usize,
    /// Sketch width as a power of two.
    pub sk_width_log2: u32,
    /// Sketch cells, row-major.
    pub sk_cells: Vec<u64>,
    /// Sketch total updates.
    pub sk_total: u64,
    /// Percentile domain minimum.
    pub pc_min: i64,
    /// Percentile domain maximum.
    pub pc_max: i64,
    /// Percentile cell counts.
    pub pc_counts: Vec<u64>,
    /// Percentile total observations.
    pub pc_total: u64,
    /// Percentile markers, path-dependent state included.
    pub pc_markers: Vec<MarkerRaw>,
    /// HLL precision.
    pub hll_precision: u32,
    /// HLL registers.
    pub hll_registers: Vec<u8>,
    /// Frames ingested by this shard.
    pub packets: u64,
    /// SYNs in the open interval.
    pub syn_in_interval: i64,
    /// Frames in the open interval.
    pub packets_in_interval: i64,
    /// Frame-length sum of the open interval.
    pub len_sum_in_interval: i64,
}

impl ShardStateRaw {
    /// Captures the raw form of `s`.
    #[must_use]
    pub fn of(s: &ShardState) -> Self {
        Self {
            kinds_min: s.kinds.min_value(),
            kinds_counts: s.kinds.counts().to_vec(),
            len_n: s.len_stats.n(),
            len_xsum: s.len_stats.xsum(),
            len_xsumsq: s.len_stats.xsumsq(),
            sk_rows: s.dst_sketch.rows(),
            sk_width_log2: s.dst_sketch.width_log2(),
            sk_cells: s.dst_sketch.cells().to_vec(),
            sk_total: s.dst_sketch.total(),
            pc_min: s.len_median.domain().0,
            pc_max: s.len_median.domain().1,
            pc_counts: s.len_median.counts().to_vec(),
            pc_total: s.len_median.total(),
            pc_markers: s.len_median.export_markers(),
            hll_precision: s.src_hll.precision(),
            hll_registers: s.src_hll.registers().to_vec(),
            packets: s.packets,
            syn_in_interval: s.syn_in_interval,
            packets_in_interval: s.packets_in_interval,
            len_sum_in_interval: s.len_sum_in_interval,
        }
    }

    /// Rebuilds the live state, validating every tracker's geometry.
    ///
    /// # Errors
    ///
    /// A description of the first tracker whose raw state is
    /// inconsistent (wrong cell-array length, out-of-range register,
    /// degenerate quantile weights).
    pub fn restore(&self) -> Result<ShardState, String> {
        if !(1..=64).contains(&self.sk_rows) || self.sk_width_log2 >= 28 {
            return Err(String::from("sketch geometry out of range"));
        }
        if self.sk_cells.len() != self.sk_rows << self.sk_width_log2 {
            return Err(String::from("sketch cell array length mismatch"));
        }
        Ok(ShardState {
            kinds: FrequencyDist::from_raw_counts(self.kinds_min, self.kinds_counts.clone())
                .map_err(|e| format!("kind distribution: {e}"))?,
            len_stats: RunningStats::from_raw(self.len_n, self.len_xsum, self.len_xsumsq),
            dst_sketch: CountMinSketch::from_raw(
                self.sk_rows,
                self.sk_width_log2,
                self.sk_cells.clone(),
                self.sk_total,
            ),
            len_median: PercentileSet::from_raw(
                self.pc_min,
                self.pc_max,
                self.pc_counts.clone(),
                self.pc_total,
                &self.pc_markers,
            )
            .map_err(|e| format!("length median: {e}"))?,
            src_hll: HyperLogLog::from_registers(self.hll_precision, self.hll_registers.clone())
                .map_err(|e| format!("source HLL: {e}"))?,
            packets: self.packets,
            syn_in_interval: self.syn_in_interval,
            packets_in_interval: self.packets_in_interval,
            len_sum_in_interval: self.len_sum_in_interval,
            // Restored trackers re-base their delta journals at the
            // restored values, so the delta baseline matches.
            taken_packets: self.packets,
        })
    }
}

/// One delivered epoch report: everything the detection ensemble read
/// for that interval. The scalar signals plus the two merged trackers
/// the [`SignalContext`] borrows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextEntry {
    /// The scalar signal values.
    pub signals: SignalValues,
    /// Merged kind-distribution domain minimum at that epoch.
    pub kinds_min: i64,
    /// Merged kind-distribution counts at that epoch.
    pub kinds_counts: Vec<u64>,
    /// Merged length-moment `N`.
    pub len_n: u64,
    /// Merged length-moment `Xsum`.
    pub len_xsum: i64,
    /// Merged length-moment `Xsumsq`.
    pub len_xsumsq: i64,
}

/// A committed ensemble weight override, positioned by how many epoch
/// reports the ensemble had observed when it was applied — replaying
/// the log applies it at exactly the same point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverrideEntry {
    /// Ensemble observations made before this override took effect.
    pub after_observes: u64,
    /// Engine name.
    pub engine: String,
    /// Q16 weight, or `None` to restore the engine's own weight.
    pub weight: Option<i64>,
}

/// Everything needed to continue a replay bit-identically from an
/// epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Index into the run's epoch-range list where processing resumes.
    pub next_ordinal: usize,
    /// 0-based ordinal of this checkpoint within its run (file name,
    /// corruption-injection key).
    pub checkpoint_ordinal: u64,
    /// Shards the run was configured with.
    pub cfg_shards: usize,
    /// Batch size the run was configured with.
    pub cfg_batch: usize,
    /// Detector interval the run was configured with.
    pub cfg_interval_ns: u64,
    /// Frames in the schedule (resume sanity check).
    pub schedule_packets: u64,
    /// Fault spec string the run was started with.
    pub faults_spec: String,
    /// Chaos seed the run was started with.
    pub fault_seed: u64,
    /// Frames replayed so far.
    pub packets: u64,
    /// Epochs closed so far.
    pub epochs: u64,
    /// Frames rerouted so far.
    pub packets_rerouted: u64,
    /// Epoch reports dropped so far.
    pub reports_dropped: u64,
    /// Report-loss carry-forward: SYNs.
    pub carried_syns: i64,
    /// Report-loss carry-forward: frames.
    pub carried_packets: i64,
    /// Report-loss carry-forward: length sum.
    pub carried_len_sum: i64,
    /// Report-loss carry-forward: spanned intervals.
    pub carried_epochs: i64,
    /// Epoch ordinals of the carried (dropped) reports.
    pub carried_from: Vec<u64>,
    /// Per-shard liveness.
    pub alive: Vec<bool>,
    /// Per-shard state; `None` for shards whose state died with a
    /// panicked worker.
    pub shards: Vec<Option<ShardStateRaw>>,
    /// Every quarantine incident so far, in occurrence order.
    pub incidents: Vec<ShardIncident>,
    /// Every delivered epoch report, in delivery order — the ensemble
    /// warm-replay log.
    pub context_log: Vec<ContextEntry>,
    /// Committed weight overrides, in commit order.
    pub overrides: Vec<OverrideEntry>,
    /// Alert provenance records, restored verbatim.
    pub provenance: Vec<AlertProvenanceRecord>,
    /// Reconfiguration generation at the checkpoint.
    pub generation: u64,
    /// Committed reconfiguration transactions so far (stale-duplicate
    /// rejection continues where it left off).
    pub swaps_committed: u64,
    /// Data-plane shadow register state, when a program is installed.
    pub pipeline: Option<PipelineState>,
}

impl Checkpoint {
    /// Rebuilds the detection ensemble and the drilldown ladder by
    /// replaying the delivered-signal log (with committed weight
    /// overrides re-applied at their original positions) through fresh
    /// instances. Returns the pair plus the restored override layer.
    #[must_use]
    pub fn rebuild_detection(&self, cfg: &ReplayConfig) -> (Ensemble, ScoreDrilldown) {
        let mut ensemble = build_ensemble(cfg);
        let mut drill = ScoreDrilldown::new(cfg.ensemble.trigger);
        let mut next_override = 0usize;
        for (i, entry) in self.context_log.iter().enumerate() {
            while let Some(o) = self.overrides.get(next_override) {
                if o.after_observes as usize > i {
                    break;
                }
                let _ = ensemble.set_weight_override(&o.engine, o.weight);
                next_override += 1;
            }
            let kinds = FrequencyDist::from_raw_counts(entry.kinds_min, entry.kinds_counts.clone())
                .expect("validated kind log entry");
            let len_stats =
                RunningStats::from_raw(entry.len_n, entry.len_xsum, entry.len_xsumsq);
            let s = &entry.signals;
            let ctx = SignalContext {
                at: s.at,
                epoch: s.epoch,
                interval_ns: s.interval_ns,
                spanned: s.spanned,
                packets: s.packets,
                syns: s.syns,
                len_sum: s.len_sum,
                distinct_sources: s.distinct_sources,
                median_len: s.median_len,
                kinds: &kinds,
                len_stats: &len_stats,
            };
            let verdict = ensemble.observe(&ctx);
            // The ladder's phase/generation/quiet counters advance on
            // every verdict; the outcome itself was recorded in the
            // provenance log at first firing, which resumes verbatim.
            let _ = drill.observe(&verdict);
        }
        while let Some(o) = self.overrides.get(next_override) {
            let _ = ensemble.set_weight_override(&o.engine, o.weight);
            next_override += 1;
        }
        (ensemble, drill)
    }
}

// ---- render ---------------------------------------------------------

fn jb(v: bool) -> Json {
    Json::Bool(v)
}

fn jopt_i64(v: Option<i64>) -> Json {
    v.map_or(Json::Null, Json::Int)
}

fn signals_json(s: &SignalValues) -> Json {
    obj(vec![
        ("at", ju(s.at)),
        ("epoch", ju(s.epoch)),
        ("interval_ns", ju(s.interval_ns)),
        ("spanned", Json::Int(s.spanned)),
        ("packets", Json::Int(s.packets)),
        ("syns", Json::Int(s.syns)),
        ("len_sum", Json::Int(s.len_sum)),
        ("distinct_sources", Json::Int(s.distinct_sources)),
        ("median_len", Json::Int(s.median_len)),
    ])
}

fn u64_arr(v: &[u64]) -> Json {
    Json::Arr(v.iter().map(|&x| ju(x)).collect())
}

fn shard_json(s: &ShardStateRaw) -> Json {
    obj(vec![
        ("kinds_min", Json::Int(s.kinds_min)),
        ("kinds_counts", u64_arr(&s.kinds_counts)),
        ("len_n", ju(s.len_n)),
        ("len_xsum", Json::Int(s.len_xsum)),
        ("len_xsumsq", Json::Int(s.len_xsumsq)),
        ("sk_rows", jus(s.sk_rows)),
        ("sk_width_log2", ju(u64::from(s.sk_width_log2))),
        ("sk_cells", u64_arr(&s.sk_cells)),
        ("sk_total", ju(s.sk_total)),
        ("pc_min", Json::Int(s.pc_min)),
        ("pc_max", Json::Int(s.pc_max)),
        ("pc_counts", u64_arr(&s.pc_counts)),
        ("pc_total", ju(s.pc_total)),
        (
            "pc_markers",
            Json::Arr(
                s.pc_markers
                    .iter()
                    .map(|m| {
                        obj(vec![
                            ("low_weight", ju(u64::from(m.low_weight))),
                            ("high_weight", ju(u64::from(m.high_weight))),
                            (
                                "pos",
                                m.pos.map_or(Json::Null, jus),
                            ),
                            ("low", ju(m.low)),
                            ("high", ju(m.high)),
                            ("moves", ju(m.moves)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("hll_precision", ju(u64::from(s.hll_precision))),
        (
            "hll_registers",
            Json::Arr(s.hll_registers.iter().map(|&r| ju(u64::from(r))).collect()),
        ),
        ("packets", ju(s.packets)),
        ("syn_in_interval", Json::Int(s.syn_in_interval)),
        ("packets_in_interval", Json::Int(s.packets_in_interval)),
        ("len_sum_in_interval", Json::Int(s.len_sum_in_interval)),
    ])
}

fn incident_json(i: &ShardIncident) -> Json {
    let (kind, msg) = match &i.kind {
        IncidentKind::Crashed => ("crashed", String::new()),
        IncidentKind::Panicked(m) => ("panicked", m.clone()),
        IncidentKind::MergeFailed(m) => ("merge_failed", m.clone()),
    };
    obj(vec![
        ("shard", jus(i.shard)),
        ("epoch", ju(i.epoch)),
        ("kind", Json::Str(kind.to_string())),
        ("msg", Json::Str(msg)),
    ])
}

fn pipeline_json(p: &PipelineState) -> Json {
    obj(vec![
        (
            "registers",
            Json::Arr(
                p.registers
                    .iter()
                    .map(|(name, cells)| {
                        obj(vec![
                            ("name", Json::Str(name.clone())),
                            ("cells", u64_arr(cells)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("packets_processed", ju(p.packets_processed)),
    ])
}

fn payload_json(c: &Checkpoint) -> Json {
    obj(vec![
        ("next_ordinal", jus(c.next_ordinal)),
        ("checkpoint_ordinal", ju(c.checkpoint_ordinal)),
        ("cfg_shards", jus(c.cfg_shards)),
        ("cfg_batch", jus(c.cfg_batch)),
        ("cfg_interval_ns", ju(c.cfg_interval_ns)),
        ("schedule_packets", ju(c.schedule_packets)),
        ("faults_spec", Json::Str(c.faults_spec.clone())),
        ("fault_seed", ju(c.fault_seed)),
        ("packets", ju(c.packets)),
        ("epochs", ju(c.epochs)),
        ("packets_rerouted", ju(c.packets_rerouted)),
        ("reports_dropped", ju(c.reports_dropped)),
        ("carried_syns", Json::Int(c.carried_syns)),
        ("carried_packets", Json::Int(c.carried_packets)),
        ("carried_len_sum", Json::Int(c.carried_len_sum)),
        ("carried_epochs", Json::Int(c.carried_epochs)),
        ("carried_from", u64_arr(&c.carried_from)),
        ("alive", Json::Arr(c.alive.iter().map(|&a| jb(a)).collect())),
        (
            "shards",
            Json::Arr(
                c.shards
                    .iter()
                    .map(|s| s.as_ref().map_or(Json::Null, shard_json))
                    .collect(),
            ),
        ),
        (
            "incidents",
            Json::Arr(c.incidents.iter().map(incident_json).collect()),
        ),
        (
            "context_log",
            Json::Arr(
                c.context_log
                    .iter()
                    .map(|e| {
                        obj(vec![
                            ("signals", signals_json(&e.signals)),
                            ("kinds_min", Json::Int(e.kinds_min)),
                            ("kinds_counts", u64_arr(&e.kinds_counts)),
                            ("len_n", ju(e.len_n)),
                            ("len_xsum", Json::Int(e.len_xsum)),
                            ("len_xsumsq", Json::Int(e.len_xsumsq)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "overrides",
            Json::Arr(
                c.overrides
                    .iter()
                    .map(|o| {
                        obj(vec![
                            ("after_observes", ju(o.after_observes)),
                            ("engine", Json::Str(o.engine.clone())),
                            ("weight", jopt_i64(o.weight)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "provenance",
            Json::Arr(c.provenance.iter().map(record_json).collect()),
        ),
        ("generation", ju(c.generation)),
        ("swaps_committed", ju(c.swaps_committed)),
        (
            "pipeline",
            c.pipeline.as_ref().map_or(Json::Null, pipeline_json),
        ),
    ])
}

/// Serializes a checkpoint into its on-disk document: magic, version,
/// checksum over the canonical payload rendering, then the payload.
#[must_use]
pub fn serialize(c: &Checkpoint) -> String {
    let payload = payload_json(c);
    let body = render(&payload);
    let sum = fnv1a64(body.as_bytes());
    render(&obj(vec![
        ("magic", Json::Str(MAGIC.to_string())),
        ("version", ju(VERSION)),
        ("checksum", Json::Str(format!("{sum:016x}"))),
        ("payload", payload),
    ]))
}

// ---- parse ----------------------------------------------------------

fn parse_signals(v: &Json, path: &str) -> Result<SignalValues, String> {
    Ok(SignalValues {
        at: req_u64(v, "at", path)?,
        epoch: req_u64(v, "epoch", path)?,
        interval_ns: req_u64(v, "interval_ns", path)?,
        spanned: req_i64(v, "spanned", path)?,
        packets: req_i64(v, "packets", path)?,
        syns: req_i64(v, "syns", path)?,
        len_sum: req_i64(v, "len_sum", path)?,
        distinct_sources: req_i64(v, "distinct_sources", path)?,
        median_len: req_i64(v, "median_len", path)?,
    })
}

fn req_u64_arr(v: &Json, key: &str, path: &str) -> Result<Vec<u64>, String> {
    req_arr(v, key, path)?
        .iter()
        .enumerate()
        .map(|(i, x)| {
            x.as_u64()
                .ok_or_else(|| format!("{path}: {key}[{i}] is not a non-negative integer"))
        })
        .collect()
}

fn parse_shard(v: &Json, path: &str) -> Result<ShardStateRaw, String> {
    let pc_markers = req_arr(v, "pc_markers", path)?
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let mp = format!("{path}.pc_markers[{i}]");
            Ok(MarkerRaw {
                low_weight: u32::try_from(req_u64(m, "low_weight", &mp)?)
                    .map_err(|_| format!("{mp}: \"low_weight\" overflows u32"))?,
                high_weight: u32::try_from(req_u64(m, "high_weight", &mp)?)
                    .map_err(|_| format!("{mp}: \"high_weight\" overflows u32"))?,
                pos: opt_u64(m, "pos", &mp)?
                    .map(|p| {
                        usize::try_from(p).map_err(|_| format!("{mp}: \"pos\" overflows usize"))
                    })
                    .transpose()?,
                low: req_u64(m, "low", &mp)?,
                high: req_u64(m, "high", &mp)?,
                moves: req_u64(m, "moves", &mp)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let hll_registers = req_arr(v, "hll_registers", path)?
        .iter()
        .enumerate()
        .map(|(i, r)| {
            r.as_u64()
                .and_then(|x| u8::try_from(x).ok())
                .ok_or_else(|| format!("{path}: hll_registers[{i}] is not a register rank"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ShardStateRaw {
        kinds_min: req_i64(v, "kinds_min", path)?,
        kinds_counts: req_u64_arr(v, "kinds_counts", path)?,
        len_n: req_u64(v, "len_n", path)?,
        len_xsum: req_i64(v, "len_xsum", path)?,
        len_xsumsq: req_i64(v, "len_xsumsq", path)?,
        sk_rows: req_usize(v, "sk_rows", path)?,
        sk_width_log2: u32::try_from(req_u64(v, "sk_width_log2", path)?)
            .map_err(|_| format!("{path}: \"sk_width_log2\" overflows u32"))?,
        sk_cells: req_u64_arr(v, "sk_cells", path)?,
        sk_total: req_u64(v, "sk_total", path)?,
        pc_min: req_i64(v, "pc_min", path)?,
        pc_max: req_i64(v, "pc_max", path)?,
        pc_counts: req_u64_arr(v, "pc_counts", path)?,
        pc_total: req_u64(v, "pc_total", path)?,
        pc_markers,
        hll_precision: u32::try_from(req_u64(v, "hll_precision", path)?)
            .map_err(|_| format!("{path}: \"hll_precision\" overflows u32"))?,
        hll_registers,
        packets: req_u64(v, "packets", path)?,
        syn_in_interval: req_i64(v, "syn_in_interval", path)?,
        packets_in_interval: req_i64(v, "packets_in_interval", path)?,
        len_sum_in_interval: req_i64(v, "len_sum_in_interval", path)?,
    })
}

fn parse_incident(v: &Json, path: &str) -> Result<ShardIncident, String> {
    let msg = req_str(v, "msg", path)?;
    let kind = match req_str(v, "kind", path)?.as_str() {
        "crashed" => IncidentKind::Crashed,
        "panicked" => IncidentKind::Panicked(msg),
        "merge_failed" => IncidentKind::MergeFailed(msg),
        other => return Err(format!("{path}: unknown incident kind {other:?}")),
    };
    Ok(ShardIncident {
        shard: req_usize(v, "shard", path)?,
        epoch: req_u64(v, "epoch", path)?,
        kind,
    })
}

fn parse_pipeline(v: &Json, path: &str) -> Result<PipelineState, String> {
    let registers = req_arr(v, "registers", path)?
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let rp = format!("{path}.registers[{i}]");
            Ok((req_str(r, "name", &rp)?, req_u64_arr(r, "cells", &rp)?))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(PipelineState {
        registers,
        packets_processed: req_u64(v, "packets_processed", path)?,
    })
}

/// Parses a checkpoint document, validating magic, version and
/// checksum before any field is interpreted.
///
/// # Errors
///
/// A description of the first structural problem: bad magic, an
/// unsupported version, a checksum mismatch (the torn-write signal), or
/// a missing/mistyped field with its path.
pub fn parse(text: &str) -> Result<Checkpoint, String> {
    let doc = Json::parse(text)?;
    let magic = req_str(&doc, "magic", "$")?;
    if magic != MAGIC {
        return Err(format!("not a checkpoint: magic {magic:?}"));
    }
    let version = req_u64(&doc, "version", "$")?;
    if version > VERSION {
        return Err(format!(
            "checkpoint version {version} is newer than supported {VERSION}"
        ));
    }
    let want = req_str(&doc, "checksum", "$")?;
    let payload = req(&doc, "payload", "$")?;
    let got = format!("{:016x}", fnv1a64(render(payload).as_bytes()));
    if got != want {
        return Err(format!(
            "checksum mismatch: payload hashes to {got}, header says {want}"
        ));
    }
    let p = payload;
    let pp = "$.payload";
    let alive = req_arr(p, "alive", pp)?
        .iter()
        .enumerate()
        .map(|(i, a)| {
            a.as_bool()
                .ok_or_else(|| format!("{pp}: alive[{i}] is not a boolean"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let shards = req_arr(p, "shards", pp)?
        .iter()
        .enumerate()
        .map(|(i, s)| {
            if s.is_null() {
                Ok(None)
            } else {
                parse_shard(s, &format!("{pp}.shards[{i}]")).map(Some)
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    let incidents = req_arr(p, "incidents", pp)?
        .iter()
        .enumerate()
        .map(|(i, v)| parse_incident(v, &format!("{pp}.incidents[{i}]")))
        .collect::<Result<Vec<_>, _>>()?;
    let context_log = req_arr(p, "context_log", pp)?
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let ep = format!("{pp}.context_log[{i}]");
            Ok(ContextEntry {
                signals: parse_signals(req(e, "signals", &ep)?, &format!("{ep}.signals"))?,
                kinds_min: req_i64(e, "kinds_min", &ep)?,
                kinds_counts: req_u64_arr(e, "kinds_counts", &ep)?,
                len_n: req_u64(e, "len_n", &ep)?,
                len_xsum: req_i64(e, "len_xsum", &ep)?,
                len_xsumsq: req_i64(e, "len_xsumsq", &ep)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let overrides = req_arr(p, "overrides", pp)?
        .iter()
        .enumerate()
        .map(|(i, o)| {
            let op = format!("{pp}.overrides[{i}]");
            let w = req(o, "weight", &op)?;
            let weight = if w.is_null() {
                None
            } else {
                Some(
                    w.as_i64()
                        .ok_or_else(|| format!("{op}: \"weight\" is neither null nor an integer"))?,
                )
            };
            Ok(OverrideEntry {
                after_observes: req_u64(o, "after_observes", &op)?,
                engine: req_str(o, "engine", &op)?,
                weight,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let provenance = req_arr(p, "provenance", pp)?
        .iter()
        .enumerate()
        .map(|(i, r)| parse_record(r, &format!("{pp}.provenance[{i}]")))
        .collect::<Result<Vec<_>, _>>()?;
    let pipe = req(p, "pipeline", pp)?;
    let pipeline = if pipe.is_null() {
        None
    } else {
        Some(parse_pipeline(pipe, &format!("{pp}.pipeline"))?)
    };
    Ok(Checkpoint {
        next_ordinal: req_usize(p, "next_ordinal", pp)?,
        checkpoint_ordinal: req_u64(p, "checkpoint_ordinal", pp)?,
        cfg_shards: req_usize(p, "cfg_shards", pp)?,
        cfg_batch: req_usize(p, "cfg_batch", pp)?,
        cfg_interval_ns: req_u64(p, "cfg_interval_ns", pp)?,
        schedule_packets: req_u64(p, "schedule_packets", pp)?,
        faults_spec: req_str(p, "faults_spec", pp)?,
        fault_seed: req_u64(p, "fault_seed", pp)?,
        packets: req_u64(p, "packets", pp)?,
        epochs: req_u64(p, "epochs", pp)?,
        packets_rerouted: req_u64(p, "packets_rerouted", pp)?,
        reports_dropped: req_u64(p, "reports_dropped", pp)?,
        carried_syns: req_i64(p, "carried_syns", pp)?,
        carried_packets: req_i64(p, "carried_packets", pp)?,
        carried_len_sum: req_i64(p, "carried_len_sum", pp)?,
        carried_epochs: req_i64(p, "carried_epochs", pp)?,
        carried_from: req_u64_arr(p, "carried_from", pp)?,
        alive,
        shards,
        incidents,
        context_log,
        overrides,
        provenance,
        generation: req_u64(p, "generation", pp)?,
        swaps_committed: req_u64(p, "swaps_committed", pp)?,
        pipeline,
    })
}

// ---- disk -----------------------------------------------------------

/// File name of checkpoint `ordinal`.
#[must_use]
pub fn file_name(ordinal: u64) -> String {
    format!("ckpt-{ordinal:06}.json")
}

/// Writes `c` to `dir` crash-consistently: temp file in the same
/// directory, fsync, atomic rename, directory fsync (best effort). If
/// `faults` schedules corruption for this checkpoint ordinal the bytes
/// are damaged *after* the checksum was computed — modelling a torn
/// write or bit rot between the engine and the platter.
///
/// # Errors
///
/// Any I/O failure, labelled with the path it hit.
pub fn write_checkpoint(
    dir: &Path,
    c: &Checkpoint,
    faults: &FaultSchedule,
) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create checkpoint dir {}: {e}", dir.display()))?;
    let mut bytes = serialize(c).into_bytes();
    match faults.ckpt_corruption(c.checkpoint_ordinal) {
        Some(CkptCorruption::Truncate { keep }) => {
            let keep = usize::try_from(keep).unwrap_or(usize::MAX).min(bytes.len());
            bytes.truncate(keep);
        }
        Some(CkptCorruption::FlipByte { offset, mask }) if !bytes.is_empty() => {
            let i = usize::try_from(offset % bytes.len() as u64).unwrap_or(0);
            bytes[i] ^= mask;
        }
        _ => {}
    }
    let final_path = dir.join(file_name(c.checkpoint_ordinal));
    let tmp_path = dir.join(format!(".tmp-{}", file_name(c.checkpoint_ordinal)));
    {
        let mut f = std::fs::File::create(&tmp_path)
            .map_err(|e| format!("cannot create {}: {e}", tmp_path.display()))?;
        f.write_all(&bytes)
            .map_err(|e| format!("cannot write {}: {e}", tmp_path.display()))?;
        f.sync_all()
            .map_err(|e| format!("cannot fsync {}: {e}", tmp_path.display()))?;
    }
    std::fs::rename(&tmp_path, &final_path).map_err(|e| {
        format!(
            "cannot rename {} to {}: {e}",
            tmp_path.display(),
            final_path.display()
        )
    })?;
    // Durability of the rename itself; failure here degrades the
    // guarantee, never correctness, so it is best effort.
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(final_path)
}

/// Scans `dir` for checkpoints and returns the newest (highest
/// ordinal) one that validates, plus a note for every newer file that
/// was rejected (the fallback trail).
///
/// # Errors
///
/// When the directory is unreadable or no checkpoint in it validates.
pub fn load_latest(dir: &Path) -> Result<(Checkpoint, Vec<String>), String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read checkpoint dir {}: {e}", dir.display()))?;
    let mut candidates: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(ord) = name
            .strip_prefix("ckpt-")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        candidates.push((ord, entry.path()));
    }
    if candidates.is_empty() {
        return Err(format!("no checkpoints in {}", dir.display()));
    }
    candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
    let mut rejected = Vec::new();
    for (_, path) in &candidates {
        let attempt = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| parse(&text));
        match attempt {
            Ok(c) => return Ok((c, rejected)),
            Err(e) => rejected.push(format!("{}: {e}", path.display())),
        }
    }
    Err(format!(
        "no valid checkpoint in {}:\n  {}",
        dir.display(),
        rejected.join("\n  ")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> ShardState {
        let cfg = ReplayConfig::default();
        let mut s = ShardState::new(&cfg);
        // A real frame would do; raw bytes exercise the KIND_OTHER path
        // while still moving every tracker.
        for i in 0..200u64 {
            let frame = vec![(i % 251) as u8; 60 + (i as usize % 40)];
            s.ingest(&frame);
        }
        s
    }

    fn sample_checkpoint() -> Checkpoint {
        let s = sample_state();
        Checkpoint {
            next_ordinal: 7,
            checkpoint_ordinal: 3,
            cfg_shards: 2,
            cfg_batch: 256,
            cfg_interval_ns: 10_000_000,
            schedule_packets: 400,
            faults_spec: String::from("ctrl_loss=0.30"),
            fault_seed: 9,
            packets: 400,
            epochs: 7,
            packets_rerouted: 12,
            reports_dropped: 1,
            carried_syns: 5,
            carried_packets: 40,
            carried_len_sum: 2_400,
            carried_epochs: 1,
            carried_from: vec![6],
            alive: vec![true, false],
            shards: vec![Some(ShardStateRaw::of(&s)), None],
            incidents: vec![ShardIncident {
                shard: 1,
                epoch: 4,
                kind: IncidentKind::Panicked(String::from("injected fault")),
            }],
            context_log: vec![ContextEntry {
                signals: SignalValues {
                    at: 10_000_000,
                    epoch: 0,
                    interval_ns: 10_000_000,
                    spanned: 1,
                    packets: 200,
                    syns: 10,
                    len_sum: 12_000,
                    distinct_sources: 40,
                    median_len: 60,
                },
                kinds_min: 0,
                kinds_counts: vec![100, 50, 30, 10, 10],
                len_n: 200,
                len_xsum: 12_000,
                len_xsumsq: 800_000,
            }],
            overrides: vec![OverrideEntry {
                after_observes: 1,
                engine: String::from("cusum"),
                weight: Some(0),
            }],
            provenance: Vec::new(),
            generation: 2,
            swaps_committed: 2,
            pipeline: Some(PipelineState {
                registers: vec![(String::from("rate_window"), vec![1, 2, 3])],
                packets_processed: 77,
            }),
        }
    }

    #[test]
    fn shard_state_raw_round_trips_exactly() {
        let s = sample_state();
        let raw = ShardStateRaw::of(&s);
        let restored = raw.restore().expect("captured state restores");
        assert_eq!(restored, s);
    }

    #[test]
    fn checkpoint_serialization_round_trips_byte_identically() {
        let c = sample_checkpoint();
        let text = serialize(&c);
        let parsed = parse(&text).expect("own rendering parses");
        assert_eq!(parsed, c);
        assert_eq!(serialize(&parsed), text, "re-render is byte-identical");
    }

    #[test]
    fn checksum_mismatch_is_detected() {
        let text = serialize(&sample_checkpoint());
        // Damage one payload byte without touching the header.
        let broken = text.replace("\"packets\":400", "\"packets\":401");
        assert_ne!(text, broken, "replacement must hit");
        let err = parse(&broken).expect_err("corrupted payload must fail");
        assert!(err.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn truncated_document_is_rejected() {
        let text = serialize(&sample_checkpoint());
        assert!(parse(&text[..text.len() / 2]).is_err());
        assert!(parse("{}").unwrap_err().contains("magic"));
        assert!(parse("{\"magic\":\"other\"}").unwrap_err().contains("not a checkpoint"));
    }

    #[test]
    fn newer_versions_are_refused() {
        let text = serialize(&sample_checkpoint());
        let bumped = text.replace("\"version\":1", "\"version\":999");
        let err = parse(&bumped).unwrap_err();
        assert!(err.contains("newer than supported"), "{err}");
    }

    #[test]
    fn loader_falls_back_past_a_corrupt_newest_checkpoint() {
        let dir = std::env::temp_dir().join(format!("stat4-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let good = sample_checkpoint();
        let mut newer = good.clone();
        newer.checkpoint_ordinal = 4;
        newer.next_ordinal = 9;
        let faults = FaultSchedule::none();
        write_checkpoint(&dir, &good, &faults).unwrap();
        write_checkpoint(&dir, &newer, &faults).unwrap();
        // Damage the newest file in place.
        let p = dir.join(file_name(4));
        let text = std::fs::read_to_string(&p).unwrap();
        std::fs::write(&p, &text[..text.len() / 3]).unwrap();
        let (loaded, rejected) = load_latest(&dir).expect("fallback must succeed");
        assert_eq!(loaded, good);
        assert_eq!(rejected.len(), 1);
        assert!(rejected[0].contains("ckpt-000004"), "{rejected:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_corruption_is_caught_by_the_checksum() {
        let dir = std::env::temp_dir().join(format!("stat4-ckpt-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = sample_checkpoint();
        let faults = FaultSchedule::parse("ckpt_corrupt=3", 5).unwrap();
        let path = write_checkpoint(&dir, &c, &faults).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(parse(&text).is_err(), "corrupted write must not validate");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
