//! Malformed-input corpus for the replay ingest path.
//!
//! The packet crate's `tests/malformed.rs` proves the parsers
//! themselves never panic; this suite extends that corpus one layer
//! up, where the replay engine consumes frames: [`ShardState::ingest`]
//! (classification, length moments, sketch update, percentile
//! observe), [`kind_of`], and the flow-hash partitioner
//! ([`workloads::shard::shard_of`]) must digest whatever arrives —
//! noise, truncations, bit flips — without panicking, and truncated
//! junk must land in `KIND_OTHER`, not crash classification.

use packet::builder::PacketBuilder;
use proptest::prelude::*;
use replay::{kind_of, ReplayConfig, ShardState, KIND_OTHER};
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(10, 1, 2, 3);
const DST: Ipv4Addr = Ipv4Addr::new(10, 9, 8, 7);

/// A well-formed frame to mutate, mirroring the packet-crate corpus.
fn valid_frame(udp: bool, payload: &[u8]) -> Vec<u8> {
    if udp {
        PacketBuilder::udp(SRC, DST, 4321, 53).payload(payload).build()
    } else {
        PacketBuilder::tcp_syn(SRC, DST, 4321, 80).payload(payload).build()
    }
}

/// Feeds one frame through everything the engine does per packet.
fn exercise(frame: &[u8], state: &mut ShardState) {
    let _ = kind_of(frame);
    let _ = workloads::shard::flow_key(frame);
    for shards in [1usize, 4] {
        let _ = workloads::shard::shard_of(frame, shards);
    }
    state.ingest(frame);
}

proptest! {
    /// Pure noise of any length ingests cleanly and counts exactly
    /// once.
    #[test]
    fn random_bytes_never_panic_ingest(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 1..20),
    ) {
        let cfg = ReplayConfig::default();
        let mut state = ShardState::new(&cfg);
        for f in &frames {
            exercise(f, &mut state);
        }
        prop_assert_eq!(state.packets, frames.len() as u64);
        prop_assert_eq!(state.len_stats.n(), frames.len() as u64);
    }

    /// Random truncation of a well-formed frame never panics the
    /// ingest path; cutting into or before the ethernet header must
    /// classify as KIND_OTHER.
    #[test]
    fn truncated_frames_ingest_cleanly(
        udp in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        cut in any::<u16>(),
    ) {
        let frame = valid_frame(udp, &payload);
        let cut = usize::from(cut) % (frame.len() + 1);
        let truncated = &frame[..cut];
        let cfg = ReplayConfig::default();
        let mut state = ShardState::new(&cfg);
        exercise(truncated, &mut state);
        prop_assert_eq!(state.packets, 1);
        if cut < 14 {
            prop_assert_eq!(kind_of(truncated), KIND_OTHER);
        }
    }

    /// Single-bit corruption anywhere in a well-formed frame never
    /// panics ingest (classification may change; that's fine).
    #[test]
    fn bit_flips_ingest_cleanly(
        udp in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        pos in any::<u16>(),
        bit in 0u8..8,
    ) {
        let mut frame = valid_frame(udp, &payload);
        let pos = usize::from(pos) % frame.len();
        frame[pos] ^= 1 << bit;
        let cfg = ReplayConfig::default();
        let mut state = ShardState::new(&cfg);
        exercise(&frame, &mut state);
        prop_assert_eq!(state.packets, 1);
    }

    /// A lying IPv4 total-length field never panics ingest or
    /// classification.
    #[test]
    fn bogus_ipv4_total_length_ingests_cleanly(
        udp in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..32),
        total in any::<u16>(),
    ) {
        let mut frame = valid_frame(udp, &payload);
        let [hi, lo] = total.to_be_bytes();
        frame[16] = hi;
        frame[17] = lo;
        let cfg = ReplayConfig::default();
        let mut state = ShardState::new(&cfg);
        exercise(&frame, &mut state);
        prop_assert_eq!(state.packets, 1);
    }

    /// Oversized frames clamp into the length-percentile domain
    /// instead of panicking the tracker (`MAX_LEN` clamp).
    #[test]
    fn oversized_frames_clamp_into_length_domain(
        len in 0usize..5000,
    ) {
        let frame = vec![0xAAu8; len];
        let cfg = ReplayConfig::default();
        let mut state = ShardState::new(&cfg);
        state.ingest(&frame);
        prop_assert_eq!(state.packets, 1);
        // One sample, so xsum is the clamped length itself.
        prop_assert!(state.len_stats.xsum() <= replay::MAX_LEN);
    }
}
