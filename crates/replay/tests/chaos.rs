//! Degraded-mode conformance: the sharded replay engine survives
//! seeded fault schedules without losing its guarantees.
//!
//! - Under the canned chaos schedule (one shard crash + 30% report
//!   loss) the SYN flood is still detected within a bounded number of
//!   extra intervals, with no false positive before onset, and the
//!   outcome reports degraded coverage.
//! - Two runs of the same `(spec, seed)` pair are byte-identical —
//!   merged state, alerts, health, and the deterministic telemetry
//!   counters all compare equal.
//! - An empty fault schedule leaves the engine bit-identical to
//!   [`replay::run_replay`].
//! - A panicking shard thread is caught and quarantined, never
//!   propagated (regression for the old
//!   `expect("shard thread panicked")`).

use faultinject::FaultSchedule;
use replay::{run_replay, run_replay_with_faults, IncidentKind, ReplayConfig};
use workloads::{Schedule, SynFloodWorkload};

fn small_flood() -> Schedule {
    let (s, _) = SynFloodWorkload {
        background_cps: 500,
        flood_pps: 20_000,
        flood_start: 150_000_000,
        duration: 400_000_000,
        seed: 11,
        ..SynFloodWorkload::default()
    }
    .generate();
    s
}

fn four_shards() -> ReplayConfig {
    ReplayConfig {
        shards: 4,
        ..ReplayConfig::default()
    }
}

/// The CI smoke schedule: shard 1 crashes at epoch 3 (well before the
/// flood), and 30% of epoch reports are lost on the control channel.
const CANNED: &str = "shard_crash=1@3,ctrl_loss=0.30";

#[test]
fn canned_chaos_still_detects_within_bounded_extra_intervals() {
    let s = small_flood();
    let cfg = four_shards();
    let interval = cfg.detector.interval_ns;
    let clean = run_replay(&s, &cfg);
    let clean_at = clean.detected_at.expect("clean run detects the flood");

    let faults = FaultSchedule::parse(CANNED, 42).unwrap();
    let out = run_replay_with_faults(&s, &cfg, &faults);
    let at = out.detected_at.expect("flood detected despite the chaos");
    assert!(at >= 150_000_000, "no false positive before onset: {at}");
    assert!(
        at <= clean_at + 5 * interval,
        "detection within 5 extra intervals: clean {clean_at}, chaos {at}"
    );

    let h = &out.health;
    assert!(h.degraded());
    assert_eq!(h.shards_configured, 4);
    assert_eq!(h.shards_alive, 3);
    assert_eq!(h.incidents.len(), 1);
    assert_eq!(h.incidents[0].shard, 1);
    assert_eq!(h.incidents[0].epoch, 3);
    assert_eq!(h.incidents[0].kind, IncidentKind::Crashed);
    assert!(h.reports_dropped > 0, "30% loss drops some reports");
    assert!(h.packets_rerouted > 0, "dead shard's traffic rerouted");
    assert!(h.packets_lost > 0, "crash epoch's slice is lost");
    assert!(
        h.coverage() > 0.9 && h.coverage() < 1.0,
        "degraded but useful coverage, got {}",
        h.coverage()
    );
    assert_eq!(
        h.packets_ingested + h.packets_lost,
        h.packets_offered,
        "health accounting balances"
    );
}

#[test]
fn same_seed_chaos_reruns_are_bit_identical() {
    let s = small_flood();
    let cfg = four_shards();
    let faults = FaultSchedule::parse(CANNED, 1234).unwrap();
    let a = run_replay_with_faults(&s, &cfg, &faults);
    let b = run_replay_with_faults(&s, &cfg, &faults);
    assert_eq!(a.merged, b.merged);
    assert_eq!(a.alerts, b.alerts);
    assert_eq!(a.detected_at, b.detected_at);
    assert_eq!(a.health, b.health);
    assert_eq!(a.packets, b.packets);
    assert_eq!(a.epochs, b.epochs);
    // The deterministic telemetry counters agree too (timings differ).
    assert_eq!(
        a.telemetry.faults_injected.get(),
        b.telemetry.faults_injected.get()
    );
    assert_eq!(
        a.telemetry.reports_dropped.get(),
        b.telemetry.reports_dropped.get()
    );
    assert_eq!(
        a.telemetry.shards_quarantined.get(),
        b.telemetry.shards_quarantined.get()
    );
    assert_eq!(a.telemetry.packets_lost.get(), b.telemetry.packets_lost.get());
    assert_eq!(
        a.telemetry.packets_rerouted.get(),
        b.telemetry.packets_rerouted.get()
    );
}

#[test]
fn different_seed_perturbs_the_run_differently() {
    let s = small_flood();
    let cfg = four_shards();
    let a = run_replay_with_faults(&s, &cfg, &FaultSchedule::parse(CANNED, 1).unwrap());
    let b = run_replay_with_faults(&s, &cfg, &FaultSchedule::parse(CANNED, 2).unwrap());
    // The scheduled crash is seed-independent; the report-loss pattern
    // is not.
    assert_ne!(a.health.reports_dropped, b.health.reports_dropped);
}

#[test]
fn empty_fault_schedule_matches_unfaulted_run() {
    let s = small_flood();
    let cfg = four_shards();
    let plain = run_replay(&s, &cfg);
    let faulted = run_replay_with_faults(&s, &cfg, &FaultSchedule::none());
    assert_eq!(plain.merged, faulted.merged);
    assert_eq!(plain.alerts, faulted.alerts);
    assert_eq!(plain.detected_at, faulted.detected_at);
    assert_eq!(plain.health, faulted.health);
    assert!(!faulted.health.degraded());
    assert_eq!(faulted.telemetry.faults_injected.get(), 0);
    assert_eq!(faulted.telemetry.reports_dropped.get(), 0);
    assert_eq!(faulted.telemetry.shards_quarantined.get(), 0);
}

#[test]
fn injected_panic_is_caught_and_quarantined() {
    // Regression for the old `expect("shard thread panicked")`: a
    // panicking shard thread must degrade the run, not abort it.
    let s = small_flood();
    let cfg = four_shards();
    let faults = FaultSchedule::parse("shard_panic=2@4", 0).unwrap();
    let out = run_replay_with_faults(&s, &cfg, &faults);
    let h = &out.health;
    assert_eq!(h.shards_alive, 3);
    assert_eq!(h.incidents.len(), 1);
    assert_eq!(h.incidents[0].shard, 2);
    assert_eq!(h.incidents[0].epoch, 4);
    match &h.incidents[0].kind {
        IncidentKind::Panicked(msg) => {
            assert!(msg.contains("injected fault"), "captured message: {msg}");
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    assert!(h.packets_lost > 0);
    // Detection still works: the flood traffic reroutes to survivors.
    assert!(out.detected_at.is_some());
}

#[test]
fn stall_changes_timing_but_not_outcome() {
    let s = small_flood();
    let cfg = four_shards();
    let clean = run_replay(&s, &cfg);
    // 2 ms stall on shard 1 at epoch 2: state survives, nothing lost.
    let faults = FaultSchedule::parse("shard_stall=1@2:2000000", 0).unwrap();
    let out = run_replay_with_faults(&s, &cfg, &faults);
    assert_eq!(out.merged, clean.merged);
    assert_eq!(out.alerts, clean.alerts);
    assert!(out.health.incidents.is_empty());
    assert!(!out.health.degraded());
    assert_eq!(out.telemetry.faults_injected.get(), 1);
}

#[test]
fn losing_every_shard_still_completes() {
    let s = small_flood();
    let cfg = ReplayConfig {
        shards: 2,
        ..ReplayConfig::default()
    };
    let faults = FaultSchedule::parse("shard_crash=0@1,shard_crash=1@1", 0).unwrap();
    let out = run_replay_with_faults(&s, &cfg, &faults);
    let h = &out.health;
    assert_eq!(h.shards_alive, 0);
    assert_eq!(h.incidents.len(), 2);
    // Everything is lost: the quarantined shards' epoch-0 history is
    // discarded and no shard remains to take later traffic.
    assert_eq!(h.packets_lost, h.packets_offered);
    assert_eq!(out.merged.packets, 0);
    assert!(out.detected_at.is_none(), "no data, no detection");
}
