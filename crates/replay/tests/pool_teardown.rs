//! Pool teardown under injected shard faults: a run whose workers
//! panic or crash must still tear the pool down completely — no leaked
//! worker threads, every queue dropped — and rerunning the same seed
//! must stay byte-identical to the reference engine.
//!
//! Everything lives in ONE test function: thread-count accounting is
//! process-global, and integration tests in one binary share a
//! process, so interleaved tests would race the baseline.

use faultinject::FaultSchedule;
use replay::{
    reference, resume_from_checkpoint, run_replay_lifecycle, run_replay_with_faults,
    IncidentKind, LifecyclePlan, ReplayConfig, SwapRequest,
};
use workloads::{Schedule, SynFloodWorkload};

fn small_flood() -> Schedule {
    let (s, _) = SynFloodWorkload {
        background_cps: 500,
        flood_pps: 20_000,
        flood_start: 150_000_000,
        duration: 400_000_000,
        seed: 11,
        ..SynFloodWorkload::default()
    }
    .generate();
    s
}

/// Live threads in this process, from `/proc/self/status` (`Threads:`
/// line). Linux-only — on other targets the leak check is skipped and
/// only the behavioural assertions run.
fn thread_count() -> Option<usize> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Waits (bounded) for the process thread count to drop back to
/// `baseline`: worker exit is observable strictly after `join`
/// returns, via the kernel reaping the task, so allow a grace period.
fn settles_to(baseline: usize) -> bool {
    for _ in 0..200 {
        match thread_count() {
            Some(n) if n <= baseline => return true,
            Some(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            None => return true,
        }
    }
    false
}

#[test]
fn faulted_pool_runs_tear_down_without_leaking_workers() {
    let s = small_flood();
    let cfg = ReplayConfig {
        shards: 4,
        ..ReplayConfig::default()
    };
    // A panic (worker thread dies mid-run, joined by the supervisor),
    // a crash (worker idles until shutdown), and report loss together.
    let faults = FaultSchedule::parse(
        "shard_crash=1@3,shard_panic=2@5,ctrl_loss=0.30",
        77,
    )
    .unwrap();

    let baseline = thread_count().unwrap_or(0);

    let first = run_replay_with_faults(&s, &cfg, &faults);
    assert!(
        settles_to(baseline),
        "worker threads leaked after a faulted run: baseline {baseline}, now {:?}",
        thread_count()
    );

    // The faults actually fired and were supervised.
    assert_eq!(first.health.shards_alive, 2);
    let kinds: Vec<_> = first.health.incidents.iter().map(|i| &i.kind).collect();
    assert!(kinds.iter().any(|k| matches!(k, IncidentKind::Crashed)));
    assert!(kinds
        .iter()
        .any(|k| matches!(k, IncidentKind::Panicked(m) if m.contains("injected fault"))));

    // Ten more runs: thread count stays flat (the pool is per-run, so
    // repeated runs must not accrete threads) and every rerun is
    // byte-identical — the dead workers' queues were fully drained,
    // leaving no state to leak between runs.
    for i in 0..10 {
        let again = run_replay_with_faults(&s, &cfg, &faults);
        assert_eq!(again.merged, first.merged, "rerun {i}: merged state");
        assert_eq!(again.alerts, first.alerts, "rerun {i}: alerts");
        assert_eq!(again.health, first.health, "rerun {i}: health");
    }
    assert!(
        settles_to(baseline),
        "worker threads accreted across runs: baseline {baseline}, now {:?}",
        thread_count()
    );

    // And the whole faulted run is still bit-identical to the pre-pool
    // engine (the satellite guarantee: same-seed chaos byte-identity
    // against the reference path survives teardown-under-fault).
    let refr = reference::run_replay_with_faults(&s, &cfg, &faults);
    assert_eq!(first.merged, refr.merged);
    assert_eq!(first.alerts, refr.alerts);
    assert_eq!(first.detected_at, refr.detected_at);
    assert_eq!(first.health, refr.health);

    // Drain-swap-resume under the same active chaos: checkpoint every
    // other epoch, reject a stale reconfiguration at a drain point,
    // kill mid-run, then resume. Two pools get built and torn down —
    // neither may leak a thread, and the stitched-together run must
    // still equal the single-pass reference engine above.
    let spec = "shard_crash=1@3,shard_panic=2@5,ctrl_loss=0.30";
    let dir = std::env::temp_dir().join(format!(
        "replay-pool-teardown-lifecycle-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let plan = LifecyclePlan {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 2,
        kill_at_epoch: Some(6),
        // expected_generation 1 while generation 0 runs: a stale
        // request, rejected without vetting — the drain point still
        // exercises the swap path without perturbing the run.
        swaps: vec![SwapRequest {
            at_epoch: 4,
            expected_generation: 1,
            program: None,
            bindings: Vec::new(),
            weights: Vec::new(),
        }],
        faults_spec: String::from(spec),
        ..LifecyclePlan::none()
    };
    let (_, killed_report) = run_replay_lifecycle(&s, &cfg, &faults, &plan);
    assert!(killed_report.checkpoints_written >= 1);
    assert_eq!(killed_report.swaps_rejected, 1, "the stale swap is rejected");
    assert_eq!(killed_report.generation, 0, "rejection leaves the generation alone");
    assert!(
        settles_to(baseline),
        "worker threads leaked after the killed lifecycle run: baseline {baseline}, now {:?}",
        thread_count()
    );

    let resume_plan = LifecyclePlan {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 2,
        ..LifecyclePlan::none()
    };
    let (resumed, resumed_report) =
        resume_from_checkpoint(&s, &cfg, &resume_plan).expect("resume after kill");
    assert!(resumed_report.resumed_from.is_some());
    assert!(
        settles_to(baseline),
        "worker threads leaked after the resumed run: baseline {baseline}, now {:?}",
        thread_count()
    );
    assert_eq!(resumed.merged, refr.merged);
    assert_eq!(resumed.alerts, refr.alerts);
    assert_eq!(resumed.detected_at, refr.detected_at);
    assert_eq!(resumed.health, refr.health);
    std::fs::remove_dir_all(&dir).ok();
}
