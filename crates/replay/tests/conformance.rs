//! Cross-shard conformance suite (ISSUE acceptance criterion): for the
//! `synflood` and `mix` workloads, sharded replay at 2/4/8 shards must
//! produce the *same merged statistics* and the *same alert sequence*
//! as the single-shard run — bit for bit, not approximately.
//!
//! Why this holds (and what the tests pin down):
//!
//! - `RunningStats`, `FrequencyDist`, and `CountMinSketch` merge by
//!   summing, so any partition of the input folds back to the
//!   sequential state exactly.
//! - `PercentileSet` markers are path-dependent and non-mergeable; the
//!   merge rule instead rebuilds them canonically from the merged
//!   counts. The counts are partition-invariant, so the rebuilt markers
//!   are too — every shard count yields the same estimate.
//! - The central detector consumes only merged aggregates, so identical
//!   aggregates force identical alerts.

use anomaly::synflood::SynFloodConfig;
use replay::{run_replay, ReplayConfig, ReplayOutcome};
use workloads::{PacketMixWorkload, Schedule, SynFloodWorkload};

fn synflood_schedule() -> Schedule {
    let (s, _) = SynFloodWorkload {
        background_cps: 500,
        flood_pps: 50_000,
        flood_start: 300_000_000,
        duration: 700_000_000,
        seed: 4,
        ..SynFloodWorkload::default()
    }
    .generate();
    s
}

fn mix_schedule() -> Schedule {
    let (s, _) = PacketMixWorkload {
        packets: 40_000,
        ..PacketMixWorkload::default()
    }
    .generate();
    s
}

fn run(schedule: &Schedule, shards: usize) -> ReplayOutcome {
    run_replay(
        schedule,
        &ReplayConfig {
            shards,
            ..ReplayConfig::default()
        },
    )
}

fn assert_conformant(schedule: &Schedule, label: &str) {
    let reference = run(schedule, 1);
    assert_eq!(
        reference.packets,
        schedule.len() as u64,
        "{label}: reference replays every packet"
    );
    for shards in [2usize, 4, 8] {
        let out = run(schedule, shards);
        assert_eq!(
            out.merged, reference.merged,
            "{label}: merged state at {shards} shards differs from 1 shard"
        );
        assert_eq!(
            out.alerts, reference.alerts,
            "{label}: alert sequence at {shards} shards differs from 1 shard"
        );
        assert_eq!(out.detected_at, reference.detected_at, "{label}: {shards}");
        assert_eq!(out.packets, reference.packets, "{label}: {shards}");
        assert_eq!(out.epochs, reference.epochs, "{label}: {shards}");
    }
}

#[test]
fn synflood_sharded_matches_sequential() {
    let s = synflood_schedule();
    assert_conformant(&s, "synflood");
}

#[test]
fn synflood_flood_is_detected_at_every_shard_count() {
    let s = synflood_schedule();
    for shards in [1usize, 2, 4, 8] {
        let out = run(&s, shards);
        let at = out
            .detected_at
            .unwrap_or_else(|| panic!("{shards} shards: flood must be detected"));
        assert!(at >= 300_000_000, "{shards} shards: false positive at {at}");
        assert!(
            at < 400_000_000,
            "{shards} shards: detected {} ms after onset",
            (at - 300_000_000) / 1_000_000
        );
    }
}

#[test]
fn mix_sharded_matches_sequential() {
    let s = mix_schedule();
    assert_conformant(&s, "mix");
}

#[test]
fn mix_stable_composition_stays_quiet() {
    let s = mix_schedule();
    for shards in [1usize, 4, 8] {
        let out = run(&s, shards);
        assert!(
            out.detected_at.is_none(),
            "{shards} shards: spurious alerts {:?}",
            out.alerts
        );
    }
}

#[test]
fn percentile_estimate_is_shard_count_invariant() {
    // The documented non-mergeability fallback in action: the median
    // marker is rebuilt from merged counts, so its estimate cannot
    // depend on how the trace was partitioned.
    let s = mix_schedule();
    let reference = run(&s, 1);
    let expect = reference.merged.len_median.estimate(0);
    assert!(expect.is_some(), "median defined after 40k packets");
    for shards in [2usize, 4, 8] {
        assert_eq!(
            run(&s, shards).merged.len_median.estimate(0),
            expect,
            "median estimate at {shards} shards"
        );
    }
}

#[test]
fn interval_length_does_not_break_conformance() {
    // Epoch (interval) length changes detection granularity but must
    // never reintroduce order dependence in the merged state.
    let s = synflood_schedule();
    for interval_ns in [5_000_000u64, 20_000_000] {
        let cfg1 = ReplayConfig {
            shards: 1,
            detector: SynFloodConfig {
                interval_ns,
                ..SynFloodConfig::default()
            },
            ..ReplayConfig::default()
        };
        let cfg8 = ReplayConfig {
            shards: 8,
            ..cfg1
        };
        let a = run_replay(&s, &cfg1);
        let b = run_replay(&s, &cfg8);
        assert_eq!(a.merged, b.merged, "interval {interval_ns}");
        assert_eq!(a.alerts, b.alerts, "interval {interval_ns}");
    }
}
