//! Property: every checkpoint a real run writes — across shard
//! counts, chaos seeds, and kill points — parses back and re-renders
//! byte-identically. The serialized form IS the canonical form; any
//! drift between writer and parser shows up here as a one-byte diff.

use proptest::prelude::*;

use faultinject::FaultSchedule;
use replay::ckpt;
use replay::{run_replay_lifecycle, LifecyclePlan, ReplayConfig};
use workloads::{Schedule, SynFloodWorkload};

fn tiny_flood(seed: u64) -> Schedule {
    let (s, _) = SynFloodWorkload {
        background_cps: 400,
        flood_pps: 10_000,
        flood_start: 100_000_000,
        duration: 250_000_000,
        seed,
        ..SynFloodWorkload::default()
    }
    .generate();
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn written_checkpoints_reparse_byte_identically(
        shards in 1usize..=4,
        chaos_seed in 0u64..1000,
        workload_seed in 0u64..4,
        kill_at in 3u64..8,
    ) {
        let s = tiny_flood(workload_seed);
        let cfg = ReplayConfig { shards, ..ReplayConfig::default() };
        let spec = "shard_crash=1@3,ctrl_loss=0.25";
        let faults = FaultSchedule::parse(spec, chaos_seed).unwrap();
        let dir = std::env::temp_dir().join(format!(
            "replay-ckpt-prop-{}-{shards}-{chaos_seed}-{workload_seed}-{kill_at}",
            std::process::id(),
        ));
        std::fs::remove_dir_all(&dir).ok();

        let plan = LifecyclePlan {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 2,
            kill_at_epoch: Some(kill_at),
            faults_spec: String::from(spec),
            ..LifecyclePlan::none()
        };
        let (_, report) = run_replay_lifecycle(&s, &cfg, &faults, &plan);
        prop_assert!(report.checkpoints_written >= 1, "no checkpoint written before the kill");

        let mut files = 0usize;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let text = std::fs::read_to_string(&path).unwrap();
            let parsed = ckpt::parse(&text)
                .unwrap_or_else(|e| panic!("{path:?} does not parse: {e}"));
            prop_assert_eq!(
                &ckpt::serialize(&parsed),
                &text,
                "{:?}: parse → serialize is not the identity",
                path
            );
            files += 1;
        }
        prop_assert_eq!(files as u64, report.checkpoints_written);
        std::fs::remove_dir_all(&dir).ok();
    }
}
