//! Replay throughput scaling (ISSUE acceptance criterion): ≥ 3×
//! throughput at 8 shards over 1 shard.
//!
//! The speedup assertion only makes sense on a machine that can
//! actually run 8 worker threads in parallel, so it is gated on
//! `std::thread::available_parallelism()`; on smaller machines the test
//! still runs both configurations and checks conformance, but skips
//! the scaling assertion with a note.

use replay::{run_replay, ReplayConfig};
use workloads::SynFloodWorkload;

#[test]
fn eight_shards_scale_or_skip() {
    let (schedule, _) = SynFloodWorkload {
        background_cps: 2_000,
        flood_pps: 80_000,
        flood_start: 200_000_000,
        duration: 1_000_000_000,
        seed: 7,
        ..SynFloodWorkload::default()
    }
    .generate();

    let run = |shards: usize| {
        run_replay(
            &schedule,
            &ReplayConfig {
                shards,
                ..ReplayConfig::default()
            },
        )
    };

    // Warm-up pass so neither timed run pays first-touch costs.
    let _ = run(1);

    let single = run(1);
    let sharded = run(8);

    // Scaling must never cost correctness.
    assert_eq!(single.merged, sharded.merged);
    assert_eq!(single.alerts, sharded.alerts);

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores < 8 {
        eprintln!(
            "skipping ≥3× speedup assertion: only {cores} core(s) available \
             (1-shard {:.0} pkt/s, 8-shard {:.0} pkt/s)",
            single.throughput_pps(),
            sharded.throughput_pps()
        );
        return;
    }
    let speedup = sharded.throughput_pps() / single.throughput_pps();
    assert!(
        speedup >= 3.0,
        "8 shards only {speedup:.2}x faster than 1 shard \
         ({:.0} vs {:.0} pkt/s)",
        sharded.throughput_pps(),
        single.throughput_pps()
    );
}
