//! Property tests for shard-merge equivalence (ISSUE satellite):
//! across randomly parameterised workloads and every shard count in
//! {1, 2, 4, 8}, the merged `RunningStats` / `FrequencyDist` / sketch
//! state is bit-identical to the sequential ingest, and the SYN-flood
//! alert sets match across shard counts.

use proptest::prelude::*;
use replay::{run_replay, ReplayConfig, ShardState};
use workloads::{PacketMixWorkload, Schedule, SynFloodWorkload};

fn direct_ingest(schedule: &Schedule, cfg: &ReplayConfig) -> ShardState {
    let mut s = ShardState::new(cfg);
    for (_, frame) in schedule {
        s.ingest(frame);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random SYN-flood traces: merged order-free state equals the
    /// sequential ingest at every shard count, and the alert sequence
    /// is shard-count invariant.
    #[test]
    fn synflood_replay_equivalent_across_shards(
        seed in 0u64..1000,
        flood_pps in 5_000u64..40_000,
        onset_ms in 60u64..200,
    ) {
        let (schedule, _) = SynFloodWorkload {
            background_cps: 400,
            flood_pps,
            flood_start: onset_ms * 1_000_000,
            duration: 320_000_000,
            seed,
            ..SynFloodWorkload::default()
        }
        .generate();
        let cfg = ReplayConfig::default();
        let direct = direct_ingest(&schedule, &cfg);
        let reference = run_replay(&schedule, &cfg);

        for shards in [1usize, 2, 4, 8] {
            let out = run_replay(
                &schedule,
                &ReplayConfig { shards, ..ReplayConfig::default() },
            );
            // Order-free trackers: bit-identical to sequential ingest.
            prop_assert_eq!(&out.merged.len_stats, &direct.len_stats);
            prop_assert_eq!(&out.merged.kinds, &direct.kinds);
            prop_assert_eq!(&out.merged.dst_sketch, &direct.dst_sketch);
            prop_assert_eq!(out.merged.packets, direct.packets);
            // Whole merged state (incl. canonical percentile markers)
            // and alerts: invariant across shard counts.
            prop_assert_eq!(&out.merged, &reference.merged);
            prop_assert_eq!(&out.alerts, &reference.alerts);
            prop_assert_eq!(out.detected_at, reference.detected_at);
        }
    }

    /// Random packet mixes (including mid-stream composition shifts):
    /// same invariants.
    #[test]
    fn mix_replay_equivalent_across_shards(
        seed in 0u64..1000,
        packets in 2_000usize..10_000,
        shift in any::<bool>(),
    ) {
        let (schedule, _) = PacketMixWorkload {
            packets,
            shift_at: if shift { 40_000_000 } else { u64::MAX },
            seed,
            ..PacketMixWorkload::default()
        }
        .generate();
        let cfg = ReplayConfig::default();
        let direct = direct_ingest(&schedule, &cfg);
        let reference = run_replay(&schedule, &cfg);

        for shards in [1usize, 2, 4, 8] {
            let out = run_replay(
                &schedule,
                &ReplayConfig { shards, ..ReplayConfig::default() },
            );
            prop_assert_eq!(&out.merged.len_stats, &direct.len_stats);
            prop_assert_eq!(&out.merged.kinds, &direct.kinds);
            prop_assert_eq!(&out.merged.dst_sketch, &direct.dst_sketch);
            prop_assert_eq!(&out.merged, &reference.merged);
            prop_assert_eq!(&out.alerts, &reference.alerts);
        }
    }
}
