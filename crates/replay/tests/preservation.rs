//! Behavior preservation: lifting the epoch SYN-flood, stalled-flow
//! and median-shift detectors behind the `Detector` trait must not
//! change a single alert. The goldens below were captured by running
//! the pre-refactor engine (commit with `EpochSynFloodDetector` wired
//! directly into the replay loop) on fixed workloads; the refactored
//! ensemble must reproduce them bit for bit — same alert timestamps,
//! same SYN counts, same first-detection time — under the pool engine,
//! the reference engine, and a chaos schedule with report loss.

use anomaly::Alert;
use faultinject::FaultSchedule;
use replay::{reference, run_replay, run_replay_with_faults, ReplayConfig, ReplayOutcome};
use workloads::{Schedule, SynFloodWorkload};

fn small_flood() -> Schedule {
    let (s, _) = SynFloodWorkload {
        background_cps: 500,
        flood_pps: 20_000,
        flood_start: 150_000_000,
        duration: 400_000_000,
        seed: 11,
        ..SynFloodWorkload::default()
    }
    .generate();
    s
}

fn conformance_flood() -> Schedule {
    let (s, _) = SynFloodWorkload {
        background_cps: 500,
        flood_pps: 50_000,
        flood_start: 300_000_000,
        duration: 700_000_000,
        seed: 4,
        ..SynFloodWorkload::default()
    }
    .generate();
    s
}

/// Pre-refactor golden: (detected_at, [(alert_at, syn_count)]).
type Golden = (u64, &'static [(u64, u64)]);

const SMALL_CLEAN: Golden = (
    160_000_000,
    &[
        (160_000_000, 204),
        (170_000_000, 205),
        (180_000_000, 204),
        (190_000_000, 205),
    ],
);

const SMALL_CHAOS: Golden = (
    160_000_000,
    &[(160_000_000, 204), (180_000_000, 204), (190_000_000, 205)],
);

const CONF_1SHARD: Golden = (
    310_000_000,
    &[
        (310_000_000, 505),
        (320_000_000, 504),
        (330_000_000, 504),
        (340_000_000, 505),
        (350_000_000, 504),
        (360_000_000, 505),
        (370_000_000, 504),
    ],
);

fn assert_matches_golden(out: &ReplayOutcome, golden: Golden, ctx: &str) {
    let (detected_at, alerts) = golden;
    assert_eq!(
        out.detected_at,
        Some(detected_at),
        "{ctx}: first-detection time drifted from the pre-refactor engine"
    );
    let got: Vec<(u64, u64)> = out
        .alerts
        .iter()
        .map(|a| match a {
            Alert::SynFlood { at, syn_count, .. } => (*at, *syn_count),
            other => panic!("{ctx}: unexpected alert kind {other:?}"),
        })
        .collect();
    assert_eq!(got, alerts, "{ctx}: alert stream drifted");
    // The trait-lifted engine must agree with the legacy alert list it
    // now produces: the ensemble's synflood summary is the same data
    // through the new path.
    let syn = out
        .ensemble
        .engine("synflood")
        .expect("synflood engine reported");
    assert_eq!(syn.fires, alerts.len() as u64, "{ctx}: synflood fire count");
    assert_eq!(
        syn.first_fired_at,
        Some(detected_at),
        "{ctx}: synflood first fire"
    );
}

#[test]
fn pool_engine_preserves_pre_refactor_alerts() {
    let cfg = ReplayConfig {
        shards: 4,
        ..ReplayConfig::default()
    };
    let out = run_replay(&small_flood(), &cfg);
    assert_matches_golden(&out, SMALL_CLEAN, "pool/clean");
}

#[test]
fn reference_engine_preserves_pre_refactor_alerts() {
    let cfg = ReplayConfig {
        shards: 4,
        ..ReplayConfig::default()
    };
    let out = reference::run_replay(&small_flood(), &cfg);
    assert_matches_golden(&out, SMALL_CLEAN, "reference/clean");
}

#[test]
fn chaos_schedule_preserves_pre_refactor_alerts() {
    // Same chaos spec + seed as the pre-refactor capture: a shard
    // crash at epoch 3 plus 30% epoch-report loss. Carried-forward
    // counts and span averaging are detector inputs, so they must
    // reproduce exactly too.
    let cfg = ReplayConfig {
        shards: 4,
        ..ReplayConfig::default()
    };
    let faults = FaultSchedule::parse("shard_crash=1@3,ctrl_loss=0.30", 42).unwrap();
    let pool = run_replay_with_faults(&small_flood(), &cfg, &faults);
    assert_matches_golden(&pool, SMALL_CHAOS, "pool/chaos");
    let refr = reference::run_replay_with_faults(&small_flood(), &cfg, &faults);
    assert_matches_golden(&refr, SMALL_CHAOS, "reference/chaos");
}

#[test]
fn single_shard_conformance_flood_preserves_alerts() {
    let cfg = ReplayConfig {
        shards: 1,
        ..ReplayConfig::default()
    };
    let out = run_replay(&conformance_flood(), &cfg);
    assert_matches_golden(&out, CONF_1SHARD, "pool/1shard");
    let refr = reference::run_replay(&conformance_flood(), &cfg);
    assert_matches_golden(&refr, CONF_1SHARD, "reference/1shard");
}
