//! Lifecycle guarantees: a run killed mid-stream and resumed from its
//! newest checkpoint is byte-identical to the uninterrupted run; a
//! rejected hot-swap leaves the running configuration untouched; a
//! torn checkpoint write is detected by the checksum and recovery
//! falls back to the previous checkpoint.

use std::path::PathBuf;

use faultinject::FaultSchedule;
use replay::{
    render_outcome_json, resume_from_checkpoint, run_replay_lifecycle, LifecyclePlan,
    ReplayConfig, SwapRequest,
};
use stat4_p4::{CaseStudyApp, CaseStudyParams};
use workloads::{Schedule, SynFloodWorkload};

const CHAOS: &str = "shard_crash=1@3,ctrl_loss=0.30";
const SEED: u64 = 7;

fn small_flood() -> Schedule {
    let (s, _) = SynFloodWorkload {
        background_cps: 500,
        flood_pps: 20_000,
        flood_start: 150_000_000,
        duration: 400_000_000,
        seed: 11,
        ..SynFloodWorkload::default()
    }
    .generate();
    s
}

fn cfg(shards: usize) -> ReplayConfig {
    ReplayConfig {
        shards,
        ..ReplayConfig::default()
    }
}

/// A unique scratch dir per test invocation; cleaned up at the end of
/// each test that succeeds (a failed test leaves it for inspection).
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "replay-lifecycle-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn chaos(spec: &str) -> FaultSchedule {
    FaultSchedule::parse(spec, SEED).unwrap()
}

/// The acceptance criterion: kill at an epoch ordinal, resume from the
/// newest checkpoint, and the deterministic run snapshot must be
/// byte-identical to the uninterrupted run's — across shard counts,
/// under chaos.
#[test]
fn kill_and_resume_is_byte_identical_across_shard_counts() {
    let s = small_flood();
    for shards in [1usize, 2, 4, 8] {
        let cfg = cfg(shards);
        let dir = fresh_dir(&format!("resume-{shards}"));

        let (full, _) = run_replay_lifecycle(&s, &cfg, &chaos(CHAOS), &LifecyclePlan::none());

        let plan = LifecyclePlan {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 2,
            kill_at_epoch: Some(5),
            faults_spec: String::from(CHAOS),
            ..LifecyclePlan::none()
        };
        let (killed, killed_report) = run_replay_lifecycle(&s, &cfg, &chaos(CHAOS), &plan);
        assert!(
            killed.epochs < full.epochs,
            "{shards} shard(s): the kill must actually cut the run short"
        );
        assert!(
            killed_report.checkpoints_written >= 1,
            "{shards} shard(s): no checkpoint was written before the kill"
        );
        assert!(killed_report
            .events
            .iter()
            .any(|e| e.kind == "killed" && e.epoch == 5));

        let resume_plan = LifecyclePlan {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 2,
            ..LifecyclePlan::none()
        };
        let (resumed, resumed_report) = resume_from_checkpoint(&s, &cfg, &resume_plan)
            .unwrap_or_else(|e| panic!("{shards} shard(s): resume failed: {e}"));
        assert!(resumed_report.resumed_from.is_some());
        assert_eq!(
            render_outcome_json(&resumed),
            render_outcome_json(&full),
            "{shards} shard(s): resumed snapshot differs from the uninterrupted run"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A swap whose proposed program provably diverges from the running
/// one must be rejected at the drain point with the configuration —
/// and the run's outcome — untouched.
#[test]
fn rejected_swap_leaves_outcome_and_generation_untouched() {
    let s = small_flood();
    let cfg = cfg(4);
    let base = CaseStudyApp::build(CaseStudyParams::default()).unwrap();
    // Halving the rate window changes the ring-buffer modulus, so the
    // equivalence check finds a concrete counterexample.
    let poisoned = CaseStudyApp::build(CaseStudyParams {
        window_size: CaseStudyParams::default().window_size / 2,
        ..CaseStudyParams::default()
    })
    .unwrap();

    let (baseline, _) = run_replay_lifecycle(&s, &cfg, &chaos(CHAOS), &LifecyclePlan::none());

    let plan = LifecyclePlan {
        initial_program: Some(base.pipeline),
        swaps: vec![SwapRequest {
            at_epoch: 3,
            expected_generation: 0,
            program: Some(poisoned.pipeline),
            bindings: Vec::new(),
            weights: Vec::new(),
        }],
        faults_spec: String::from(CHAOS),
        ..LifecyclePlan::none()
    };
    let (out, report) = run_replay_lifecycle(&s, &cfg, &chaos(CHAOS), &plan);

    assert_eq!(report.swaps_rejected, 1);
    assert_eq!(report.swaps_committed, 0);
    assert_eq!(report.generation, 0, "a rejected swap must not bump the generation");
    let rejection = report
        .events
        .iter()
        .find(|e| e.kind == "swap_rejected")
        .expect("a swap_rejected event");
    assert_eq!(rejection.epoch, 3);
    assert!(
        rejection.detail.contains("diverges"),
        "the rejection names the counterexample: {}",
        rejection.detail
    );
    assert_eq!(
        render_outcome_json(&out),
        render_outcome_json(&baseline),
        "a rejected swap must leave the run's outcome untouched"
    );
}

/// An equivalent recompile commits and bumps the generation — and
/// still leaves the statistical outcome untouched, because the swap is
/// a control-plane event, not a data mutation.
#[test]
fn accepted_swap_bumps_generation_without_changing_the_outcome() {
    let s = small_flood();
    let cfg = cfg(2);
    let base = CaseStudyApp::build(CaseStudyParams::default()).unwrap();
    let recompile = CaseStudyApp::build(CaseStudyParams::default()).unwrap();

    let (baseline, _) = run_replay_lifecycle(&s, &cfg, &FaultSchedule::none(), &LifecyclePlan::none());

    let plan = LifecyclePlan {
        initial_program: Some(base.pipeline),
        swaps: vec![SwapRequest {
            at_epoch: 3,
            expected_generation: 0,
            program: Some(recompile.pipeline),
            bindings: Vec::new(),
            weights: Vec::new(),
        }],
        ..LifecyclePlan::none()
    };
    let (out, report) = run_replay_lifecycle(&s, &cfg, &FaultSchedule::none(), &plan);

    assert_eq!(report.swaps_committed, 1);
    assert_eq!(report.swaps_rejected, 0);
    assert_eq!(report.generation, 1);
    assert!(report
        .events
        .iter()
        .any(|e| e.kind == "swap_committed" && e.epoch == 3));
    assert_eq!(render_outcome_json(&out), render_outcome_json(&baseline));
}

/// `reconfig_storm=1.0` redelivers every committed swap; the duplicate
/// carries the old expected generation, so it must vet to a stale
/// rejection — commit exactly once, reject exactly once.
#[test]
fn storm_redelivered_swap_is_rejected_as_stale() {
    let s = small_flood();
    let cfg = cfg(2);
    let base = CaseStudyApp::build(CaseStudyParams::default()).unwrap();
    let recompile = CaseStudyApp::build(CaseStudyParams::default()).unwrap();

    let spec = "reconfig_storm=1.0";
    let plan = LifecyclePlan {
        initial_program: Some(base.pipeline),
        swaps: vec![SwapRequest {
            at_epoch: 3,
            expected_generation: 0,
            program: Some(recompile.pipeline),
            bindings: Vec::new(),
            weights: Vec::new(),
        }],
        faults_spec: String::from(spec),
        ..LifecyclePlan::none()
    };
    let (_, report) = run_replay_lifecycle(&s, &cfg, &chaos(spec), &plan);

    assert_eq!(report.swaps_committed, 1, "the original commits once");
    assert_eq!(report.swaps_rejected, 1, "the redelivery is rejected");
    assert_eq!(report.generation, 1, "the generation bumps exactly once");
    let stale = report
        .events
        .iter()
        .find(|e| e.kind == "stale_swap_rejected")
        .expect("a stale_swap_rejected event");
    assert!(stale.detail.contains("stale"), "{}", stale.detail);
}

/// `ckpt_corrupt=N` tears the Nth checkpoint write after its checksum
/// is computed. The loader must detect the damage, fall back to the
/// previous checkpoint, and the resumed run must still be
/// byte-identical to the uninterrupted one.
#[test]
fn torn_checkpoint_write_falls_back_and_still_resumes_identically() {
    let s = small_flood();
    let cfg = cfg(4);
    let dir = fresh_dir("torn");
    // Checkpoints land at epochs 2 (#0), 4 (#1), 6 (#2); the newest
    // (#2) is corrupted, so resume must fall back to #1.
    let spec = "shard_crash=1@3,ctrl_loss=0.30,ckpt_corrupt=2";

    let (full, _) = run_replay_lifecycle(&s, &cfg, &chaos(spec), &LifecyclePlan::none());

    let plan = LifecyclePlan {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 2,
        kill_at_epoch: Some(7),
        faults_spec: String::from(spec),
        ..LifecyclePlan::none()
    };
    let (_, killed_report) = run_replay_lifecycle(&s, &cfg, &chaos(spec), &plan);
    assert_eq!(killed_report.checkpoints_written, 3);

    let resume_plan = LifecyclePlan {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 2,
        ..LifecyclePlan::none()
    };
    let (resumed, report) = resume_from_checkpoint(&s, &cfg, &resume_plan).unwrap();
    assert_eq!(
        report.resumed_from,
        Some(1),
        "resume must fall back past the corrupt newest checkpoint"
    );
    assert!(
        report
            .events
            .iter()
            .any(|e| e.kind == "checkpoint_fallback" && e.detail.contains("ckpt-000002")),
        "the fallback names the rejected file: {:?}",
        report.events
    );
    assert_eq!(render_outcome_json(&resumed), render_outcome_json(&full));
    std::fs::remove_dir_all(&dir).ok();
}

/// Resume validates its inputs: a missing directory, a mismatched
/// topology, and a mismatched schedule are all loud errors instead of
/// silently divergent runs.
#[test]
fn resume_rejects_mismatched_inputs() {
    let s = small_flood();
    let dir = fresh_dir("mismatch");

    let err = resume_from_checkpoint(
        &s,
        &cfg(4),
        &LifecyclePlan {
            checkpoint_dir: Some(dir.clone()),
            ..LifecyclePlan::none()
        },
    )
    .unwrap_err();
    assert!(err.contains("checkpoint"), "missing dir is a clear error: {err}");

    let plan = LifecyclePlan {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 2,
        kill_at_epoch: Some(5),
        ..LifecyclePlan::none()
    };
    let _ = run_replay_lifecycle(&s, &cfg(4), &FaultSchedule::none(), &plan);

    let err = resume_from_checkpoint(
        &s,
        &cfg(2),
        &LifecyclePlan {
            checkpoint_dir: Some(dir.clone()),
            ..LifecyclePlan::none()
        },
    )
    .unwrap_err();
    assert!(err.contains("shard"), "topology mismatch is named: {err}");
    std::fs::remove_dir_all(&dir).ok();
}
