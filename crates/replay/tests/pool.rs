//! Worker-pool conformance: the persistent-pool engine behind
//! [`replay::run_replay_with_faults`] must be a bit-identical drop-in
//! for the per-epoch thread-scope engine it replaced, which is kept as
//! [`replay::reference`] exactly for this comparison.
//!
//! "Bit-identical" is literal: merged tracker state compares with
//! `==`, alert sequences and quarantine incidents (including captured
//! panic-message strings) compare with `==`, and the deterministic
//! telemetry counters — per-shard packet/SYN/batch counters and the
//! batch-size histogram, which the pool reconstructs from counts
//! rather than recording per chunk — must match field for field.
//! Wall-clock fields (ingest/barrier/epoch timings, elapsed) are the
//! only permitted difference.

use faultinject::FaultSchedule;
use replay::{reference, run_replay, run_replay_with_faults, ReplayConfig, ReplayOutcome};
use workloads::{Schedule, SynFloodWorkload};

fn small_flood() -> Schedule {
    let (s, _) = SynFloodWorkload {
        background_cps: 500,
        flood_pps: 20_000,
        flood_start: 150_000_000,
        duration: 400_000_000,
        seed: 11,
        ..SynFloodWorkload::default()
    }
    .generate();
    s
}

/// Asserts everything deterministic about two outcomes is equal.
fn assert_outcomes_identical(pool: &ReplayOutcome, refr: &ReplayOutcome, ctx: &str) {
    assert_eq!(pool.merged, refr.merged, "{ctx}: merged state");
    assert_eq!(pool.alerts, refr.alerts, "{ctx}: alerts");
    assert_eq!(pool.detected_at, refr.detected_at, "{ctx}: detection time");
    assert_eq!(pool.packets, refr.packets, "{ctx}: packets");
    assert_eq!(pool.epochs, refr.epochs, "{ctx}: epochs");
    assert_eq!(pool.health, refr.health, "{ctx}: health (incidents included)");
    assert_eq!(
        pool.ensemble, refr.ensemble,
        "{ctx}: ensemble report (per-engine summaries and fired log)"
    );
    assert_eq!(
        pool.provenance, refr.provenance,
        "{ctx}: alert provenance (signals, lineage, drilldown transactions)"
    );

    // Deterministic telemetry: per-shard counters and the batch-size
    // histogram must be bit-identical (the histogram type derives Eq).
    assert_eq!(
        pool.telemetry.shards.len(),
        refr.telemetry.shards.len(),
        "{ctx}: shard metric sets"
    );
    for (s, (p, r)) in pool
        .telemetry
        .shards
        .iter()
        .zip(&refr.telemetry.shards)
        .enumerate()
    {
        assert_eq!(p.packets, r.packets, "{ctx}: shard {s} packets");
        assert_eq!(p.syn_packets, r.syn_packets, "{ctx}: shard {s} syn_packets");
        assert_eq!(p.batches, r.batches, "{ctx}: shard {s} batches");
        assert_eq!(p.batch_size, r.batch_size, "{ctx}: shard {s} batch_size histogram");
        assert_eq!(
            p.barrier_wait_ns.count(),
            r.barrier_wait_ns.count(),
            "{ctx}: shard {s} barrier records"
        );
    }
    for (name, p, r) in [
        ("epochs", pool.telemetry.epochs.get(), refr.telemetry.epochs.get()),
        ("alerts", pool.telemetry.alerts.get(), refr.telemetry.alerts.get()),
        (
            "faults_injected",
            pool.telemetry.faults_injected.get(),
            refr.telemetry.faults_injected.get(),
        ),
        (
            "shards_quarantined",
            pool.telemetry.shards_quarantined.get(),
            refr.telemetry.shards_quarantined.get(),
        ),
        (
            "packets_lost",
            pool.telemetry.packets_lost.get(),
            refr.telemetry.packets_lost.get(),
        ),
        (
            "packets_rerouted",
            pool.telemetry.packets_rerouted.get(),
            refr.telemetry.packets_rerouted.get(),
        ),
        (
            "reports_dropped",
            pool.telemetry.reports_dropped.get(),
            refr.telemetry.reports_dropped.get(),
        ),
    ] {
        assert_eq!(p, r, "{ctx}: telemetry counter {name}");
    }
}

#[test]
fn pool_matches_reference_at_every_shard_count() {
    let s = small_flood();
    for shards in [1usize, 2, 4, 8] {
        let cfg = ReplayConfig {
            shards,
            ..ReplayConfig::default()
        };
        let pool = run_replay(&s, &cfg);
        let refr = reference::run_replay(&s, &cfg);
        assert_outcomes_identical(&pool, &refr, &format!("{shards} shards"));
        assert!(!pool.health.degraded());
    }
}

#[test]
fn ensemble_report_is_identical_across_shard_counts() {
    // Sharding must not leak into detection: the merged per-interval
    // state is a pure fold of the shards, and the HyperLogLog register
    // merge is partition-invariant, so the same seed + workload must
    // yield a byte-identical DetectionResult sequence on 1, 2, 4 and
    // 8 shards — under both engines.
    let s = small_flood();
    let baseline = run_replay(
        &s,
        &ReplayConfig {
            shards: 1,
            ..ReplayConfig::default()
        },
    );
    assert!(
        !baseline.ensemble.fired.is_empty(),
        "the flood must trip at least one engine"
    );
    for shards in [2usize, 4, 8] {
        let cfg = ReplayConfig {
            shards,
            ..ReplayConfig::default()
        };
        let pool = run_replay(&s, &cfg);
        assert_eq!(
            pool.ensemble, baseline.ensemble,
            "{shards} shards: ensemble report differs from 1-shard run"
        );
        let refr = reference::run_replay(&s, &cfg);
        assert_eq!(
            refr.ensemble, baseline.ensemble,
            "{shards} shards (reference): ensemble report differs from 1-shard run"
        );
    }
}

#[test]
fn pool_matches_reference_across_batch_sizes() {
    let s = small_flood();
    for batch in [1usize, 7, 256, 4096] {
        let cfg = ReplayConfig {
            shards: 4,
            batch,
            ..ReplayConfig::default()
        };
        let pool = run_replay(&s, &cfg);
        let refr = reference::run_replay(&s, &cfg);
        assert_outcomes_identical(&pool, &refr, &format!("batch {batch}"));
    }
}

#[test]
fn pool_matches_reference_under_chaos_seeds() {
    // The CI canned schedule plus a nastier mix: a crash, an injected
    // worker panic (exact captured message must round-trip), a stall,
    // and report loss — across several seeds.
    let s = small_flood();
    let cfg = ReplayConfig {
        shards: 4,
        ..ReplayConfig::default()
    };
    for spec in [
        "shard_crash=1@3,ctrl_loss=0.30",
        "shard_panic=2@4",
        "shard_crash=1@3,shard_panic=2@5,shard_stall=0@2:1000000,ctrl_loss=0.30",
    ] {
        for seed in [0u64, 42, 1234] {
            let faults = FaultSchedule::parse(spec, seed).unwrap();
            let pool = run_replay_with_faults(&s, &cfg, &faults);
            let refr = reference::run_replay_with_faults(&s, &cfg, &faults);
            assert_outcomes_identical(&pool, &refr, &format!("spec {spec:?} seed {seed}"));
        }
    }
}

#[test]
fn pool_matches_reference_when_every_shard_dies() {
    let s = small_flood();
    let cfg = ReplayConfig {
        shards: 2,
        ..ReplayConfig::default()
    };
    let faults = FaultSchedule::parse("shard_crash=0@1,shard_panic=1@1", 0).unwrap();
    let pool = run_replay_with_faults(&s, &cfg, &faults);
    let refr = reference::run_replay_with_faults(&s, &cfg, &faults);
    assert_outcomes_identical(&pool, &refr, "total shard loss");
    assert_eq!(pool.health.shards_alive, 0);
    assert_eq!(pool.merged.packets, 0);
}

#[test]
fn pool_matches_reference_on_empty_schedule() {
    let cfg = ReplayConfig {
        shards: 4,
        ..ReplayConfig::default()
    };
    let pool = run_replay(&Schedule::new(), &cfg);
    let refr = reference::run_replay(&Schedule::new(), &cfg);
    assert_outcomes_identical(&pool, &refr, "empty schedule");
    assert_eq!(pool.epochs, 0);
}

#[test]
fn pool_reports_queue_and_pipeline_telemetry() {
    let s = small_flood();
    let cfg = ReplayConfig {
        shards: 4,
        ..ReplayConfig::default()
    };
    let out = run_replay(&s, &cfg);
    let t = &out.telemetry;
    assert_eq!(t.queue_capacity, 2, "double-buffered dispatch queues");
    for (s_idx, m) in t.shards.iter().enumerate() {
        assert_eq!(
            m.queue_depth.count(),
            out.epochs,
            "shard {s_idx}: one dispatch per epoch"
        );
        assert_eq!(
            m.queue_wait_ns.count(),
            out.epochs,
            "shard {s_idx}: one dequeue per epoch"
        );
        // Collect-before-dispatch keeps at most one epoch in flight.
        assert_eq!(m.queue_depth.max(), Some(1), "shard {s_idx}: queue depth");
    }
    // Partition work: one initial route plus one speculative route per
    // remaining epoch (faultless runs never mispredict) — exactly one
    // sample per epoch. The up-front hash pass lands in the dedicated
    // warm-up counter, not the per-epoch histogram.
    assert_eq!(t.partition_ns.count(), out.epochs);
    assert!(t.prepartition_ns.get() > 0, "warm-up hash pass recorded");
    // Every epoch except the last overlapped the next epoch's routing.
    assert_eq!(t.overlap_ns.count(), out.epochs - 1);

    // The reference engine reports none of this.
    let refr = reference::run_replay(&s, &cfg);
    assert_eq!(refr.telemetry.queue_capacity, 0);
    assert_eq!(refr.telemetry.merged_shard().queue_depth.count(), 0);
    assert_eq!(refr.telemetry.partition_ns.count(), 0);
    assert_eq!(refr.telemetry.overlap_ns.count(), 0);
}

/// The point of the pool: on a many-epoch workload, not paying the
/// per-interval spawn/join tax makes the 4-shard pool faster than the
/// 4-shard scope-respawn engine. Gated on core count (the comparison
/// is meaningless on a starved machine) and run best-of-3 per engine
/// to shrug off scheduler noise.
#[test]
fn pool_beats_reference_on_four_shards() {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores < 4 {
        eprintln!("skipping pool-vs-reference throughput check: {cores} cores");
        return;
    }
    // Many epochs amplify the reference engine's per-interval
    // spawn/join overhead: 1 ms detector intervals over a 400 ms trace
    // is ~400 epochs, i.e. ~1600 thread spawns for 4 shards.
    let mut cfg = ReplayConfig {
        shards: 4,
        ..ReplayConfig::default()
    };
    cfg.detector.interval_ns = 1_000_000;
    let s = small_flood();

    let best = |run: &dyn Fn() -> std::time::Duration| {
        (0..3).map(|_| run()).min().expect("three timed runs")
    };
    let pool_best = best(&|| run_replay(&s, &cfg).elapsed);
    let ref_best = best(&|| reference::run_replay(&s, &cfg).elapsed);
    assert!(
        pool_best < ref_best,
        "4-shard pool ({pool_best:?}) must beat the scope-respawn engine ({ref_best:?})"
    );
}

/// The epoch histogram must record what a wall clock actually
/// measured. The old record summed the ingest window with the merge
/// window — double-counting overlap — so `epoch_ns` samples could
/// exceed real time. Every epoch's wall time strictly contains its
/// merge window, so exact sums must dominate.
#[test]
fn epoch_ns_is_wall_time_and_dominates_merge_ns() {
    let s = small_flood();
    for engine in ["pool", "reference"] {
        let cfg = ReplayConfig {
            shards: 4,
            ..ReplayConfig::default()
        };
        let out = if engine == "pool" {
            run_replay(&s, &cfg)
        } else {
            reference::run_replay(&s, &cfg)
        };
        let t = &out.telemetry;
        assert_eq!(t.epoch_ns.count(), out.epochs, "{engine}: one sample per epoch");
        assert_eq!(t.merge_ns.count(), out.epochs, "{engine}: one merge per epoch");
        assert!(
            t.epoch_ns.sum() >= t.merge_ns.sum(),
            "{engine}: epoch wall time ({}) must contain the merge window ({})",
            t.epoch_ns.sum(),
            t.merge_ns.sum()
        );
        assert!(
            u128::from(t.elapsed_ns) >= t.epoch_ns.sum(),
            "{engine}: run wall time ({}) must contain every epoch ({}) — \
             the double-count this regression test guards against",
            t.elapsed_ns,
            t.epoch_ns.sum()
        );
    }
}

/// Steady-state barriers ship sparse deltas; quarantines force full
/// rebuilds. Both paths must stay bit-identical across engines — and
/// the delta telemetry itself is deterministic (journals depend only
/// on the frame sequence), so it must match across engines too.
#[test]
fn delta_merges_are_sparse_and_identical_across_engines() {
    let s = small_flood();
    let cfg = ReplayConfig {
        shards: 4,
        ..ReplayConfig::default()
    };

    // Faultless: exactly one rebuild (the first barrier), everything
    // else rides the delta path.
    let pool = run_replay(&s, &cfg);
    let refr = reference::run_replay(&s, &cfg);
    assert_outcomes_identical(&pool, &refr, "faultless delta merges");
    for (name, out) in [("pool", &pool), ("reference", &refr)] {
        let t = &out.telemetry;
        assert_eq!(t.merge_rebuilds.get(), 1, "{name}: only the first barrier rebuilds");
        assert!(t.merge_delta_bytes.get() > 0, "{name}: deltas shipped");
        assert!(
            t.merge_skipped_registers.get() > 0,
            "{name}: untouched registers skipped"
        );
    }
    for (name, p, r) in [
        ("merge_rebuilds", pool.telemetry.merge_rebuilds.get(), refr.telemetry.merge_rebuilds.get()),
        (
            "merge_delta_bytes",
            pool.telemetry.merge_delta_bytes.get(),
            refr.telemetry.merge_delta_bytes.get(),
        ),
        (
            "merge_skipped_registers",
            pool.telemetry.merge_skipped_registers.get(),
            refr.telemetry.merge_skipped_registers.get(),
        ),
    ] {
        assert_eq!(p, r, "faultless: delta telemetry counter {name}");
    }

    // A quarantined shard's carried-forward state must leave the
    // merged view through a rebuild, then the survivors resume the
    // delta path — outcomes stay identical and the rebuild count shows
    // both transitions (first barrier + post-quarantine).
    let faults = FaultSchedule::parse("shard_crash=1@3,shard_panic=2@5", 7).unwrap();
    let pool = run_replay_with_faults(&s, &cfg, &faults);
    let refr = reference::run_replay_with_faults(&s, &cfg, &faults);
    assert_outcomes_identical(&pool, &refr, "quarantine through the delta path");
    assert_eq!(pool.health.incidents.len(), 2);
    for (name, out) in [("pool", &pool), ("reference", &refr)] {
        let t = &out.telemetry;
        assert_eq!(
            t.merge_rebuilds.get(),
            3,
            "{name}: first barrier + one rebuild per quarantine epoch"
        );
        assert!(t.merge_delta_bytes.get() > 0, "{name}: survivors still delta-merge");
    }
    assert_eq!(
        pool.telemetry.merge_delta_bytes.get(),
        refr.telemetry.merge_delta_bytes.get(),
        "chaos: delta bytes identical across engines"
    );
    assert_eq!(
        pool.telemetry.merge_skipped_registers.get(),
        refr.telemetry.merge_skipped_registers.get(),
        "chaos: skipped registers identical across engines"
    );
}

/// With every shard quarantined the merged view is empty, so the
/// median estimate has no answer. That used to be silently flattened
/// to 0; now each fallback is counted — identically on both engines.
#[test]
fn total_shard_loss_counts_median_fallbacks() {
    let s = small_flood();
    let cfg = ReplayConfig {
        shards: 2,
        ..ReplayConfig::default()
    };
    let faults = FaultSchedule::parse("shard_crash=0@1,shard_panic=1@1", 0).unwrap();
    let pool = run_replay_with_faults(&s, &cfg, &faults);
    let refr = reference::run_replay_with_faults(&s, &cfg, &faults);
    assert_outcomes_identical(&pool, &refr, "total loss median fallback");
    assert!(
        pool.telemetry.median_fallbacks.get() > 0,
        "empty merged state must be counted, not silently zeroed"
    );
    assert_eq!(
        pool.telemetry.median_fallbacks.get(),
        refr.telemetry.median_fallbacks.get(),
        "median fallbacks identical across engines"
    );
    assert_eq!(pool.telemetry.syn_clamps.get(), 0, "no negative SYN counts here");
}
