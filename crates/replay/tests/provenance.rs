//! Alert provenance and run-snapshot conformance.
//!
//! Provenance must (a) tell a true story — signal values, engine
//! scores, lineage, and drilldown transactions that match what the run
//! actually did — and (b) be part of the bit-identity surface: the
//! same workload yields byte-identical records at every shard count,
//! and the JSON snapshot round-trips field for field (the golden
//! test).

use faultinject::FaultSchedule;
use replay::{
    parse_outcome_json, render_outcome_json, run_replay, run_replay_with_faults, ReplayConfig,
    RunSnapshot,
};
use workloads::{Schedule, SynFloodWorkload};

fn flood() -> Schedule {
    let (s, _) = SynFloodWorkload {
        background_cps: 500,
        flood_pps: 20_000,
        flood_start: 150_000_000,
        duration: 400_000_000,
        seed: 11,
        ..SynFloodWorkload::default()
    }
    .generate();
    s
}

#[test]
fn flood_alert_carries_its_provenance() {
    let s = flood();
    let out = run_replay(&s, &ReplayConfig::default());
    assert!(
        !out.provenance.is_empty(),
        "the flood must produce at least one provenance record"
    );
    for (i, rec) in out.provenance.iter().enumerate() {
        assert_eq!(rec.id, i as u64, "ids are dense and ordered");
        // The record quotes a real ensemble verdict: some engine fired
        // or the combined score crossed, and the quoted engine rows
        // include at least one that actually fired.
        assert!(
            rec.provenance.engines.iter().any(|e| e.fired),
            "record {i} cites no firing engine: {rec:?}"
        );
        assert_eq!(
            rec.provenance.epoch, rec.lineage.epoch,
            "provenance and lineage disagree on the epoch"
        );
        assert_eq!(
            rec.lineage.delivered_shards,
            (0..out.health.shards_configured).collect::<Vec<_>>(),
            "a clean run delivers every shard"
        );
        assert!(rec.lineage.quarantined.is_empty(), "clean run: {rec:?}");
        assert_eq!(rec.lineage.rerouted_frames, 0, "clean run reroutes nothing");
        // Signals snapshot the merged interval: the flood epoch saw
        // packets, and the SYN count can't exceed them.
        assert!(rec.provenance.signals.packets > 0);
        assert!(rec.provenance.signals.syns <= rec.provenance.signals.packets);
    }
}

#[test]
fn provenance_is_invariant_across_shard_counts() {
    let s = flood();
    let baseline = run_replay(
        &s,
        &ReplayConfig {
            shards: 1,
            ..ReplayConfig::default()
        },
    );
    assert!(!baseline.provenance.is_empty());
    for shards in [2usize, 4, 8] {
        let out = run_replay(
            &s,
            &ReplayConfig {
                shards,
                ..ReplayConfig::default()
            },
        );
        // The detection-side story (signals, scores, cause, drilldown)
        // must not know how many shards assembled the interval...
        for (b, o) in baseline.provenance.iter().zip(out.provenance.iter()) {
            assert_eq!(
                b.provenance, o.provenance,
                "{shards} shards: detection provenance diverged"
            );
            assert_eq!(b.drilldown, o.drilldown, "{shards} shards: drilldown");
        }
        // ...while the lineage names exactly the shards that did.
        for rec in &out.provenance {
            assert_eq!(
                rec.lineage.delivered_shards,
                (0..shards).collect::<Vec<_>>(),
                "{shards} shards: delivered set"
            );
        }
    }
}

#[test]
fn chaos_lineage_names_the_quarantined_shard() {
    let s = flood();
    let cfg = ReplayConfig {
        shards: 4,
        ..ReplayConfig::default()
    };
    let faults = FaultSchedule::parse("shard_crash=1@3", 42).expect("valid spec");
    let out = run_replay_with_faults(&s, &cfg, &faults);
    assert!(!out.provenance.is_empty());
    // Every record fired after the crash epoch must carry the incident
    // and exclude the dead shard from the delivered set.
    for rec in &out.provenance {
        if rec.lineage.epoch >= 3 {
            assert!(
                rec.lineage.quarantined.iter().any(|q| q.shard == 1),
                "post-crash record misses the quarantine: {rec:?}"
            );
            assert!(
                !rec.lineage.delivered_shards.contains(&1),
                "dead shard listed as delivered: {rec:?}"
            );
        }
    }
}

#[test]
fn golden_snapshot_round_trips_field_for_field() {
    // The golden test: render the full outcome — alerts, health with
    // incidents, ensemble report, provenance records, merged summary —
    // to JSON and parse it back; every field must survive. Run under
    // chaos so the optional structures (incidents, carried epochs,
    // reroutes) are populated rather than vacuously empty.
    let s = flood();
    let cfg = ReplayConfig {
        shards: 4,
        ..ReplayConfig::default()
    };
    let faults =
        FaultSchedule::parse("shard_crash=1@3,ctrl_loss=0.30", 42).expect("valid spec");
    let out = run_replay_with_faults(&s, &cfg, &faults);
    assert!(!out.provenance.is_empty(), "need records to round-trip");
    assert!(
        !out.health.incidents.is_empty(),
        "need incidents to round-trip"
    );

    let snap = RunSnapshot::of(&out);
    let text = render_outcome_json(&out);
    let parsed = parse_outcome_json(&text).expect("rendered outcome parses");
    assert_eq!(parsed, snap, "snapshot did not survive the round trip");

    // And rendering the parsed snapshot again is byte-stable.
    let text2 = replay::snapshot::render_snapshot_json(&parsed);
    assert_eq!(text, text2, "re-render is not byte-identical");
}
