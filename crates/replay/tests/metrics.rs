//! Integration tests for the replay engine's telemetry: the exported
//! snapshot must be internally consistent with the [`ReplayOutcome`]
//! and must render to a Prometheus exposition that passes the format
//! checker — the same checks CI runs against the CLI's `--metrics-out`
//! output.

use replay::{run_replay, ReplayConfig};
use telemetry::{check_prometheus, render_json, render_prometheus, MetricKind, SampleValue};
use workloads::{Schedule, SynFloodWorkload};

fn flood() -> Schedule {
    let (s, _) = SynFloodWorkload {
        background_cps: 500,
        flood_pps: 20_000,
        flood_start: 150_000_000,
        duration: 400_000_000,
        seed: 11,
        ..SynFloodWorkload::default()
    }
    .generate();
    s
}

fn run(shards: usize) -> replay::ReplayOutcome {
    run_replay(
        &flood(),
        &ReplayConfig {
            shards,
            ..ReplayConfig::default()
        },
    )
}

#[test]
fn per_shard_packet_counters_sum_to_outcome_packets() {
    // The acceptance check: a 4-shard run's per-shard packet counters
    // must sum to ReplayOutcome::packets exactly.
    let out = run(4);
    let snap = out.telemetry.snapshot();
    assert_eq!(snap.counter_sum("replay_shard_packets_total"), out.packets);
    assert_eq!(snap.counter_sum("replay_packets_total"), out.packets);
    // And each shard appears as its own labelled sample.
    let fam = snap
        .find("replay_shard_packets_total")
        .expect("per-shard family present");
    assert_eq!(fam.samples.len(), 4);
    for (i, s) in fam.samples.iter().enumerate() {
        assert_eq!(s.labels, vec![("shard".to_string(), i.to_string())]);
    }
}

#[test]
fn prometheus_exposition_passes_the_checker() {
    let out = run(2);
    let text = render_prometheus(&out.telemetry.snapshot());
    let summary = check_prometheus(&text).unwrap_or_else(|errs| {
        panic!("exposition rejected:\n{}", errs.join("\n"));
    });
    assert!(summary.families >= 10, "families: {}", summary.families);
    assert!(summary.samples > summary.families);
}

#[test]
fn detector_metrics_flow_through_to_the_snapshot() {
    let out = run(2);
    assert!(out.detected_at.is_some(), "flood must be detected");
    let snap = out.telemetry.snapshot();
    // The fires family now carries one series per ensemble engine;
    // the central SYN-flood detector's own series must still equal
    // the alert list exactly.
    let fires = snap
        .find("anomaly_detector_fires_total")
        .expect("fires family exported");
    let synflood_fires: u64 = fires
        .samples
        .iter()
        .filter(|s| {
            s.labels
                .iter()
                .any(|(k, v)| k == "detector" && v == "epoch_synflood")
        })
        .map(|s| match s.value {
            SampleValue::Counter(c) => c,
            _ => 0,
        })
        .sum();
    assert_eq!(
        synflood_fires,
        out.alerts.len() as u64,
        "every alert is attributed to exactly one check"
    );
    let delay = snap
        .find("anomaly_detection_delay_ns")
        .expect("delay histogram exported");
    assert_eq!(delay.kind, MetricKind::Histogram);
    let SampleValue::Histogram(h) = &delay.samples[0].value else {
        panic!("histogram family holds a histogram sample");
    };
    assert!(h.count >= 1, "the flood episode produced a delay sample");
}

#[test]
fn telemetry_does_not_depend_on_shard_count_for_totals() {
    let a = run(1);
    let b = run(8);
    assert_eq!(
        a.telemetry.merged_shard().packets.get(),
        b.telemetry.merged_shard().packets.get()
    );
    assert_eq!(
        a.telemetry.merged_shard().syn_packets.get(),
        b.telemetry.merged_shard().syn_packets.get()
    );
    assert_eq!(a.telemetry.epochs.get(), b.telemetry.epochs.get());
    assert_eq!(a.telemetry.alerts.get(), b.telemetry.alerts.get());
}

#[test]
fn json_rendering_contains_every_family_once() {
    let out = run(2);
    let snap = out.telemetry.snapshot();
    let json = render_json(&snap);
    for m in &snap.metrics {
        let needle = format!("\"name\":\"{}\"", m.name);
        assert_eq!(
            json.matches(&needle).count(),
            1,
            "family {} rendered exactly once",
            m.name
        );
    }
    // Crude but dependency-free structural sanity: balanced braces.
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes);
}
