//! Ensemble coverage matrix: each new workload is detectable by
//! exactly one new engine, and the seed detectors stay silent on all
//! of them.
//!
//! The workloads are built so every non-target signal is
//! deterministically flat (constant per-interval counts, constant
//! sizes, constant kind mix), which keeps every other engine's band
//! closed by construction:
//!
//! | workload    | target engine | moving signal              |
//! |-------------|---------------|----------------------------|
//! | seasonal    | holtwinters   | seasonal phase of packets  |
//! | scan        | cusum         | small persistent SYN drift |
//! | cardinality | cardinality   | distinct sources only      |
//!
//! Each test asserts the target engine fires within a bounded number
//! of intervals of the anomaly onset and never before it, and that
//! every other ensemble engine reports zero fires across the whole
//! run. `matrix_every_workload_caught_by_exactly_one_engine` is the
//! CI smoke: it fails if any workload is caught by zero engines or by
//! more than one.

use replay::{run_replay, EnsembleReport, ReplayConfig, ReplayOutcome};
use workloads::{
    CardinalitySpikeWorkload, LowSlowScanWorkload, Schedule, SeasonalDriftWorkload,
};

/// One row of the coverage matrix.
struct Row {
    workload: &'static str,
    engine: &'static str,
    /// Anomaly onset (ns).
    onset: u64,
    /// The engine must first fire within this many 10 ms intervals of
    /// onset.
    max_delay_intervals: u64,
    schedule: Schedule,
}

fn rows() -> Vec<Row> {
    let seasonal = SeasonalDriftWorkload::default();
    let scan = LowSlowScanWorkload::default();
    let card = CardinalitySpikeWorkload::default();
    vec![
        Row {
            workload: "seasonal",
            engine: "holtwinters",
            onset: seasonal.aligned_drift_start(),
            // The forecast is wrong from the first drifted interval.
            max_delay_intervals: 2,
            schedule: seasonal.generate(),
        },
        Row {
            workload: "scan",
            engine: "cusum",
            onset: scan.scan_start,
            // +3 SYNs/interval against slack ≈ σ/2 accumulates to the
            // 8σ threshold in ~10 intervals.
            max_delay_intervals: 16,
            schedule: scan.generate().0,
        },
        Row {
            workload: "cardinality",
            engine: "cardinality",
            onset: card.spike_start,
            // The HLL estimate jumps inside the first spiked interval.
            max_delay_intervals: 2,
            schedule: card.generate(),
        },
    ]
}

fn run(schedule: &Schedule) -> ReplayOutcome {
    run_replay(
        schedule,
        &ReplayConfig {
            shards: 4,
            ..ReplayConfig::default()
        },
    )
}

/// Engines that fired at least once, in ensemble order.
fn fired_engines(report: &EnsembleReport) -> Vec<&'static str> {
    report
        .engines
        .iter()
        .filter(|e| e.fires > 0)
        .map(|e| e.name)
        .collect()
}

fn assert_exclusive_catch(out: &ReplayOutcome, row: &Row) {
    let interval = ReplayConfig::default().detector.interval_ns;
    let target = out
        .ensemble
        .engine(row.engine)
        .unwrap_or_else(|| panic!("{}: engine {} not in report", row.workload, row.engine));
    let first = target.first_fired_at.unwrap_or_else(|| {
        panic!(
            "{}: target engine {} never fired (report: {:?})",
            row.workload,
            row.engine,
            fired_engines(&out.ensemble)
        )
    });
    assert!(
        first >= row.onset,
        "{}: {} fired at {} ns, before the {} ns onset — false positive",
        row.workload,
        row.engine,
        first,
        row.onset
    );
    let delay_intervals = (first - row.onset) / interval;
    assert!(
        delay_intervals <= row.max_delay_intervals,
        "{}: {} took {} intervals to fire (bound {})",
        row.workload,
        row.engine,
        delay_intervals,
        row.max_delay_intervals
    );
    for e in &out.ensemble.engines {
        if e.name != row.engine {
            assert_eq!(
                e.fires, 0,
                "{}: engine {} fired {} time(s) — the workload must be exclusive to {}",
                row.workload, e.name, e.fires, row.engine
            );
        }
    }
}

#[test]
fn seasonal_drift_caught_only_by_holtwinters() {
    let row = &rows()[0];
    assert_exclusive_catch(&run(&row.schedule), row);
}

#[test]
fn low_and_slow_scan_caught_only_by_cusum() {
    let row = &rows()[1];
    assert_exclusive_catch(&run(&row.schedule), row);
}

#[test]
fn cardinality_spike_caught_only_by_hyperloglog() {
    let row = &rows()[2];
    assert_exclusive_catch(&run(&row.schedule), row);
}

/// The CI coverage smoke: every workload caught by exactly one
/// engine, and the matrix printed for the build log.
#[test]
fn matrix_every_workload_caught_by_exactly_one_engine() {
    let mut failures = Vec::new();
    for row in &rows() {
        let out = run(&row.schedule);
        let caught = fired_engines(&out.ensemble);
        println!(
            "coverage: {:<12} -> {:?} (want exactly [{:?}])",
            row.workload, caught, row.engine
        );
        if caught.len() != 1 || caught[0] != row.engine {
            failures.push(format!(
                "{}: caught by {:?}, want exactly [{:?}]",
                row.workload, caught, row.engine
            ));
        }
    }
    assert!(failures.is_empty(), "coverage holes:\n{}", failures.join("\n"));
}

/// The seed detectors' own workload still belongs to them: the legacy
/// SYN flood is caught by the lifted synflood engine and by none of
/// the three workload-specific engines' *exclusive* claims (other
/// volumetric engines may also see a flood — that is expected and
/// allowed; exclusivity is a property of the crafted workloads, not
/// of floods).
#[test]
fn synflood_still_caught_by_the_lifted_engine() {
    let (s, _) = workloads::SynFloodWorkload {
        background_cps: 500,
        flood_pps: 20_000,
        flood_start: 150_000_000,
        duration: 400_000_000,
        seed: 11,
        ..workloads::SynFloodWorkload::default()
    }
    .generate();
    let out = run(&s);
    let syn = out.ensemble.engine("synflood").expect("synflood row");
    assert!(syn.fires > 0, "the lifted engine must still catch floods");
    assert_eq!(syn.first_fired_at, out.detected_at);
}
