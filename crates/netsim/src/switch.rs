//! A switch node wrapping a [`p4sim::Pipeline`].

use crate::control::ControlMsg;
use crate::node::{Node, NodeCtx, NodeId};
use crate::{SimTime, MICROS};
use bytes::Bytes;
use p4sim::{Pipeline, RuntimeRequest};

/// Latency model of the switch's slow paths. (Pipeline traversal
/// latency is folded into link delays at topology construction.)
#[derive(Debug, Clone, Copy)]
pub struct SwitchTimings {
    /// Fixed cost of handling one runtime request.
    pub runtime_base: SimTime,
    /// Additional cost *per register cell* of bulk reads — the paper:
    /// "reading thousands of registers takes several milliseconds", i.e.
    /// on the order of microseconds per cell.
    pub per_cell_read: SimTime,
}

impl Default for SwitchTimings {
    fn default() -> Self {
        Self {
            runtime_base: 50 * MICROS,
            per_cell_read: 2 * MICROS,
        }
    }
}

/// A P4 switch attached to the simulation: forwards frames through its
/// pipeline, pushes digests to its controller, and answers runtime
/// requests with modelled latency.
pub struct P4SwitchNode {
    /// The data-plane program and state.
    pub pipeline: Pipeline,
    /// Controller to receive digests and responses.
    pub controller: Option<NodeId>,
    /// Latency model.
    pub timings: SwitchTimings,
    /// Frames whose processing returned an error (dropped); counted for
    /// observability.
    pub process_errors: u64,
    /// Digests emitted so far.
    pub digests_sent: u64,
}

impl P4SwitchNode {
    /// Wraps a pipeline with default timings and no controller.
    #[must_use]
    pub fn new(pipeline: Pipeline) -> Self {
        Self {
            pipeline,
            controller: None,
            timings: SwitchTimings::default(),
            process_errors: 0,
            digests_sent: 0,
        }
    }

    /// Sets the controller node.
    #[must_use]
    pub fn with_controller(mut self, controller: NodeId) -> Self {
        self.controller = Some(controller);
        self
    }

    /// Overrides the latency model.
    #[must_use]
    pub fn with_timings(mut self, timings: SwitchTimings) -> Self {
        self.timings = timings;
        self
    }

    fn read_cost(&self, req: &RuntimeRequest) -> SimTime {
        match req {
            RuntimeRequest::ReadRegisterRange { len, .. } => self.timings.per_cell_read * *len,
            RuntimeRequest::ReadRegister { .. } => self.timings.per_cell_read,
            RuntimeRequest::Batch(reqs) => reqs.iter().map(|r| self.read_cost(r)).sum(),
            _ => 0,
        }
    }
}

impl Node for P4SwitchNode {
    fn on_frame(&mut self, ctx: &mut NodeCtx, port: usize, frame: Bytes) {
        match self
            .pipeline
            .process_frame(&frame, port as u64, ctx.now)
        {
            Ok((_phv, outcome)) => {
                if let Some(controller) = self.controller {
                    for digest in outcome.digests {
                        self.digests_sent += 1;
                        ctx.send_control(
                            controller,
                            ControlMsg::Digest {
                                digest,
                                emitted_at: ctx.now,
                            },
                        );
                    }
                }
                if let Some(egress) = outcome.egress {
                    if !outcome.dropped {
                        ctx.send_frame(egress as usize, frame);
                    }
                }
            }
            Err(_) => {
                self.process_errors += 1;
            }
        }
    }

    fn on_control(&mut self, ctx: &mut NodeCtx, from: NodeId, msg: ControlMsg) {
        if let ControlMsg::Request { tag, req } = msg {
            let extra = self.timings.runtime_base + self.read_cost(&req);
            let resp = self.pipeline.runtime(&req);
            ctx.send_control_delayed(from, ControlMsg::Response { tag, resp }, extra);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::RecordingController;
    use crate::host::SinkHost;
    use crate::sim::Simulation;
    use crate::MILLIS;
    use p4sim::action::{ActionDef, Operand, Primitive};
    use p4sim::control::Control;
    use p4sim::phv::fields;
    use p4sim::program::ProgramBuilder;
    use p4sim::{RuntimeResponse, TargetModel};
    use packet::builder::PacketBuilder;
    use std::net::Ipv4Addr;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Pipeline forwarding everything to port 1 and digesting the packet
    /// length.
    fn fwd_pipeline() -> Pipeline {
        let mut b = ProgramBuilder::new();
        b.add_register("r", 64, 4);
        let act = b.add_action(ActionDef::new(
            "fwd",
            vec![
                Primitive::Digest {
                    id: 9,
                    values: vec![Operand::Field(fields::PKT_LEN)],
                },
                Primitive::Forward {
                    port: Operand::Const(1),
                },
            ],
        ));
        b.set_control(Control::ApplyAction(act));
        b.build(TargetModel::bmv2()).unwrap()
    }

    #[test]
    fn forwards_and_digests() {
        let mut sim = Simulation::new();
        let received = Arc::new(AtomicU64::new(0));
        let sink = sim.add_node(Box::new(SinkHost::new(received.clone())));
        let ctl = sim.add_node(Box::new(RecordingController::new()));
        let sw = sim.add_node(Box::new(
            P4SwitchNode::new(fwd_pipeline()).with_controller(ctl),
        ));
        sim.connect(sw, 1, sink, 0, 10 * MICROS);
        sim.connect_control(sw, ctl, MILLIS);

        let frame = PacketBuilder::udp(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(10, 0, 0, 1),
            1,
            2,
        )
        .build_bytes();
        let frame_len = frame.len() as u64;
        sim.inject_frame(0, sw, 0, frame);
        sim.run();

        assert_eq!(received.load(Ordering::SeqCst), 1, "sink got the frame");
        let rec = sim.node_as::<RecordingController>(ctl).unwrap();
        assert_eq!(rec.digests.len(), 1);
        assert_eq!(rec.digests[0].0, MILLIS, "control-channel delay applied");
        assert_eq!(rec.digests[0].2.values, vec![frame_len]);
        assert_eq!(sim.frames_delivered, 2, "injected + forwarded");
    }

    #[test]
    fn runtime_requests_round_trip_with_latency() {
        struct Asker {
            sw: NodeId,
            done_at: Arc<AtomicU64>,
        }
        impl Node for Asker {
            fn on_frame(&mut self, _: &mut NodeCtx, _: usize, _: Bytes) {}
            fn on_start(&mut self, ctx: &mut NodeCtx) {
                ctx.send_control(
                    self.sw,
                    ControlMsg::Request {
                        tag: 1,
                        req: RuntimeRequest::ReadRegisterRange {
                            register: 0,
                            start: 0,
                            len: 4,
                        },
                    },
                );
            }
            fn on_control(&mut self, ctx: &mut NodeCtx, _from: NodeId, msg: ControlMsg) {
                if let ControlMsg::Response { tag: 1, resp } = msg {
                    assert_eq!(resp, RuntimeResponse::Values(vec![0, 0, 0, 0]));
                    self.done_at.store(ctx.now, Ordering::SeqCst);
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let done_at = Arc::new(AtomicU64::new(0));
        let mut sim = Simulation::new();
        // Add switch first (id 0), asker second.
        let sw_node = P4SwitchNode::new(fwd_pipeline());
        let timings = sw_node.timings;
        let sw = sim.add_node(Box::new(sw_node));
        let asker = sim.add_node(Box::new(Asker {
            sw,
            done_at: done_at.clone(),
        }));
        let chan = MILLIS;
        sim.connect_control(sw, asker, chan);
        sim.run();
        let expect = chan // request travels
            + timings.runtime_base
            + 4 * timings.per_cell_read
            + chan; // response travels
        assert_eq!(done_at.load(Ordering::SeqCst), expect);
    }

    #[test]
    fn garbage_frames_counted_not_fatal() {
        // A pipeline whose action always reads OOB: process errors.
        let mut b = ProgramBuilder::new();
        let r = b.add_register("r", 64, 1);
        let bad = b.add_action(ActionDef::new(
            "bad",
            vec![Primitive::RegRead {
                dst: fields::M0,
                register: r,
                index: Operand::Const(10),
            }],
        ));
        b.set_control(Control::ApplyAction(bad));
        let pipeline = b.build(TargetModel::bmv2()).unwrap();
        let mut sim = Simulation::new();
        let sw = sim.add_node(Box::new(P4SwitchNode::new(pipeline)));
        sim.inject_frame(0, sw, 0, Bytes::from_static(b"junk"));
        sim.run();
        assert_eq!(sim.frames_delivered, 1);
        let node = sim.node_as::<P4SwitchNode>(sw).unwrap();
        assert_eq!(node.process_errors, 1);
    }
}
