//! Control-plane message types and a recording controller.

use crate::node::{Node, NodeCtx, NodeId};
use crate::SimTime;
use p4sim::pipeline::DigestRecord;
use p4sim::{RuntimeRequest, RuntimeResponse};

/// Messages travelling over the controller↔switch channel.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlMsg {
    /// A digest pushed by a switch (the paper's anomaly alert).
    Digest {
        /// The digest payload.
        digest: DigestRecord,
        /// Switch-local time at emission.
        emitted_at: SimTime,
    },
    /// A runtime request from a controller (`tag` correlates replies).
    Request {
        /// Correlation tag echoed in the response.
        tag: u64,
        /// The operation.
        req: RuntimeRequest,
    },
    /// A switch's reply to a request.
    Response {
        /// Correlation tag of the request.
        tag: u64,
        /// The result.
        resp: RuntimeResponse,
    },
    /// Contentless liveness/test message.
    Tick,
}

/// A controller that records every digest it receives, timestamped —
/// enough for the echo validation and for latency measurements; richer
/// drill-down logic lives in the `anomaly` crate.
#[derive(Debug, Default)]
pub struct RecordingController {
    /// `(arrival_time, from_switch, digest)` in arrival order.
    pub digests: Vec<(SimTime, NodeId, DigestRecord)>,
    /// `(arrival_time, from_switch, tag, response)` in arrival order.
    pub responses: Vec<(SimTime, NodeId, u64, RuntimeResponse)>,
}

impl RecordingController {
    /// A fresh recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Node for RecordingController {
    fn on_frame(&mut self, _ctx: &mut NodeCtx, _port: usize, _frame: bytes::Bytes) {}

    fn on_control(&mut self, ctx: &mut NodeCtx, from: NodeId, msg: ControlMsg) {
        match msg {
            ControlMsg::Digest { digest, .. } => {
                self.digests.push((ctx.now, from, digest));
            }
            ControlMsg::Response { tag, resp } => {
                self.responses.push((ctx.now, from, tag, resp));
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_digests_and_responses() {
        let mut c = RecordingController::new();
        let mut ctx = NodeCtx::new(42, 0);
        c.on_control(
            &mut ctx,
            3,
            ControlMsg::Digest {
                digest: DigestRecord {
                    id: 1,
                    values: vec![9],
                },
                emitted_at: 40,
            },
        );
        c.on_control(
            &mut ctx,
            3,
            ControlMsg::Response {
                tag: 5,
                resp: RuntimeResponse::Ok,
            },
        );
        c.on_control(&mut ctx, 3, ControlMsg::Tick);
        assert_eq!(c.digests.len(), 1);
        assert_eq!(c.digests[0].0, 42);
        assert_eq!(c.responses.len(), 1);
        assert_eq!(c.responses[0].2, 5);
    }
}
