//! # netsim
//!
//! A deterministic discrete-event network simulator: the substrate that
//! replaces the paper's mininet/bmv2 test bench.
//!
//! Nodes (hosts, P4 switches, controllers) exchange Ethernet frames
//! over point-to-point links with configurable delay, and exchange
//! control-plane messages (digests up, [`p4sim::RuntimeRequest`]s down)
//! over a separate latency-modelled channel. Everything is driven by a
//! single event queue with a total order `(time, sequence)`, so every
//! run is exactly reproducible — the experiments in `bench/` rely on
//! that determinism.
//!
//! Why a DES and not real network namespaces: the paper's quantitative
//! claims (detection within the first interval; 2–3 s to pinpoint a
//! spike's destination, dominated by controller round-trips; register
//! reads costing milliseconds per thousand cells) are all functions of
//! *event ordering and configured latencies*, which a DES reproduces
//! faithfully and deterministically while staying dependency-free.
//!
//! ## Structure
//!
//! - [`sim`] — the event queue, clock and [`sim::Simulation`] driver.
//! - [`node`] — the [`node::Node`] trait and the emissions nodes
//!   produce (frames, timers, control messages).
//! - [`switch`] — [`switch::P4SwitchNode`], wrapping a
//!   [`p4sim::Pipeline`] with forwarding, digest fan-out and a
//!   latency-modelled runtime API.
//! - [`host`] — traffic sources (pluggable generators) and sinks.
//! - [`control`] — control-plane message types and the
//!   [`control::RecordingController`].

pub mod control;
pub mod host;
pub mod node;
pub mod sim;
pub mod switch;

pub use control::{ControlMsg, RecordingController};
pub use host::{SinkHost, TrafficGen, TrafficSource};
pub use node::{Emission, Node, NodeCtx, NodeId};
pub use sim::{FaultStats, Simulation};
pub use switch::{P4SwitchNode, SwitchTimings};

/// Nanoseconds — the simulator's time unit.
pub type SimTime = u64;

/// One millisecond in simulator units.
pub const MILLIS: SimTime = 1_000_000;

/// One microsecond in simulator units.
pub const MICROS: SimTime = 1_000;

/// One second in simulator units.
pub const SECONDS: SimTime = 1_000_000_000;
