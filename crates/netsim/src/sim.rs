//! The event queue and simulation driver.

use crate::control::ControlMsg;
use crate::node::{Emission, Node, NodeCtx, NodeId};
use crate::SimTime;
use bytes::Bytes;
use faultinject::FaultSchedule;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// What the installed fault schedule actually did to this simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Control messages dropped in flight.
    pub control_dropped: u64,
    /// Control messages delivered twice.
    pub control_duplicated: u64,
    /// Control messages that picked up extra (possibly reordering)
    /// jitter beyond the configured channel delay.
    pub control_jittered: u64,
    /// Data-plane frames lost to link-flap windows.
    pub frames_flapped: u64,
}

impl FaultStats {
    /// Total faults injected.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.control_dropped + self.control_duplicated + self.control_jittered + self.frames_flapped
    }
}

/// A queued event.
#[derive(Debug)]
enum EventKind {
    Frame {
        node: NodeId,
        port: usize,
        frame: Bytes,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    Control {
        node: NodeId,
        from: NodeId,
        msg: ControlMsg,
    },
}

/// One direction of a link.
#[derive(Debug, Clone, Copy)]
struct LinkDir {
    peer: NodeId,
    peer_port: usize,
    /// Propagation delay.
    delay: SimTime,
    /// Serialisation time per byte (0 = infinite bandwidth).
    ns_per_byte: u64,
}

/// The simulation: nodes, links, control channels and the event queue.
pub struct Simulation {
    nodes: Vec<Box<dyn Node>>,
    /// `(node, port) -> outgoing link`.
    links: HashMap<(NodeId, usize), LinkDir>,
    /// FIFO transmit occupancy per directed link (queueing model).
    busy_until: HashMap<(NodeId, usize), SimTime>,
    /// `(a, b) -> delay` for control messages (directional; `connect_control`
    /// installs both directions).
    control_delays: HashMap<(NodeId, NodeId), SimTime>,
    queue: BinaryHeap<Reverse<(SimTime, u64)>>,
    payloads: HashMap<u64, EventKind>,
    seq: u64,
    now: SimTime,
    /// Frames delivered, for stats.
    pub frames_delivered: u64,
    /// Events processed, for stats.
    pub events_processed: u64,
    /// Injected faults (empty by default). Decisions are keyed on a
    /// per-send control-message ordinal, which the single-threaded
    /// event loop assigns deterministically.
    faults: FaultSchedule,
    /// Ordinal of the next control-message send.
    ctrl_seq: u64,
    /// What the schedule actually did.
    pub fault_stats: FaultStats,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// An empty simulation at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            links: HashMap::new(),
            busy_until: HashMap::new(),
            control_delays: HashMap::new(),
            queue: BinaryHeap::new(),
            payloads: HashMap::new(),
            seq: 0,
            now: 0,
            frames_delivered: 0,
            events_processed: 0,
            faults: FaultSchedule::none(),
            ctrl_seq: 0,
            fault_stats: FaultStats::default(),
        }
    }

    /// Installs a fault schedule. Subsequent control-message sends and
    /// frame transmissions consult it; an empty schedule (the default)
    /// perturbs nothing.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.faults = schedule;
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Connects `(a, pa)` and `(b, pb)` with a symmetric link of the
    /// given one-way `delay`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is already connected.
    pub fn connect(&mut self, a: NodeId, pa: usize, b: NodeId, pb: usize, delay: SimTime) {
        self.connect_with_bandwidth(a, pa, b, pb, delay, 0);
    }

    /// Like [`Self::connect`] but with finite bandwidth: frames occupy
    /// the transmitter for `len × ns_per_byte` and queue FIFO behind
    /// each other (`ns_per_byte` 0 = infinite bandwidth). 1 Gb/s ≈ 8
    /// ns/byte.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is already connected.
    pub fn connect_with_bandwidth(
        &mut self,
        a: NodeId,
        pa: usize,
        b: NodeId,
        pb: usize,
        delay: SimTime,
        ns_per_byte: u64,
    ) {
        let prev = self.links.insert(
            (a, pa),
            LinkDir {
                peer: b,
                peer_port: pb,
                delay,
                ns_per_byte,
            },
        );
        assert!(prev.is_none(), "port ({a}, {pa}) already connected");
        let prev = self.links.insert(
            (b, pb),
            LinkDir {
                peer: a,
                peer_port: pa,
                delay,
                ns_per_byte,
            },
        );
        assert!(prev.is_none(), "port ({b}, {pb}) already connected");
    }

    /// Configures the control channel between two nodes (both
    /// directions) with a one-way `delay`.
    pub fn connect_control(&mut self, a: NodeId, b: NodeId, delay: SimTime) {
        self.control_delays.insert((a, b), delay);
        self.control_delays.insert((b, a), delay);
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Mutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is invalid.
    pub fn node_mut(&mut self, id: NodeId) -> &mut dyn Node {
        self.nodes[id].as_mut()
    }

    /// Downcasts a node to its concrete type for inspection.
    #[must_use]
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.nodes.get(id).and_then(|n| n.as_any().downcast_ref())
    }

    /// Mutable downcast.
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes
            .get_mut(id)
            .and_then(|n| n.as_any_mut().downcast_mut())
    }

    fn push(&mut self, at: SimTime, kind: EventKind) {
        let id = self.seq;
        self.seq += 1;
        self.queue.push(Reverse((at, id)));
        self.payloads.insert(id, kind);
    }

    /// Schedules a frame arrival directly (used by tests and traffic
    /// injection).
    pub fn inject_frame(&mut self, at: SimTime, node: NodeId, port: usize, frame: Bytes) {
        self.push(at, EventKind::Frame { node, port, frame });
    }

    /// Schedules a timer for a node.
    pub fn inject_timer(&mut self, at: SimTime, node: NodeId, token: u64) {
        self.push(at, EventKind::Timer { node, token });
    }

    /// Schedules a control message delivery.
    pub fn inject_control(&mut self, at: SimTime, node: NodeId, from: NodeId, msg: ControlMsg) {
        self.push(at, EventKind::Control { node, from, msg });
    }

    fn resolve(&mut self, source: NodeId, emissions: Vec<Emission>) {
        for e in emissions {
            match e {
                Emission::SendFrame { port, frame } => {
                    if self.faults.link_down_at(self.now) {
                        // Link flap: the frame leaves the NIC and dies
                        // on the wire. Transmit occupancy is not
                        // charged — the sender cannot tell.
                        self.fault_stats.frames_flapped += 1;
                        continue;
                    }
                    if let Some(&link) = self.links.get(&(source, port)) {
                        // FIFO serialisation: the frame starts
                        // transmitting when the link is free.
                        let tx_time = link.ns_per_byte * frame.len() as u64;
                        let start = if link.ns_per_byte == 0 {
                            self.now
                        } else {
                            let busy = self
                                .busy_until
                                .entry((source, port))
                                .or_insert(self.now);
                            let start = (*busy).max(self.now);
                            *busy = start + tx_time;
                            start
                        };
                        self.push(
                            start + tx_time + link.delay,
                            EventKind::Frame {
                                node: link.peer,
                                port: link.peer_port,
                                frame,
                            },
                        );
                    }
                    // Unconnected ports silently drop, like a real NIC
                    // with no cable.
                }
                Emission::SetTimer { delay, token } => {
                    self.push(self.now + delay, EventKind::Timer { node: source, token });
                }
                Emission::SendControl {
                    dst,
                    msg,
                    extra_delay,
                } => {
                    let ord = self.ctrl_seq;
                    self.ctrl_seq += 1;
                    if self.faults.drop_control(ord) {
                        self.fault_stats.control_dropped += 1;
                        continue;
                    }
                    let delay = self
                        .control_delays
                        .get(&(source, dst))
                        .copied()
                        .unwrap_or(0);
                    let jitter = self.faults.control_extra_delay_ns(ord);
                    if jitter > 0 {
                        self.fault_stats.control_jittered += 1;
                    }
                    if self.faults.duplicate_control(ord) {
                        // The duplicate takes its own jitter draw, so
                        // the two copies can arrive in either order.
                        self.fault_stats.control_duplicated += 1;
                        let dup_jitter = self.faults.control_extra_delay_ns(u64::MAX - ord);
                        self.push(
                            self.now + delay + extra_delay + dup_jitter,
                            EventKind::Control {
                                node: dst,
                                from: source,
                                msg: msg.clone(),
                            },
                        );
                    }
                    self.push(
                        self.now + delay + extra_delay + jitter,
                        EventKind::Control {
                            node: dst,
                            from: source,
                            msg,
                        },
                    );
                }
            }
        }
    }

    /// Calls every node's `on_start` (idempotence is the node's
    /// responsibility); then runs until the queue empties or `until` is
    /// passed. Returns the number of events processed in this call.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        if self.events_processed == 0 && self.now == 0 {
            for id in 0..self.nodes.len() {
                let mut ctx = NodeCtx::new(self.now, id);
                self.nodes[id].on_start(&mut ctx);
                let emissions = std::mem::take(&mut ctx.emissions);
                self.resolve(id, emissions);
            }
        }
        let mut n = 0;
        while let Some(&Reverse((at, id))) = self.queue.peek() {
            if at > until {
                break;
            }
            self.queue.pop();
            let kind = self.payloads.remove(&id).expect("payload exists");
            self.now = at;
            self.events_processed += 1;
            n += 1;
            let node = match &kind {
                EventKind::Frame { node, .. }
                | EventKind::Timer { node, .. }
                | EventKind::Control { node, .. } => *node,
            };
            let mut ctx = NodeCtx::new(self.now, node);
            match kind {
                EventKind::Frame { port, frame, .. } => {
                    self.frames_delivered += 1;
                    self.nodes[node].on_frame(&mut ctx, port, frame);
                }
                EventKind::Timer { token, .. } => {
                    self.nodes[node].on_timer(&mut ctx, token);
                }
                EventKind::Control { from, msg, .. } => {
                    self.nodes[node].on_control(&mut ctx, from, msg);
                }
            }
            let emissions = std::mem::take(&mut ctx.emissions);
            self.resolve(node, emissions);
        }
        n
    }

    /// Runs until the event queue is exhausted.
    pub fn run(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// A node that bounces every frame back out the same port after
    /// recording it, and counts timer fires.
    struct Bouncer {
        frames: Arc<AtomicU64>,
        timers: Arc<AtomicU64>,
        arrival_times: Arc<parking_lot::Mutex<Vec<SimTime>>>,
    }

    impl Node for Bouncer {
        fn on_frame(&mut self, ctx: &mut NodeCtx, port: usize, frame: Bytes) {
            self.frames.fetch_add(1, Ordering::SeqCst);
            self.arrival_times.lock().push(ctx.now);
            if self.frames.load(Ordering::SeqCst) < 4 {
                ctx.send_frame(port, frame);
            }
        }
        fn on_timer(&mut self, _ctx: &mut NodeCtx, _token: u64) {
            self.timers.fetch_add(1, Ordering::SeqCst);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn bouncer() -> (Box<Bouncer>, Arc<AtomicU64>, Arc<parking_lot::Mutex<Vec<SimTime>>>) {
        let frames = Arc::new(AtomicU64::new(0));
        let timers = Arc::new(AtomicU64::new(0));
        let times = Arc::new(parking_lot::Mutex::new(Vec::new()));
        (
            Box::new(Bouncer {
                frames: frames.clone(),
                timers: timers.clone(),
                arrival_times: times.clone(),
            }),
            frames,
            times,
        )
    }

    #[test]
    fn frames_ping_pong_with_link_delay() {
        let mut sim = Simulation::new();
        let (a, fa, ta) = bouncer();
        let (b, _fb, tb) = bouncer();
        let a = sim.add_node(a);
        let b_id = sim.add_node(b);
        sim.connect(a, 0, b_id, 0, 100);
        sim.inject_frame(0, a, 0, Bytes::from_static(b"ping"));
        sim.run();
        // a bounces its first three arrivals and stops at four; b sees
        // three arrivals and bounces them all.
        assert_eq!(ta.lock().as_slice(), &[0, 200, 400, 600]);
        assert_eq!(tb.lock().as_slice(), &[100, 300, 500]);
        assert_eq!(fa.load(Ordering::SeqCst), 4);
        assert_eq!(sim.now(), 600);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Arc<parking_lot::Mutex<Vec<u64>>>,
        }
        impl Node for TimerNode {
            fn on_frame(&mut self, _: &mut NodeCtx, _: usize, _: Bytes) {}
            fn on_timer(&mut self, _ctx: &mut NodeCtx, token: u64) {
                self.fired.lock().push(token);
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let fired = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut sim = Simulation::new();
        let n = sim.add_node(Box::new(TimerNode { fired: fired.clone() }));
        sim.inject_timer(300, n, 3);
        sim.inject_timer(100, n, 1);
        sim.inject_timer(200, n, 2);
        sim.run();
        assert_eq!(fired.lock().as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn same_time_events_fifo_by_insertion() {
        struct T {
            fired: Arc<parking_lot::Mutex<Vec<u64>>>,
        }
        impl Node for T {
            fn on_frame(&mut self, _: &mut NodeCtx, _: usize, _: Bytes) {}
            fn on_timer(&mut self, _ctx: &mut NodeCtx, token: u64) {
                self.fired.lock().push(token);
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let fired = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut sim = Simulation::new();
        let n = sim.add_node(Box::new(T { fired: fired.clone() }));
        for t in 0..5 {
            sim.inject_timer(50, n, t);
        }
        sim.run();
        assert_eq!(fired.lock().as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let (a, fa, _) = bouncer();
        let mut sim = Simulation::new();
        let a = sim.add_node(a);
        let (b, _, _) = bouncer();
        let b = sim.add_node(b);
        sim.connect(a, 0, b, 0, 1000);
        sim.inject_frame(0, a, 0, Bytes::from_static(b"x"));
        sim.run_until(500);
        assert_eq!(fa.load(Ordering::SeqCst), 1, "only the first arrival");
        sim.run();
        assert!(fa.load(Ordering::SeqCst) >= 2);
    }

    #[test]
    fn control_channel_delay_applies() {
        struct Sender {
            dst: NodeId,
        }
        impl Node for Sender {
            fn on_frame(&mut self, _: &mut NodeCtx, _: usize, _: Bytes) {}
            fn on_start(&mut self, ctx: &mut NodeCtx) {
                ctx.send_control(self.dst, ControlMsg::Tick);
                ctx.send_control_delayed(self.dst, ControlMsg::Tick, 5_000);
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        struct Receiver {
            at: Arc<parking_lot::Mutex<Vec<SimTime>>>,
        }
        impl Node for Receiver {
            fn on_frame(&mut self, _: &mut NodeCtx, _: usize, _: Bytes) {}
            fn on_control(&mut self, ctx: &mut NodeCtx, _from: NodeId, _msg: ControlMsg) {
                self.at.lock().push(ctx.now);
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let at = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut sim = Simulation::new();
        let r = sim.add_node(Box::new(Receiver { at: at.clone() }));
        let s = sim.add_node(Box::new(Sender { dst: r }));
        sim.connect_control(s, r, 1_000);
        sim.run();
        assert_eq!(at.lock().as_slice(), &[1_000, 6_000]);
    }

    #[test]
    fn bandwidth_serialises_and_queues() {
        let counter = Arc::new(AtomicU64::new(0));
        struct Burst;
        impl Node for Burst {
            fn on_frame(&mut self, _: &mut NodeCtx, _: usize, _: Bytes) {}
            fn on_start(&mut self, ctx: &mut NodeCtx) {
                // Three 100-byte frames back to back.
                for _ in 0..3 {
                    ctx.send_frame(0, Bytes::from(vec![0u8; 100]));
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut sim = Simulation::new();
        let src = sim.add_node(Box::new(Burst));
        let dst = sim.add_node(Box::new(crate::host::SinkHost::new(counter.clone())));
        // 10 ns/byte -> 1000 ns serialisation per frame; 50 ns propagation.
        sim.connect_with_bandwidth(src, 0, dst, 0, 50, 10);
        sim.run();
        let sink = sim.node_as::<crate::host::SinkHost>(dst).unwrap();
        // Frame k finishes transmitting at (k+1)*1000, arrives +50.
        assert_eq!(sink.arrivals, vec![1050, 2050, 3050]);
    }

    #[test]
    fn unconnected_port_drops_silently() {
        let (a, fa, _) = bouncer();
        let mut sim = Simulation::new();
        let a = sim.add_node(a);
        sim.inject_frame(0, a, 7, Bytes::from_static(b"x"));
        sim.run();
        // Bounced out of port 7 which goes nowhere: no infinite loop,
        // one delivery total.
        assert_eq!(fa.load(Ordering::SeqCst), 1);
    }
}
