//! Traffic sources and sinks.

use crate::node::{Node, NodeCtx};
use crate::SimTime;
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Produces the next frame to transmit, pull-based: the source node
/// asks for one frame at a time and schedules itself for the returned
/// timestamp — the classic DES traffic-source pattern, so a workload of
/// millions of packets never materialises in memory at once.
pub trait TrafficGen: Send {
    /// The next `(absolute_time, frame)`, or `None` when the workload
    /// is exhausted. Times must be non-decreasing.
    fn next_frame(&mut self) -> Option<(SimTime, Bytes)>;
}

/// A [`TrafficGen`] over a pre-built list of frames.
#[derive(Debug)]
pub struct TraceGen {
    frames: std::vec::IntoIter<(SimTime, Bytes)>,
}

impl TraceGen {
    /// Wraps a schedule of `(time, frame)` pairs (must be sorted by
    /// time).
    #[must_use]
    pub fn new(frames: Vec<(SimTime, Bytes)>) -> Self {
        debug_assert!(frames.windows(2).all(|w| w[0].0 <= w[1].0));
        Self {
            frames: frames.into_iter(),
        }
    }
}

impl TrafficGen for TraceGen {
    fn next_frame(&mut self) -> Option<(SimTime, Bytes)> {
        self.frames.next()
    }
}

/// A host that transmits whatever its generator produces, out of port 0.
pub struct TrafficSource {
    gen: Box<dyn TrafficGen>,
    /// The frame waiting for its transmit time.
    pending: Option<(SimTime, Bytes)>,
    /// Frames sent so far.
    pub sent: u64,
    /// Frames received back (e.g. echo replies); counted, not parsed.
    pub received: u64,
}

const TOKEN_NEXT: u64 = 1;

impl TrafficSource {
    /// Wraps a generator.
    #[must_use]
    pub fn new(gen: Box<dyn TrafficGen>) -> Self {
        Self {
            gen,
            pending: None,
            sent: 0,
            received: 0,
        }
    }

    fn arm(&mut self, ctx: &mut NodeCtx) {
        if let Some((at, frame)) = self.gen.next_frame() {
            let delay = at.saturating_sub(ctx.now);
            self.pending = Some((at, frame));
            ctx.set_timer(delay, TOKEN_NEXT);
        }
    }
}

impl Node for TrafficSource {
    fn on_frame(&mut self, _ctx: &mut NodeCtx, _port: usize, _frame: Bytes) {
        self.received += 1;
    }

    fn on_start(&mut self, ctx: &mut NodeCtx) {
        self.arm(ctx);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx, token: u64) {
        if token == TOKEN_NEXT {
            if let Some((_, frame)) = self.pending.take() {
                ctx.send_frame(0, frame);
                self.sent += 1;
            }
            self.arm(ctx);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A host that counts received frames (shared counter so tests can
/// observe it without downcasting) and keeps the last few frames.
pub struct SinkHost {
    counter: Arc<AtomicU64>,
    /// Arrival timestamps.
    pub arrivals: Vec<SimTime>,
    /// The most recent frames (bounded to 64).
    pub recent: Vec<Bytes>,
}

impl SinkHost {
    /// A sink updating `counter` on every frame.
    #[must_use]
    pub fn new(counter: Arc<AtomicU64>) -> Self {
        Self {
            counter,
            arrivals: Vec::new(),
            recent: Vec::new(),
        }
    }
}

impl Node for SinkHost {
    fn on_frame(&mut self, ctx: &mut NodeCtx, _port: usize, frame: Bytes) {
        self.counter.fetch_add(1, Ordering::SeqCst);
        self.arrivals.push(ctx.now);
        if self.recent.len() == 64 {
            self.recent.remove(0);
        }
        self.recent.push(frame);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;

    #[test]
    fn trace_source_paces_frames() {
        let frames = vec![
            (100, Bytes::from_static(b"a")),
            (250, Bytes::from_static(b"b")),
            (250, Bytes::from_static(b"c")),
            (900, Bytes::from_static(b"d")),
        ];
        let mut sim = Simulation::new();
        let src = sim.add_node(Box::new(TrafficSource::new(Box::new(TraceGen::new(
            frames,
        )))));
        let counter = Arc::new(AtomicU64::new(0));
        let dst = sim.add_node(Box::new(SinkHost::new(counter.clone())));
        sim.connect(src, 0, dst, 0, 10);
        sim.run();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        let sink = sim.node_as::<SinkHost>(dst).unwrap();
        assert_eq!(sink.arrivals, vec![110, 260, 260, 910]);
        let source = sim.node_as::<TrafficSource>(src).unwrap();
        assert_eq!(source.sent, 4);
    }

    #[test]
    fn empty_trace_is_fine() {
        let mut sim = Simulation::new();
        let src = sim.add_node(Box::new(TrafficSource::new(Box::new(TraceGen::new(
            vec![],
        )))));
        sim.run();
        assert_eq!(sim.node_as::<TrafficSource>(src).unwrap().sent, 0);
    }
}
