//! The node abstraction: anything attached to the simulation.

use crate::control::ControlMsg;
use crate::SimTime;
use bytes::Bytes;

/// Identifies a node within a simulation.
pub type NodeId = usize;

/// What a node asks the simulator to do, collected during a callback
/// and resolved (links, delays) by the driver afterwards.
#[derive(Debug, Clone)]
pub enum Emission {
    /// Transmit a frame out of a local port; arrives at the link peer
    /// after the link delay.
    SendFrame {
        /// Local egress port.
        port: usize,
        /// The frame bytes.
        frame: Bytes,
    },
    /// Request a timer callback after `delay`.
    SetTimer {
        /// Delay from now.
        delay: SimTime,
        /// Opaque token handed back in `on_timer`.
        token: u64,
    },
    /// Send a control-plane message to another node, arriving after the
    /// control-channel delay configured between the two nodes (plus
    /// `extra_delay`, used by switches to model slow register reads).
    SendControl {
        /// Destination node.
        dst: NodeId,
        /// The message.
        msg: ControlMsg,
        /// Additional latency on top of the channel delay.
        extra_delay: SimTime,
    },
}

/// Context handed to node callbacks.
#[derive(Debug)]
pub struct NodeCtx {
    /// Current simulation time.
    pub now: SimTime,
    /// The node's own id.
    pub self_id: NodeId,
    pub(crate) emissions: Vec<Emission>,
}

impl NodeCtx {
    pub(crate) fn new(now: SimTime, self_id: NodeId) -> Self {
        Self {
            now,
            self_id,
            emissions: Vec::new(),
        }
    }

    /// Transmit `frame` out of `port`.
    pub fn send_frame(&mut self, port: usize, frame: Bytes) {
        self.emissions.push(Emission::SendFrame { port, frame });
    }

    /// Request an `on_timer(token)` callback after `delay`.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.emissions.push(Emission::SetTimer { delay, token });
    }

    /// Send a control message to `dst` over the control channel.
    pub fn send_control(&mut self, dst: NodeId, msg: ControlMsg) {
        self.emissions.push(Emission::SendControl {
            dst,
            msg,
            extra_delay: 0,
        });
    }

    /// Send a control message with additional latency (e.g. modelling
    /// a slow bulk register read at the sender).
    pub fn send_control_delayed(&mut self, dst: NodeId, msg: ControlMsg, extra_delay: SimTime) {
        self.emissions.push(Emission::SendControl {
            dst,
            msg,
            extra_delay,
        });
    }
}

/// A simulation participant.
pub trait Node: std::any::Any {
    /// A frame arrived on `port`.
    fn on_frame(&mut self, ctx: &mut NodeCtx, port: usize, frame: Bytes);

    /// A timer set earlier fired.
    fn on_timer(&mut self, _ctx: &mut NodeCtx, _token: u64) {}

    /// A control-plane message arrived.
    fn on_control(&mut self, _ctx: &mut NodeCtx, _from: NodeId, _msg: ControlMsg) {}

    /// Called once when the simulation starts, before any event.
    fn on_start(&mut self, _ctx: &mut NodeCtx) {}

    /// Downcast support so experiments can inspect node state after a
    /// run ([`crate::Simulation::node_as`]).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_collects_emissions() {
        let mut ctx = NodeCtx::new(5, 2);
        ctx.send_frame(1, Bytes::from_static(b"x"));
        ctx.set_timer(100, 7);
        ctx.send_control(3, ControlMsg::Tick);
        assert_eq!(ctx.emissions.len(), 3);
        assert_eq!(ctx.now, 5);
        assert_eq!(ctx.self_id, 2);
        match &ctx.emissions[1] {
            Emission::SetTimer { delay, token } => {
                assert_eq!((*delay, *token), (100, 7));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
