//! Event-ordering edge cases for the discrete-event core: simultaneous
//! events (same timestamp, several kinds, several nodes) and zero-delay
//! links, where correctness depends entirely on the queue's
//! (time, insertion-sequence) tie-break.

use bytes::Bytes;
use netsim::{ControlMsg, Node, NodeCtx, NodeId, SimTime, Simulation};
use std::sync::Arc;

/// Records every callback as (time, tag) in a shared log.
struct Recorder {
    tag: &'static str,
    log: Arc<parking_lot::Mutex<Vec<(SimTime, String)>>>,
    /// Frames to bounce back out of the arrival port before going
    /// quiet (guards zero-delay tests against infinite cascades).
    bounces: u32,
}

impl Node for Recorder {
    fn on_frame(&mut self, ctx: &mut NodeCtx, port: usize, frame: Bytes) {
        self.log
            .lock()
            .push((ctx.now, format!("{}:frame:{port}", self.tag)));
        if self.bounces > 0 {
            self.bounces -= 1;
            ctx.send_frame(port, frame);
        }
    }
    fn on_timer(&mut self, ctx: &mut NodeCtx, token: u64) {
        self.log
            .lock()
            .push((ctx.now, format!("{}:timer:{token}", self.tag)));
    }
    fn on_control(&mut self, ctx: &mut NodeCtx, from: NodeId, _msg: ControlMsg) {
        self.log
            .lock()
            .push((ctx.now, format!("{}:ctrl:{from}", self.tag)));
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

type Log = Arc<parking_lot::Mutex<Vec<(SimTime, String)>>>;

fn recorder(tag: &'static str, log: &Log, bounces: u32) -> Box<Recorder> {
    Box::new(Recorder {
        tag,
        log: log.clone(),
        bounces,
    })
}

#[test]
fn simultaneous_mixed_kinds_fire_in_insertion_order() {
    let log: Log = Arc::default();
    let mut sim = Simulation::new();
    let a = sim.add_node(recorder("a", &log, 0));
    let b = sim.add_node(recorder("b", &log, 0));
    sim.connect_control(a, b, 0);

    // All at t = 50, interleaved across nodes and kinds.
    sim.inject_timer(50, b, 9);
    sim.inject_frame(50, a, 3, Bytes::from_static(b"x"));
    sim.inject_control(50, a, b, ControlMsg::Tick);
    sim.inject_frame(50, b, 1, Bytes::from_static(b"y"));
    sim.inject_timer(50, a, 7);
    sim.run();

    let got: Vec<String> = log.lock().iter().map(|(_, s)| s.clone()).collect();
    assert_eq!(
        got,
        vec!["b:timer:9", "a:frame:3", "a:ctrl:1", "b:frame:1", "a:timer:7"],
        "same-timestamp events must replay in injection order"
    );
    assert!(log.lock().iter().all(|(t, _)| *t == 50));
}

#[test]
fn zero_delay_link_cascades_without_time_advance() {
    let log: Log = Arc::default();
    let mut sim = Simulation::new();
    let a = sim.add_node(recorder("a", &log, 2));
    let b = sim.add_node(recorder("b", &log, 2));
    sim.connect(a, 0, b, 0, 0); // zero propagation delay

    sim.inject_frame(100, a, 0, Bytes::from_static(b"p"));
    let n = sim.run();

    // a(bounce) -> b(bounce) -> a(bounce) -> b(bounce) -> a(quiet):
    // five deliveries, all at t = 100, alternating endpoints.
    let got: Vec<String> = log.lock().iter().map(|(_, s)| s.clone()).collect();
    assert_eq!(
        got,
        vec!["a:frame:0", "b:frame:0", "a:frame:0", "b:frame:0", "a:frame:0"]
    );
    assert!(
        log.lock().iter().all(|(t, _)| *t == 100),
        "zero-delay hops must not advance the clock"
    );
    assert_eq!(sim.now(), 100);
    assert_eq!(n, 5, "cascade terminates once both bouncers go quiet");
}

#[test]
fn zero_delay_cascade_interleaves_with_pending_same_time_events() {
    // A zero-delay bounce generated *while processing* t = 100 must run
    // after events that were already queued for t = 100 (later
    // insertion sequence), not jump the queue.
    let log: Log = Arc::default();
    let mut sim = Simulation::new();
    let a = sim.add_node(recorder("a", &log, 1));
    let b = sim.add_node(recorder("b", &log, 0));
    sim.connect(a, 0, b, 0, 0);

    sim.inject_frame(100, a, 0, Bytes::from_static(b"p")); // bounces to b
    sim.inject_timer(100, a, 42); // queued before the bounce exists
    sim.run();

    let got: Vec<String> = log.lock().iter().map(|(_, s)| s.clone()).collect();
    assert_eq!(
        got,
        vec!["a:frame:0", "a:timer:42", "b:frame:0"],
        "a bounce scheduled during t=100 runs after pre-queued t=100 events"
    );
}

#[test]
fn zero_delay_and_delayed_events_order_by_time_first() {
    let log: Log = Arc::default();
    let mut sim = Simulation::new();
    let a = sim.add_node(recorder("a", &log, 0));
    let b = sim.add_node(recorder("b", &log, 0));
    sim.connect(a, 0, b, 0, 0);

    sim.inject_timer(200, a, 1); // later time, injected first
    sim.inject_frame(100, b, 0, Bytes::from_static(b"z"));
    sim.run();

    let got: Vec<(SimTime, String)> = log.lock().clone();
    assert_eq!(got[0], (100, "b:frame:0".to_string()));
    assert_eq!(got[1], (200, "a:timer:1".to_string()));
}

#[test]
fn zero_delay_control_channel_delivers_same_timestamp() {
    struct Starter {
        dst: NodeId,
    }
    impl Node for Starter {
        fn on_frame(&mut self, _: &mut NodeCtx, _: usize, _: Bytes) {}
        fn on_start(&mut self, ctx: &mut NodeCtx) {
            ctx.send_control(self.dst, ControlMsg::Tick);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    let log: Log = Arc::default();
    let mut sim = Simulation::new();
    let r = sim.add_node(recorder("r", &log, 0));
    let s = sim.add_node(Box::new(Starter { dst: r }));
    sim.connect_control(s, r, 0);
    sim.run();
    assert_eq!(log.lock().as_slice(), &[(0, "r:ctrl:1".to_string())]);
}

#[test]
fn run_until_boundary_is_inclusive_and_resumable() {
    // Horizon semantics around simultaneous events: everything at
    // exactly `until` runs; nothing later does, and a later run()
    // picks up the remainder without reordering.
    let log: Log = Arc::default();
    let mut sim = Simulation::new();
    let a = sim.add_node(recorder("a", &log, 0));
    sim.inject_timer(100, a, 1);
    sim.inject_timer(100, a, 2);
    sim.inject_timer(101, a, 3);
    sim.run_until(100);
    let mid: Vec<String> = log.lock().iter().map(|(_, s)| s.clone()).collect();
    assert_eq!(mid, vec!["a:timer:1", "a:timer:2"]);
    sim.run();
    let all: Vec<String> = log.lock().iter().map(|(_, s)| s.clone()).collect();
    assert_eq!(all, vec!["a:timer:1", "a:timer:2", "a:timer:3"]);
}
