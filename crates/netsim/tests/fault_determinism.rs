//! Seeded fault schedules are deterministic end to end: the same seed
//! and spec produce bit-identical digest sequences, register state and
//! fault counters across reruns, while a different seed perturbs the
//! run differently. This is the property that makes chaos runs
//! debuggable — a failure under `--faults X --seed N` replays exactly.

use bytes::Bytes;
use faultinject::FaultSchedule;
use netsim::{FaultStats, P4SwitchNode, RecordingController, Simulation, TrafficSource, MICROS, MILLIS};
use netsim::host::TraceGen;
use p4sim::action::{ActionDef, Operand, Primitive};
use p4sim::control::Control;
use p4sim::phv::fields;
use p4sim::program::ProgramBuilder;
use p4sim::{Pipeline, TargetModel};
use packet::builder::PacketBuilder;
use std::net::Ipv4Addr;

/// A counting pipeline: per-/28 packet counters plus a digest per
/// packet carrying `(dst, new_count)` — enough signal that any dropped,
/// duplicated or reordered control message changes the observable
/// digest sequence.
fn counting_pipeline() -> Pipeline {
    let mut b = ProgramBuilder::new();
    let reg = b.add_register("cnt", 64, 16);
    let a = b.add_action(ActionDef::new(
        "count_and_digest",
        vec![
            Primitive::And {
                dst: fields::M0,
                a: Operand::Field(fields::IPV4_DST),
                b: Operand::Const(0xf),
            },
            Primitive::RegRead {
                dst: fields::scratch(1),
                register: reg,
                index: Operand::Field(fields::M0),
            },
            Primitive::Add {
                dst: fields::scratch(1),
                a: Operand::Field(fields::scratch(1)),
                b: Operand::Const(1),
            },
            Primitive::RegWrite {
                register: reg,
                index: Operand::Field(fields::M0),
                src: Operand::Field(fields::scratch(1)),
            },
            Primitive::Digest {
                id: 7,
                values: vec![Operand::Field(fields::IPV4_DST), Operand::Field(fields::scratch(1))],
            },
            Primitive::Forward {
                port: Operand::Const(1),
            },
        ],
    ));
    b.set_control(Control::ApplyAction(a));
    b.build(TargetModel::bmv2()).unwrap()
}

/// 300 UDP frames, 20 µs apart, dst round-robin over 16 hosts.
fn workload() -> Vec<(u64, Bytes)> {
    (0..300u64)
        .map(|i| {
            let frame = PacketBuilder::udp(
                Ipv4Addr::new(192, 168, 0, 1),
                Ipv4Addr::new(10, 0, 0, (i % 16) as u8),
                4000,
                5000 + (i % 7) as u16,
            )
            .build_bytes();
            (i * 20 * MICROS, frame)
        })
        .collect()
}

/// Everything observable about one run.
#[derive(Debug, PartialEq)]
struct Outcome {
    /// `(arrival_time, digest values)` at the controller.
    digests: Vec<(u64, Vec<u64>)>,
    /// Final register state at the switch.
    registers: Vec<u64>,
    stats: FaultStats,
    frames_delivered: u64,
}

fn run(spec: &str, seed: u64) -> Outcome {
    let mut sim = Simulation::new();
    sim.set_fault_schedule(FaultSchedule::parse(spec, seed).unwrap());
    let ctl = sim.add_node(Box::new(RecordingController::new()));
    let sw = sim.add_node(Box::new(
        P4SwitchNode::new(counting_pipeline()).with_controller(ctl),
    ));
    let src = sim.add_node(Box::new(TrafficSource::new(Box::new(TraceGen::new(
        workload(),
    )))));
    let sink_ctr = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let sink = sim.add_node(Box::new(netsim::SinkHost::new(sink_ctr)));
    sim.connect(src, 0, sw, 0, 5 * MICROS);
    sim.connect(sw, 1, sink, 0, 5 * MICROS);
    sim.connect_control(sw, ctl, MILLIS);
    sim.run();

    let rec = sim.node_as::<RecordingController>(ctl).unwrap();
    let switch = sim.node_as::<P4SwitchNode>(sw).unwrap();
    Outcome {
        digests: rec
            .digests
            .iter()
            .map(|(at, _, d)| (*at, d.values.clone()))
            .collect(),
        registers: switch.pipeline.registers()[0].cells.clone(),
        stats: sim.fault_stats,
        frames_delivered: sim.frames_delivered,
    }
}

const SPEC: &str = "ctrl_loss=0.25,ctrl_dup=0.10,ctrl_delay_ns=500us,link_flap=@2ms..3ms";

#[test]
fn same_seed_same_schedule_is_bit_identical() {
    let a = run(SPEC, 1234);
    let b = run(SPEC, 1234);
    assert_eq!(a, b);
    // The schedule actually did something to this run.
    assert!(a.stats.control_dropped > 0, "{:?}", a.stats);
    assert!(a.stats.control_duplicated > 0, "{:?}", a.stats);
    assert!(a.stats.control_jittered > 0, "{:?}", a.stats);
    assert!(a.stats.frames_flapped > 0, "{:?}", a.stats);
}

#[test]
fn different_seed_perturbs_differently() {
    let a = run(SPEC, 1234);
    let b = run(SPEC, 99);
    // Loss/dup/jitter decisions differ per seed, so the delivered
    // digest sequence differs (flap windows are time-based and shared).
    assert_ne!(a.digests, b.digests);
}

#[test]
fn empty_schedule_is_faultless_and_matches_no_schedule() {
    let faulted = run(SPEC, 1234);
    let clean = run("", 1234);
    assert_eq!(clean.stats, FaultStats::default());
    // All 300 frames counted: register totals sum to 300.
    assert_eq!(clean.registers.iter().sum::<u64>(), 300);
    // Every packet's digest arrives exactly once.
    assert_eq!(clean.digests.len(), 300);
    // And the faulted run visibly degraded relative to it.
    assert!(faulted.digests.len() != clean.digests.len());
    assert!(faulted.registers.iter().sum::<u64>() < 300, "flap lost frames");
}

#[test]
fn reordering_actually_occurs_under_jitter() {
    // With 500 µs of per-message jitter on a 1 ms channel, some digest
    // pair must arrive out of emission order: emission order is packet
    // order, and each digest carries its per-cell count which only
    // grows — an arrival sequence where a higher count for the same
    // dst precedes a lower one proves reordering.
    let out = run("ctrl_delay_ns=900us", 7);
    let mut seen_reorder = false;
    for (i, (_, a)) in out.digests.iter().enumerate() {
        for (_, b) in &out.digests[i + 1..] {
            if a[0] == b[0] && a[1] > b[1] {
                seen_reorder = true;
            }
        }
    }
    assert!(seen_reorder, "jitter produced no reordering");
}
