//! # telemetry
//!
//! Hand-rolled observability for the Stat4 reproduction: metrics,
//! traces and exposition with **zero external dependencies** (the
//! workspace builds offline), in the spirit of the paper itself — the
//! switch observes itself with cheap integer statistics, so the
//! software model should too.
//!
//! ## Layers
//!
//! - **Value types** ([`metrics`], [`hist`]) — plain [`Counter`],
//!   [`Gauge`] and [`LogLinearHistogram`] structs. Updates are branch-
//!   light integer arithmetic with **no allocation and no locking**, so
//!   they can sit on per-packet hot paths. All of them implement
//!   [`stat4_core::Mergeable`]: per-shard metric sets fold at the same
//!   epoch barriers as the Stat4 trackers themselves.
//! - **Shared registry** ([`registry`]) — named metric families backed
//!   by atomics ([`SharedCounter`], [`SharedGauge`],
//!   [`SharedHistogram`]). Registration takes a lock once (cold path);
//!   the returned handles update with relaxed atomic adds (lock-free
//!   hot path) and can be cloned freely across threads.
//! - **Tracer** ([`trace`]) — a bounded buffer of begin/end/instant
//!   events for epoch lifecycle (split → ingest → barrier → merge →
//!   detect), cheap enough to leave on.
//! - **Exposition** ([`expo`]) — renders a [`Snapshot`] in Prometheus
//!   text format or as a JSON document; [`check`] validates Prometheus
//!   output (used by CI against the real replay binary).
//!
//! ## Histogram bucketing = the paper's Figure 2 decomposition
//!
//! [`LogLinearHistogram`] buckets by
//! [`stat4_core::isqrt::log_linear_bucket`]: the value's MSB position
//! (exponent) concatenated with its top mantissa bits — exactly the
//! bit string the approximate square root halves. One decomposition,
//! two uses: `approx_isqrt` shifts it, the histogram indexes with it.
//! With `m` mantissa bits the relative bucket width is `2^-m`, so any
//! quantile read from the histogram is within one bucket width of the
//! exact sample quantile.
//!
//! ## Naming scheme
//!
//! Metric names follow Prometheus conventions:
//! `<layer>_<what>_<unit>[_total]`, e.g. `replay_shard_packets_total`,
//! `p4sim_stage_latency_ns`, `anomaly_detection_delay_ns`. Per-shard
//! series carry a `shard="<i>"` label; per-stage series a
//! `table="<name>"` label.
#![forbid(unsafe_code)]


pub mod check;
pub mod expo;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod snapshot;
pub mod trace;

pub use check::{
    check_prometheus, check_trace, parse_trace, PromSummary, TraceDoc, TraceRecord, TraceSummary,
};
pub use expo::{json_string, render_json, render_prometheus};
pub use hist::LogLinearHistogram;
pub use json::Json;
pub use metrics::{Counter, Gauge};
pub use registry::{Registry, SharedCounter, SharedGauge, SharedHistogram};
pub use snapshot::{HistogramSnapshot, Metric, MetricKind, Sample, SampleValue, Snapshot};
pub use trace::{MergedTrace, TraceEvent, TracePhase, Tracer, COORDINATOR_TID};
