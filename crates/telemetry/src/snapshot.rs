//! The exposition data model: a point-in-time, self-describing set of
//! metric families.
//!
//! A [`Snapshot`] is what crosses the boundary between the
//! instrumented layers and the renderers in [`crate::expo`]: layers
//! build one from their (plain or shared) metric values, renderers turn
//! it into Prometheus text or JSON without knowing where the numbers
//! came from.

use crate::hist::LogLinearHistogram;

/// Prometheus-style metric kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone event count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Bucketed distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A rendered histogram: cumulative counts at inclusive upper bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(le, cumulative_count)` pairs, ascending in `le`; only the
    /// non-empty buckets of the source histogram appear (plus their
    /// cumulative semantics, the `+Inf` bucket is implicit via
    /// [`Self::count`]).
    pub buckets: Vec<(u64, u64)>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u128,
}

impl From<&LogLinearHistogram> for HistogramSnapshot {
    fn from(h: &LogLinearHistogram) -> Self {
        let mut buckets = Vec::new();
        let mut cum = 0u64;
        for (idx, c) in h.nonzero_buckets() {
            cum += c;
            buckets.push((h.bucket_range(idx).1, cum));
        }
        Self {
            buckets,
            count: h.count(),
            sum: h.sum(),
        }
    }
}

/// One sample value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram reading.
    Histogram(HistogramSnapshot),
}

/// One labelled series of a metric family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// `(key, value)` label pairs, in insertion order.
    pub labels: Vec<(String, String)>,
    /// The reading.
    pub value: SampleValue,
}

/// A named metric family with its samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metric {
    /// Prometheus-legal name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Family kind; every sample must match it.
    pub kind: MetricKind,
    /// The labelled series.
    pub samples: Vec<Sample>,
}

/// A point-in-time collection of metric families.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// The families, in push order.
    pub metrics: Vec<Metric>,
}

/// True iff `name` is a legal Prometheus metric name.
#[must_use]
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    let head_ok = first.is_ascii_alphabetic() || first == '_' || first == ':';
    head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn to_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
        .collect()
}

impl Snapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn family(&mut self, name: &str, help: &str, kind: MetricKind) -> &mut Metric {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        if let Some(i) = self.metrics.iter().position(|m| m.name == name) {
            assert!(
                self.metrics[i].kind == kind,
                "metric {name} pushed with two kinds"
            );
            return &mut self.metrics[i];
        }
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: Vec::new(),
        });
        self.metrics.last_mut().expect("just pushed")
    }

    /// Appends a counter sample, creating the family on first use.
    ///
    /// # Panics
    ///
    /// Panics on an invalid name or a kind clash with an existing
    /// family of the same name (programmer errors).
    pub fn push_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.family(name, help, MetricKind::Counter).samples.push(Sample {
            labels: to_labels(labels),
            value: SampleValue::Counter(value),
        });
    }

    /// Appends a gauge sample, creating the family on first use.
    ///
    /// # Panics
    ///
    /// Panics on an invalid name or kind clash.
    pub fn push_gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: i64) {
        self.family(name, help, MetricKind::Gauge).samples.push(Sample {
            labels: to_labels(labels),
            value: SampleValue::Gauge(value),
        });
    }

    /// Appends a histogram sample, creating the family on first use.
    ///
    /// # Panics
    ///
    /// Panics on an invalid name or kind clash.
    pub fn push_histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: &LogLinearHistogram,
    ) {
        self.family(name, help, MetricKind::Histogram).samples.push(Sample {
            labels: to_labels(labels),
            value: SampleValue::Histogram(hist.into()),
        });
    }

    /// The family named `name`, if present.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Sum of every counter sample in the family named `name` (0 when
    /// absent) — the "do the per-shard series add up" test helper.
    #[must_use]
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.find(name).map_or(0, |m| {
            m.samples
                .iter()
                .map(|s| match &s.value {
                    SampleValue::Counter(v) => *v,
                    _ => 0,
                })
                .sum()
        })
    }

    /// Total number of samples across all families.
    #[must_use]
    pub fn sample_count(&self) -> usize {
        self.metrics.iter().map(|m| m.samples.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_group_and_sum() {
        let mut s = Snapshot::new();
        s.push_counter("pkts_total", "packets", &[("shard", "0")], 10);
        s.push_counter("pkts_total", "packets", &[("shard", "1")], 32);
        s.push_gauge("occupancy", "cells", &[], -1);
        assert_eq!(s.metrics.len(), 2);
        assert_eq!(s.counter_sum("pkts_total"), 42);
        assert_eq!(s.sample_count(), 3);
        assert_eq!(s.find("occupancy").unwrap().kind, MetricKind::Gauge);
    }

    #[test]
    #[should_panic(expected = "two kinds")]
    fn kind_clash_panics() {
        let mut s = Snapshot::new();
        s.push_counter("m", "", &[], 1);
        s.push_gauge("m", "", &[], 1);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        let mut s = Snapshot::new();
        s.push_counter("9lives", "", &[], 1);
    }

    #[test]
    fn histogram_snapshot_is_cumulative() {
        let mut h = LogLinearHistogram::new(2);
        for v in [1u64, 1, 2, 100] {
            h.record(v);
        }
        let hs = HistogramSnapshot::from(&h);
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum, 104);
        let cums: Vec<u64> = hs.buckets.iter().map(|(_, c)| *c).collect();
        assert!(cums.windows(2).all(|w| w[0] <= w[1]), "monotone: {cums:?}");
        assert_eq!(*cums.last().unwrap(), 4);
        let les: Vec<u64> = hs.buckets.iter().map(|(le, _)| *le).collect();
        assert!(les.windows(2).all(|w| w[0] < w[1]), "ascending: {les:?}");
    }

    #[test]
    fn name_validation() {
        assert!(valid_metric_name("replay_shard_packets_total"));
        assert!(valid_metric_name("_x:y"));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("has space"));
        assert!(!valid_metric_name("1st"));
    }
}
