//! Snapshot renderers: Prometheus text format and JSON.
//!
//! Both are hand-rolled (the workspace builds offline with no
//! serde_json / prometheus crates) and deliberately boring: the
//! Prometheus output follows the text-format spec closely enough for
//! any scraper — `# HELP` / `# TYPE` headers, escaped label values,
//! histogram `_bucket`/`_sum`/`_count` expansion with a trailing
//! `+Inf` bucket — and the JSON output is a single self-describing
//! document mirroring the [`Snapshot`] model.

use crate::snapshot::{Sample, SampleValue, Snapshot};
use std::fmt::Write as _;

/// Escapes a string into a double-quoted JSON string literal.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn prom_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders `{k="v",…}` (empty string when there are no labels), with
/// `extra` appended after the sample's own labels.
fn prom_labels(sample_labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if sample_labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = Vec::with_capacity(sample_labels.len() + extra.len());
    for (k, v) in sample_labels {
        parts.push(format!("{k}=\"{}\"", prom_label_value(v)));
    }
    for (k, v) in extra {
        parts.push(format!("{k}=\"{}\"", prom_label_value(v)));
    }
    format!("{{{}}}", parts.join(","))
}

/// Renders the snapshot in Prometheus text exposition format.
#[must_use]
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for m in &snap.metrics {
        if !m.help.is_empty() {
            let help = m.help.replace('\\', "\\\\").replace('\n', "\\n");
            let _ = writeln!(out, "# HELP {} {}", m.name, help);
        }
        let _ = writeln!(out, "# TYPE {} {}", m.name, m.kind.as_str());
        for s in &m.samples {
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", m.name, prom_labels(&s.labels, &[]), v);
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", m.name, prom_labels(&s.labels, &[]), v);
                }
                SampleValue::Histogram(h) => {
                    for (le, cum) in &h.buckets {
                        let le_s = le.to_string();
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            m.name,
                            prom_labels(&s.labels, &[("le", &le_s)]),
                            cum
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        m.name,
                        prom_labels(&s.labels, &[("le", "+Inf")]),
                        h.count
                    );
                    let _ = writeln!(out, "{}_sum{} {}", m.name, prom_labels(&s.labels, &[]), h.sum);
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        m.name,
                        prom_labels(&s.labels, &[]),
                        h.count
                    );
                }
            }
        }
    }
    out
}

fn json_sample(s: &Sample) -> String {
    let labels = s
        .labels
        .iter()
        .map(|(k, v)| format!("{}:{}", json_string(k), json_string(v)))
        .collect::<Vec<_>>()
        .join(",");
    let value = match &s.value {
        SampleValue::Counter(v) => format!("{v}"),
        SampleValue::Gauge(v) => format!("{v}"),
        SampleValue::Histogram(h) => {
            let buckets = h
                .buckets
                .iter()
                .map(|(le, cum)| format!("{{\"le\":{le},\"cumulative\":{cum}}}"))
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                h.count, h.sum, buckets
            )
        }
    };
    format!("{{\"labels\":{{{labels}}},\"value\":{value}}}")
}

/// Renders the snapshot as one JSON document:
/// `{"metrics":[{"name","kind","help","samples":[{"labels","value"}]}]}`.
/// Histogram values expand to `{"count","sum","buckets":[{"le","cumulative"}]}`.
#[must_use]
pub fn render_json(snap: &Snapshot) -> String {
    let metrics = snap
        .metrics
        .iter()
        .map(|m| {
            let samples = m.samples.iter().map(json_sample).collect::<Vec<_>>().join(",");
            format!(
                "{{\"name\":{},\"kind\":{},\"help\":{},\"samples\":[{}]}}",
                json_string(&m.name),
                json_string(m.kind.as_str()),
                json_string(&m.help),
                samples
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"metrics\":[{metrics}]}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LogLinearHistogram;

    fn sample_snapshot() -> Snapshot {
        let mut snap = Snapshot::new();
        snap.push_counter("pkts_total", "packets seen", &[("shard", "0")], 42);
        snap.push_counter("pkts_total", "packets seen", &[("shard", "1")], 58);
        snap.push_gauge("occupancy", "cells in use", &[], 17);
        let mut h = LogLinearHistogram::new(2);
        for v in [3u64, 5, 100, 1000] {
            h.record(v);
        }
        snap.push_histogram("lat_ns", "latency", &[("stage", "ingest")], &h);
        snap
    }

    #[test]
    fn prometheus_shape() {
        let text = render_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE pkts_total counter"));
        assert!(text.contains("pkts_total{shard=\"0\"} 42"));
        assert!(text.contains("pkts_total{shard=\"1\"} 58"));
        assert!(text.contains("# TYPE occupancy gauge"));
        assert!(text.contains("occupancy 17"));
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{stage=\"ingest\",le=\"+Inf\"} 4"));
        assert!(text.contains("lat_ns_sum{stage=\"ingest\"} 1108"));
        assert!(text.contains("lat_ns_count{stage=\"ingest\"} 4"));
    }

    #[test]
    fn prometheus_escapes_labels() {
        let mut snap = Snapshot::new();
        snap.push_counter("m_total", "", &[("path", "a\"b\\c\nd")], 1);
        let text = render_prometheus(&snap);
        assert!(text.contains("path=\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn json_is_balanced_and_complete() {
        let j = render_json(&sample_snapshot());
        assert!(j.starts_with('{') && j.ends_with('}'));
        let opens = j.chars().filter(|&c| c == '{').count();
        let closes = j.chars().filter(|&c| c == '}').count();
        assert_eq!(opens, closes);
        assert!(j.contains("\"name\":\"pkts_total\""));
        assert!(j.contains("\"shard\":\"0\""));
        assert!(j.contains("\"value\":42"));
        assert!(j.contains("\"count\":4"));
        assert!(j.contains("\"cumulative\""));
    }

    #[test]
    fn json_string_escaping() {
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
