//! Shared, lock-free-on-the-hot-path metric registry.
//!
//! [`Registry::counter`] / [`gauge`](Registry::gauge) /
//! [`histogram`](Registry::histogram) register a named, labelled series
//! once (taking a mutex — cold path) and hand back an
//! `Arc`-shared handle whose updates are **relaxed atomic adds**: any
//! number of threads may bump the same handle without locks,
//! allocation, or fences on the hot path. Re-registering the same
//! `(name, labels)` returns the existing handle, so instrumented code
//! can be naive about initialisation order.
//!
//! Relaxed ordering is deliberate: metrics are monotone sums read at
//! exposition time, so cross-metric ordering doesn't matter — the
//! snapshot is a *consistent enough* view, the same contract scrapers
//! get from any production metrics library.

use crate::hist::LogLinearHistogram;
use crate::snapshot::{MetricKind, Snapshot};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use stat4_core::isqrt::{log_linear_bucket, log_linear_bucket_count};

/// A shared monotone counter.
#[derive(Debug, Default)]
pub struct SharedCounter {
    value: AtomicU64,
}

impl SharedCounter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A shared point-in-time value.
#[derive(Debug, Default)]
pub struct SharedGauge {
    value: AtomicI64,
}

impl SharedGauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `d`.
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A shared log-linear histogram: the atomic twin of
/// [`LogLinearHistogram`], same MSB-decomposition buckets.
#[derive(Debug)]
pub struct SharedHistogram {
    mantissa_bits: u32,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl SharedHistogram {
    fn new(mantissa_bits: u32) -> Self {
        assert!(mantissa_bits < 16, "mantissa_bits {mantissa_bits} too large");
        Self {
            mantissa_bits,
            buckets: (0..log_linear_bucket_count(mantissa_bits))
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample: three relaxed adds, lock-free.
    pub fn record(&self, v: u64) {
        self.buckets[log_linear_bucket(v, self.mantissa_bits)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Materialises a plain histogram from the atomic cells (min/max
    /// are not tracked atomically and come back unset-ish: the plain
    /// copy's range queries derive from buckets only).
    #[must_use]
    pub fn to_plain(&self) -> LogLinearHistogram {
        let mut h = LogLinearHistogram::new(self.mantissa_bits);
        for (idx, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                // Attribute the bucket's mass to its lower bound — the
                // same ≤ one-bucket-width error the histogram already
                // has by construction.
                h.record_n(h.bucket_range(idx).0, c);
            }
        }
        h
    }
}

enum Slot {
    Counter(Arc<SharedCounter>),
    Gauge(Arc<SharedGauge>),
    Histogram(Arc<SharedHistogram>),
}

struct Series {
    labels: Vec<(String, String)>,
    slot: Slot,
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<Series>,
}

/// The registry: named families of shared metric handles.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Finds or creates the `(name, labels)` series; `make` builds the
    /// slot on first registration.
    fn series(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Slot,
    ) -> Slot {
        let owned: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        let mut fams = self.families.lock().expect("registry poisoned");
        let fam = if let Some(i) = fams.iter().position(|f| f.name == name) {
            assert!(
                fams[i].kind == kind,
                "metric {name} registered with two kinds"
            );
            &mut fams[i]
        } else {
            assert!(
                crate::snapshot::valid_metric_name(name),
                "invalid metric name {name:?}"
            );
            fams.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                kind,
                series: Vec::new(),
            });
            fams.last_mut().expect("just pushed")
        };
        if let Some(s) = fam.series.iter().find(|s| s.labels == owned) {
            return s.slot.clone_slot();
        }
        let slot = make();
        fam.series.push(Series {
            labels: owned,
            slot: slot.clone_slot(),
        });
        slot
    }

    /// Registers (or finds) a shared counter series.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name, a kind clash with an existing
    /// family, or a poisoned registry lock (programmer errors).
    #[must_use]
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<SharedCounter> {
        match self.series(name, help, MetricKind::Counter, labels, || {
            Slot::Counter(Arc::new(SharedCounter::default()))
        }) {
            Slot::Counter(c) => c,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Registers (or finds) a shared gauge series.
    ///
    /// # Panics
    ///
    /// As [`Self::counter`].
    #[must_use]
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<SharedGauge> {
        match self.series(name, help, MetricKind::Gauge, labels, || {
            Slot::Gauge(Arc::new(SharedGauge::default()))
        }) {
            Slot::Gauge(g) => g,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Registers (or finds) a shared histogram series with
    /// `2^mantissa_bits` sub-buckets per octave.
    ///
    /// # Panics
    ///
    /// As [`Self::counter`].
    #[must_use]
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        mantissa_bits: u32,
    ) -> Arc<SharedHistogram> {
        match self.series(name, help, MetricKind::Histogram, labels, || {
            Slot::Histogram(Arc::new(SharedHistogram::new(mantissa_bits)))
        }) {
            Slot::Histogram(h) => h,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Reads every registered series into a [`Snapshot`].
    ///
    /// # Panics
    ///
    /// Panics on a poisoned registry lock.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let fams = self.families.lock().expect("registry poisoned");
        let mut snap = Snapshot::new();
        for fam in fams.iter() {
            for s in &fam.series {
                let labels: Vec<(&str, &str)> = s
                    .labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                match &s.slot {
                    Slot::Counter(c) => {
                        snap.push_counter(&fam.name, &fam.help, &labels, c.get());
                    }
                    Slot::Gauge(g) => snap.push_gauge(&fam.name, &fam.help, &labels, g.get()),
                    Slot::Histogram(h) => {
                        snap.push_histogram(&fam.name, &fam.help, &labels, &h.to_plain());
                    }
                }
            }
        }
        snap
    }
}

impl Slot {
    fn clone_slot(&self) -> Slot {
        match self {
            Slot::Counter(c) => Slot::Counter(Arc::clone(c)),
            Slot::Gauge(g) => Slot::Gauge(Arc::clone(g)),
            Slot::Histogram(h) => Slot::Histogram(Arc::clone(h)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_lock_free() {
        let reg = Registry::new();
        let c = reg.counter("pkts_total", "packets", &[("shard", "0")]);
        let c2 = reg.counter("pkts_total", "packets", &[("shard", "0")]);
        c.add(10);
        c2.add(32);
        assert_eq!(c.get(), 42, "same series, same cell");

        let other = reg.counter("pkts_total", "packets", &[("shard", "1")]);
        other.inc();
        assert_eq!(other.get(), 1);

        let snap = reg.snapshot();
        assert_eq!(snap.counter_sum("pkts_total"), 43);
    }

    #[test]
    fn concurrent_updates_all_land() {
        let reg = Registry::new();
        let c = reg.counter("n_total", "", &[]);
        let h = reg.histogram("lat_ns", "", &[], 3);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.count(), 80_000);
        assert_eq!(h.to_plain().count(), 80_000);
    }

    #[test]
    #[should_panic(expected = "two kinds")]
    fn kind_clash_panics() {
        let reg = Registry::new();
        let _c = reg.counter("m", "", &[]);
        let _g = reg.gauge("m", "", &[]);
    }

    #[test]
    fn gauge_set_and_add() {
        let reg = Registry::new();
        let g = reg.gauge("depth", "", &[]);
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }
}
