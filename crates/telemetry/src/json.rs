//! A minimal hand-rolled JSON value parser.
//!
//! The workspace builds offline and the vendored `serde` stub carries
//! no serialisation machinery, so everything that *writes* JSON in this
//! repo does it by hand ([`crate::expo`]). This module is the matching
//! *reader*: enough of RFC 8259 to round-trip the documents the suite
//! emits (trace files, run snapshots, metric exports) back into a
//! typed tree that validators and inspectors can walk.
//!
//! Numbers keep their integer identity: a token without `.`/`e` parses
//! as [`Json::Int`], so `u64`/`i64` fields survive a render → parse
//! round trip bit-for-bit instead of drowning in `f64`. Object members
//! preserve document order, which lets golden tests compare
//! field-for-field.

use std::fmt::Write as _;

/// Maximum nesting depth accepted before the parser bails — guards the
/// recursive descent against stack exhaustion on adversarial input.
const MAX_DEPTH: usize = 256;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fractional/exponent part that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (leading/trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("byte {}: trailing data after document", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object (first match, document order).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `i64` ([`Json::Int`] only).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64` (a non-negative [`Json::Int`]).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (either number form).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, in document order.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Is this `null`?
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("byte {}: expected {:?}", self.pos, b as char))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("byte {}: nesting deeper than {MAX_DEPTH}", self.pos));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "byte {}: unexpected character {:?}",
                self.pos, other as char
            )),
            None => Err(format!("byte {}: unexpected end of input", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("byte {}: expected {word:?}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("byte {}: expected ',' or '}}'", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("byte {}: expected ',' or ']'", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| format!("byte {}: truncated \\u escape", self.pos))?;
        let s = std::str::from_utf8(slice)
            .map_err(|_| format!("byte {}: non-ASCII \\u escape", self.pos))?;
        let v = u16::from_str_radix(s, 16)
            .map_err(|_| format!("byte {}: bad \\u escape {s:?}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(format!("byte {}: unterminated string", self.pos));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(format!("byte {}: truncated escape", self.pos));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo).wrapping_sub(0xDC00))
                            } else {
                                u32::from(hi)
                            };
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!(
                                "byte {}: unknown escape \\{}",
                                self.pos - 1,
                                other as char
                            ))
                        }
                    }
                }
                _ => {
                    // Re-borrow the underlying UTF-8 for multi-byte
                    // characters instead of decoding by hand.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| format!("byte {start}: truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| format!("byte {start}: invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("byte {start}: invalid number"))?;
        if integral {
            if let Ok(v) = s.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        s.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("byte {start}: unparseable number {s:?}"))
    }
}

/// Byte length of the UTF-8 sequence starting with lead byte `b`.
fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Writes `v` back out as compact JSON (test helper / debugging aid).
#[must_use]
pub fn render(v: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, v);
    out
}

fn write_value(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Json::Float(f) => {
            let _ = write!(out, "{f}");
        }
        Json::Str(s) => out.push_str(&crate::expo::json_string(s)),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&crate::expo::json_string(k));
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn integers_keep_exact_identity() {
        let v = Json::parse(&format!("{}", u64::MAX / 2)).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX / 2));
        let v = Json::parse(&format!("{}", i64::MIN)).unwrap();
        assert_eq!(v.as_i64(), Some(i64::MIN));
    }

    #[test]
    fn parses_nested_structures_in_order() {
        let v = Json::parse(r#"{"b":[1,{"x":null}],"a":"z"}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj[0].0, "b");
        assert_eq!(obj[1].0, "a");
        assert_eq!(v.get("a").unwrap().as_str(), Some("z"));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert!(arr[1].get("x").unwrap().is_null());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1}f λ 🦀";
        let rendered = crate::expo::json_string(original);
        let v = Json::parse(&rendered).unwrap();
        assert_eq!(v.as_str(), Some(original));
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        let v = Json::parse(r#""🦀""#).unwrap();
        assert_eq!(v.as_str(), Some("🦀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2", "{'a':1}", "[1]]",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.contains("byte"), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn depth_guard_rejects_pathological_nesting() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
    }

    #[test]
    fn render_parse_round_trip() {
        let doc = r#"{"k":[1,-2,3.5,"s",null,true,{"n":{}}]}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(render(&v), doc);
        assert_eq!(Json::parse(&render(&v)).unwrap(), v);
    }
}
