//! Prometheus text-format and Chrome-trace validators.
//!
//! Used two ways: unit-style (render → check round-trips in this
//! crate) and end-to-end in CI — the replay binary writes its real
//! exposition, and a test re-parses it asserting the invariants a
//! scraper relies on:
//!
//! - metric names are legal and `# TYPE` is declared once, before any
//!   sample of its family;
//! - no duplicate `(name, labelset)` sample;
//! - counter samples are finite and non-negative;
//! - histogram series have ascending `le` bounds, monotone
//!   non-decreasing cumulative counts, a `+Inf` bucket, and a `_count`
//!   equal to the `+Inf` bucket.
//!
//! [`check_trace`] plays the same role for the merged trace document
//! that `--trace-out` emits ([`crate::trace::MergedTrace`]): every
//! event well-formed, per-thread timestamps monotone, begin/end spans
//! properly nested with matching names, no span left open.

use crate::json::Json;
use std::collections::{BTreeMap, HashMap, HashSet};

/// What a successful check saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromSummary {
    /// `# TYPE`-declared families.
    pub families: usize,
    /// Sample lines parsed.
    pub samples: usize,
}

/// One parsed sample line.
#[derive(Debug)]
struct ParsedSample {
    name: String,
    labels: BTreeMap<String, String>,
    value: f64,
    line_no: usize,
}

fn valid_name(name: &str) -> bool {
    crate::snapshot::valid_metric_name(name)
}

/// Parses `{k="v",…}` starting after `{`; returns labels and the rest
/// of the line after the closing `}`.
fn parse_labels(s: &str) -> Result<(BTreeMap<String, String>, &str), String> {
    let mut labels = BTreeMap::new();
    let mut rest = s.trim_start();
    loop {
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix('}') {
            return Ok((labels, r));
        }
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = rest[..eq].trim().to_string();
        rest = rest[eq + 1..].trim_start();
        let mut chars = rest.char_indices();
        if chars.next().map(|(_, c)| c) != Some('"') {
            return Err("label value not quoted".into());
        }
        let mut value = String::new();
        let mut end = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                match c {
                    'n' => value.push('\n'),
                    c => value.push(c),
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end.ok_or("unterminated label value")?;
        if labels.insert(key.clone(), value).is_some() {
            return Err(format!("duplicate label key {key:?}"));
        }
        rest = rest[end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
}

fn parse_sample(line: &str, line_no: usize) -> Result<ParsedSample, String> {
    let name_end = line
        .find(|c: char| c == '{' || c.is_whitespace())
        .ok_or("sample line without value")?;
    let name = line[..name_end].to_string();
    let rest = &line[name_end..];
    let (labels, rest) = if let Some(r) = rest.strip_prefix('{') {
        parse_labels(r)?
    } else {
        (BTreeMap::new(), rest)
    };
    let mut fields = rest.split_whitespace();
    let value_s = fields.next().ok_or("missing value")?;
    let value = if value_s == "+Inf" {
        f64::INFINITY
    } else {
        value_s
            .parse::<f64>()
            .map_err(|_| format!("unparseable value {value_s:?}"))?
    };
    Ok(ParsedSample {
        name,
        labels,
        value,
        line_no,
    })
}

/// Strips a histogram component suffix, returning the base family name.
fn histogram_base<'a>(name: &'a str, histogram_types: &HashSet<String>) -> Option<&'a str> {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if histogram_types.contains(base) {
                return Some(base);
            }
        }
    }
    None
}

/// Validates Prometheus text exposition.
///
/// # Errors
///
/// Returns every violated invariant as a human-readable message with a
/// line number.
pub fn check_prometheus(text: &str) -> Result<PromSummary, Vec<String>> {
    let mut errors = Vec::new();
    let mut types: HashMap<String, (String, usize)> = HashMap::new(); // name -> (kind, line)
    let mut samples: Vec<ParsedSample> = Vec::new();
    let mut seen_sample_for: HashSet<String> = HashSet::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            match (parts.next(), parts.next(), parts.next()) {
                (Some("TYPE"), Some(name), Some(kind)) => {
                    if !valid_name(name) {
                        errors.push(format!("line {line_no}: invalid metric name {name:?}"));
                    }
                    if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                        errors.push(format!("line {line_no}: unknown TYPE kind {kind:?}"));
                    }
                    if seen_sample_for.contains(name) {
                        errors.push(format!(
                            "line {line_no}: TYPE for {name} after its first sample"
                        ));
                    }
                    if types.insert(name.to_string(), (kind.to_string(), line_no)).is_some() {
                        errors.push(format!("line {line_no}: duplicate TYPE for {name}"));
                    }
                }
                (Some("HELP"), Some(name), _) if !valid_name(name) => {
                    errors.push(format!("line {line_no}: invalid metric name {name:?}"));
                }
                _ => {} // other comments are fine
            }
            continue;
        }
        match parse_sample(line, line_no) {
            Ok(s) => {
                if !valid_name(&s.name) {
                    errors.push(format!("line {line_no}: invalid metric name {:?}", s.name));
                }
                seen_sample_for.insert(s.name.clone());
                samples.push(s);
            }
            Err(e) => errors.push(format!("line {line_no}: {e}")),
        }
    }

    let histogram_types: HashSet<String> = types
        .iter()
        .filter(|(_, (k, _))| k == "histogram")
        .map(|(n, _)| n.clone())
        .collect();

    // Duplicate (name, labelset) detection.
    let mut seen: HashSet<String> = HashSet::new();
    for s in &samples {
        let key = format!("{}{:?}", s.name, s.labels);
        if !seen.insert(key) {
            errors.push(format!(
                "line {}: duplicate sample {} {:?}",
                s.line_no, s.name, s.labels
            ));
        }
    }

    for s in &samples {
        let base = histogram_base(&s.name, &histogram_types);
        let family = base.unwrap_or(&s.name);
        let Some((kind, _)) = types.get(family) else {
            errors.push(format!(
                "line {}: sample {} has no # TYPE declaration",
                s.line_no, s.name
            ));
            continue;
        };
        // Counter-like values (counters and histogram components) must
        // be finite and non-negative; +Inf is only legal as an `le`
        // label, never a value.
        if (kind == "counter" || kind == "histogram") && !(s.value >= 0.0 && s.value.is_finite()) {
            errors.push(format!(
                "line {}: {} value {} must be finite and >= 0",
                s.line_no, s.name, s.value
            ));
        }
        if kind == "histogram" && base.is_none() {
            errors.push(format!(
                "line {}: histogram family {} sampled without _bucket/_sum/_count suffix",
                s.line_no, s.name
            ));
        }
    }

    // Histogram bucket structure, per (family, labelset-minus-le).
    type SeriesKey = (String, String);
    let mut buckets: HashMap<SeriesKey, Vec<(f64, f64, usize)>> = HashMap::new(); // (le, cum, line)
    let mut counts: HashMap<SeriesKey, f64> = HashMap::new();
    for s in &samples {
        let Some(base) = histogram_base(&s.name, &histogram_types) else {
            continue;
        };
        let mut labels = s.labels.clone();
        let le = labels.remove("le");
        let key = (base.to_string(), format!("{labels:?}"));
        if s.name.ends_with("_bucket") {
            let Some(le) = le else {
                errors.push(format!("line {}: _bucket without le label", s.line_no));
                continue;
            };
            let le_v = if le == "+Inf" {
                f64::INFINITY
            } else {
                match le.parse::<f64>() {
                    Ok(v) => v,
                    Err(_) => {
                        errors.push(format!("line {}: unparseable le {le:?}", s.line_no));
                        continue;
                    }
                }
            };
            buckets.entry(key).or_default().push((le_v, s.value, s.line_no));
        } else if s.name.ends_with("_count") {
            counts.insert(key, s.value);
        }
    }
    for ((family, labels), series) in &buckets {
        for w in series.windows(2) {
            let ((le_a, cum_a, _), (le_b, cum_b, line_b)) = (w[0], w[1]);
            if le_b <= le_a {
                errors.push(format!(
                    "line {line_b}: {family}_bucket{labels} le {le_b} not ascending after {le_a}"
                ));
            }
            if cum_b < cum_a {
                errors.push(format!(
                    "line {line_b}: {family}_bucket{labels} cumulative {cum_b} < {cum_a}"
                ));
            }
        }
        let Some((last_le, last_cum, last_line)) = series.last().copied() else {
            continue;
        };
        if last_le.is_finite() {
            errors.push(format!(
                "line {last_line}: {family}_bucket{labels} missing +Inf bucket"
            ));
        } else if let Some(count) = counts.get(&(family.clone(), labels.clone())) {
            if (count - last_cum).abs() > f64::EPSILON {
                errors.push(format!(
                    "line {last_line}: {family}{labels} _count {count} != +Inf bucket {last_cum}"
                ));
            }
        }
    }

    if errors.is_empty() {
        Ok(PromSummary {
            families: types.len(),
            samples: samples.len(),
        })
    } else {
        Err(errors)
    }
}

/// One event from a parsed trace document. Field types are owned so
/// inspectors can hold records independently of the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Event name, e.g. `"ingest"`.
    pub name: String,
    /// Phase code: `"B"`, `"E"` or `"i"`.
    pub phase: String,
    /// Origin-relative timestamp, nanoseconds.
    pub ts: u64,
    /// Recording thread (shard index or the coordinator sentinel).
    pub tid: u64,
    /// Epoch the event belongs to.
    pub epoch: u64,
}

/// A parsed `--trace-out` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDoc {
    /// Events in document order.
    pub events: Vec<TraceRecord>,
    /// The producer's dropped-events counter.
    pub dropped: u64,
}

/// What a successful [`check_trace`] saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Events parsed.
    pub events: usize,
    /// Distinct thread ids.
    pub threads: usize,
    /// Completed begin/end span pairs.
    pub spans: usize,
    /// The document's dropped-events counter.
    pub dropped: u64,
}

fn event_u64(ev: &Json, key: &str, idx: usize, errors: &mut Vec<String>) -> Option<u64> {
    match ev.get(key) {
        Some(v) => match v.as_u64() {
            Some(n) => Some(n),
            None => {
                errors.push(format!("event {idx}: {key} is not a non-negative integer"));
                None
            }
        },
        None => {
            errors.push(format!("event {idx}: missing {key}"));
            None
        }
    }
}

fn event_str(ev: &Json, key: &str, idx: usize, errors: &mut Vec<String>) -> Option<String> {
    match ev.get(key) {
        Some(v) => match v.as_str() {
            Some(s) => Some(s.to_string()),
            None => {
                errors.push(format!("event {idx}: {key} is not a string"));
                None
            }
        },
        None => {
            errors.push(format!("event {idx}: missing {key}"));
            None
        }
    }
}

/// Parses a trace document without enforcing ordering/nesting
/// invariants (that is [`check_trace`]'s job). Inspectors that only
/// need the records use this directly.
///
/// # Errors
///
/// Returns every structural problem as a human-readable message.
pub fn parse_trace(text: &str) -> Result<TraceDoc, Vec<String>> {
    let doc = Json::parse(text).map_err(|e| vec![format!("document: {e}")])?;
    let mut errors = Vec::new();
    let Some(events_json) = doc.get("traceEvents") else {
        return Err(vec!["document: missing traceEvents".into()]);
    };
    let Some(items) = events_json.as_arr() else {
        return Err(vec!["document: traceEvents is not an array".into()]);
    };
    let dropped = match doc.get("dropped") {
        Some(v) => v.as_u64().unwrap_or_else(|| {
            errors.push("document: dropped is not a non-negative integer".into());
            0
        }),
        None => {
            errors.push("document: missing dropped counter".into());
            0
        }
    };
    let mut events = Vec::with_capacity(items.len());
    for (idx, ev) in items.iter().enumerate() {
        if ev.as_obj().is_none() {
            errors.push(format!("event {idx}: not an object"));
            continue;
        }
        let name = event_str(ev, "name", idx, &mut errors);
        let phase = event_str(ev, "ph", idx, &mut errors);
        let ts = event_u64(ev, "ts", idx, &mut errors);
        let tid = event_u64(ev, "tid", idx, &mut errors);
        let epoch = event_u64(ev, "epoch", idx, &mut errors);
        if let (Some(name), Some(phase), Some(ts), Some(tid), Some(epoch)) =
            (name, phase, ts, tid, epoch)
        {
            events.push(TraceRecord {
                name,
                phase,
                ts,
                tid,
                epoch,
            });
        }
    }
    if errors.is_empty() {
        Ok(TraceDoc { events, dropped })
    } else {
        Err(errors)
    }
}

/// Validates a merged Chrome-trace document.
///
/// Invariants enforced, per recording thread:
///
/// - phase codes are `B`/`E`/`i` only;
/// - timestamps are monotone non-decreasing in document order;
/// - `B`/`E` form a proper stack: every `E` closes the innermost open
///   span and matches its name and epoch, and no span is left open at
///   end of document.
///
/// # Errors
///
/// Returns every violated invariant as a human-readable message.
pub fn check_trace(text: &str) -> Result<TraceSummary, Vec<String>> {
    let doc = parse_trace(text)?;
    let mut errors = Vec::new();
    let mut last_ts: HashMap<u64, u64> = HashMap::new();
    let mut stacks: HashMap<u64, Vec<(String, u64, usize)>> = HashMap::new();
    let mut spans = 0usize;
    for (idx, ev) in doc.events.iter().enumerate() {
        if !["B", "E", "i"].contains(&ev.phase.as_str()) {
            errors.push(format!("event {idx}: unknown phase {:?}", ev.phase));
            continue;
        }
        if let Some(&prev) = last_ts.get(&ev.tid) {
            if ev.ts < prev {
                errors.push(format!(
                    "event {idx}: tid {} ts {} goes backwards (previous {prev})",
                    ev.tid, ev.ts
                ));
            }
        }
        last_ts.insert(ev.tid, ev.ts);
        let stack = stacks.entry(ev.tid).or_default();
        match ev.phase.as_str() {
            "B" => stack.push((ev.name.clone(), ev.epoch, idx)),
            "E" => match stack.pop() {
                Some((name, epoch, _)) => {
                    if name != ev.name || epoch != ev.epoch {
                        errors.push(format!(
                            "event {idx}: tid {} end {:?} epoch {} closes open span {name:?} epoch {epoch}",
                            ev.tid, ev.name, ev.epoch
                        ));
                    } else {
                        spans += 1;
                    }
                }
                None => errors.push(format!(
                    "event {idx}: tid {} end {:?} with no open span",
                    ev.tid, ev.name
                )),
            },
            _ => {}
        }
    }
    for (tid, stack) in &stacks {
        for (name, epoch, idx) in stack {
            errors.push(format!(
                "event {idx}: tid {tid} span {name:?} epoch {epoch} never closed"
            ));
        }
    }
    if errors.is_empty() {
        Ok(TraceSummary {
            events: doc.events.len(),
            threads: last_ts.len(),
            spans,
            dropped: doc.dropped,
        })
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expo::render_prometheus;
    use crate::hist::LogLinearHistogram;
    use crate::snapshot::Snapshot;

    #[test]
    fn valid_exposition_round_trips() {
        let mut snap = Snapshot::new();
        snap.push_counter("pkts_total", "packets", &[("shard", "0")], 10);
        snap.push_counter("pkts_total", "packets", &[("shard", "1")], 20);
        snap.push_gauge("depth", "queue depth", &[], -3);
        let mut h = LogLinearHistogram::new(3);
        for v in 0..1000u64 {
            h.record(v * 17);
        }
        snap.push_histogram("lat_ns", "latency", &[("stage", "merge")], &h);
        let text = render_prometheus(&snap);
        let summary = check_prometheus(&text).expect("round-trip must validate");
        assert_eq!(summary.families, 3);
        assert!(summary.samples > 4);
    }

    #[test]
    fn duplicate_sample_flagged() {
        let text = "# TYPE a counter\na{x=\"1\"} 5\na{x=\"1\"} 6\n";
        let errs = check_prometheus(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("duplicate sample")), "{errs:?}");
    }

    #[test]
    fn duplicate_with_distinct_labels_ok() {
        let text = "# TYPE a counter\na{x=\"1\"} 5\na{x=\"2\"} 6\n";
        assert!(check_prometheus(text).is_ok());
    }

    #[test]
    fn negative_counter_flagged() {
        let text = "# TYPE a counter\na -1\n";
        let errs = check_prometheus(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains(">= 0")), "{errs:?}");
    }

    #[test]
    fn negative_gauge_ok() {
        let text = "# TYPE g gauge\ng -1\n";
        assert!(check_prometheus(text).is_ok());
    }

    #[test]
    fn missing_type_flagged() {
        let text = "a 1\n";
        let errs = check_prometheus(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("no # TYPE")), "{errs:?}");
    }

    #[test]
    fn type_after_sample_flagged() {
        let text = "a 1\n# TYPE a counter\n";
        let errs = check_prometheus(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("after its first sample")), "{errs:?}");
    }

    #[test]
    fn nonmonotone_histogram_flagged() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 5\n\
                    h_bucket{le=\"2\"} 3\n\
                    h_bucket{le=\"+Inf\"} 6\n\
                    h_sum 9\nh_count 6\n";
        let errs = check_prometheus(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("cumulative")), "{errs:?}");
    }

    #[test]
    fn missing_inf_bucket_flagged() {
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 5\nh_count 5\n";
        let errs = check_prometheus(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("+Inf")), "{errs:?}");
    }

    #[test]
    fn count_bucket_mismatch_flagged() {
        let text = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 5\nh_count 7\n";
        let errs = check_prometheus(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("_count")), "{errs:?}");
    }

    #[test]
    fn unordered_le_flagged() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"5\"} 1\n\
                    h_bucket{le=\"2\"} 2\n\
                    h_bucket{le=\"+Inf\"} 3\n\
                    h_sum 1\nh_count 3\n";
        let errs = check_prometheus(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("not ascending")), "{errs:?}");
    }

    fn trace_doc(events: &str, dropped: u64) -> String {
        format!("{{\"traceEvents\":[{events}],\"dropped\":{dropped},\"threads\":0}}")
    }

    fn ev(name: &str, ph: &str, ts: u64, tid: u64, epoch: u64) -> String {
        format!(
            "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"epoch\":{epoch}}}"
        )
    }

    #[test]
    fn merged_tracer_output_passes_check_trace() {
        use crate::trace::{MergedTrace, Tracer};
        let mut coord = Tracer::new(16);
        let mut shard = Tracer::for_shard(16, 0, coord.origin());
        coord.begin("ingest", 0);
        shard.begin("ingest", 0);
        shard.end("ingest", 0);
        coord.end("ingest", 0);
        coord.instant("alert", 0);
        let json = MergedTrace::merge([&coord, &shard]).to_chrome_json();
        let summary = check_trace(&json).expect("real merged output must validate");
        assert_eq!(summary.events, 5);
        assert_eq!(summary.threads, 2);
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.dropped, 0);
    }

    #[test]
    fn interleaved_threads_validate_independently() {
        let events = [
            ev("ingest", "B", 0, 4_294_967_295, 0),
            ev("ingest", "B", 1, 0, 0),
            ev("ingest", "B", 2, 1, 0),
            ev("ingest", "E", 3, 1, 0),
            ev("ingest", "E", 5, 0, 0),
            ev("ingest", "E", 9, 4_294_967_295, 0),
        ]
        .join(",");
        let summary = check_trace(&trace_doc(&events, 2)).unwrap();
        assert_eq!(summary.threads, 3);
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.dropped, 2);
    }

    #[test]
    fn backwards_time_within_a_thread_flagged() {
        let events = [ev("a", "i", 10, 0, 0), ev("b", "i", 5, 0, 0)].join(",");
        let errs = check_trace(&trace_doc(&events, 0)).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("goes backwards")), "{errs:?}");
    }

    #[test]
    fn mismatched_span_name_flagged() {
        let events = [ev("a", "B", 0, 0, 0), ev("b", "E", 1, 0, 0)].join(",");
        let errs = check_trace(&trace_doc(&events, 0)).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("closes open span")), "{errs:?}");
    }

    #[test]
    fn unclosed_and_unopened_spans_flagged() {
        let open = check_trace(&trace_doc(&ev("a", "B", 0, 0, 0), 0)).unwrap_err();
        assert!(open.iter().any(|e| e.contains("never closed")), "{open:?}");
        let close = check_trace(&trace_doc(&ev("a", "E", 0, 0, 0), 0)).unwrap_err();
        assert!(close.iter().any(|e| e.contains("no open span")), "{close:?}");
    }

    #[test]
    fn malformed_trace_documents_flagged() {
        assert!(check_trace("not json").is_err());
        assert!(check_trace("{}").unwrap_err()[0].contains("traceEvents"));
        let errs = check_trace("{\"traceEvents\":[{\"ph\":\"i\"}],\"dropped\":0}").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("missing name")), "{errs:?}");
        let errs = check_trace("{\"traceEvents\":[]}").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("dropped")), "{errs:?}");
        let events = ev("a", "X", 0, 0, 0);
        let errs = check_trace(&trace_doc(&events, 0)).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("unknown phase")), "{errs:?}");
    }
}
