//! Plain counter and gauge value types.
//!
//! These are the per-shard building blocks: single-owner structs whose
//! updates are one integer add — no atomics, no locks, no allocation —
//! and whose cross-shard reduction is the same [`Mergeable`] fold the
//! Stat4 trackers use at epoch barriers. For *shared* (multi-writer)
//! metrics see [`crate::registry`].

use stat4_core::{Mergeable, Stat4Result};

/// A monotonically increasing event count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Adds `n` (saturating: a counter never wraps backwards).
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value
    }
}

impl Mergeable for Counter {
    /// Counters merge by addition: the merged counter equals the count
    /// a single observer of the combined event stream would hold.
    fn merge_from(&mut self, other: &Self) -> Stat4Result<()> {
        self.add(other.value);
        Ok(())
    }
}

/// A point-in-time signed value (occupancy, queue depth, …).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    value: i64,
}

impl Gauge {
    /// A zeroed gauge.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&mut self, v: i64) {
        self.value = v;
    }

    /// Adjusts the value by `d`.
    pub fn add(&mut self, d: i64) {
        self.value = self.value.saturating_add(d);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value
    }
}

impl Mergeable for Gauge {
    /// Gauges merge by addition: per-shard occupancies and depths are
    /// partitions of a whole, so the global gauge is their sum. (A
    /// "latest wins" gauge has no shard-order-free merge and would
    /// violate the conformance rules; don't put one in a merged set.)
    fn merge_from(&mut self, other: &Self) -> Stat4Result<()> {
        self.add(other.value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_saturates() {
        let mut c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn merge_is_addition() {
        let mut a = Counter::new();
        a.add(10);
        let mut b = Counter::new();
        b.add(32);
        a.merge_from(&b).unwrap();
        assert_eq!(a.get(), 42);

        let mut g = Gauge::new();
        g.set(-5);
        let mut h = Gauge::new();
        h.set(8);
        g.merge_from(&h).unwrap();
        assert_eq!(g.get(), 3);
    }
}
