//! Log-linear histogram bucketed by the paper's MSB decomposition.
//!
//! The bucket index of a value is
//! [`stat4_core::isqrt::log_linear_bucket`]: exponent (MSB position)
//! concatenated with the top `m` mantissa bits — the same
//! exponent‖mantissa bit string the approximate square root of Figure 2
//! halves. Values below `2^m` get exact unit buckets; above, the
//! relative bucket width is `2^-m`, so quantiles read from the
//! histogram are within one bucket width of the exact sample quantile
//! (asserted by `tests/histogram.rs`).
//!
//! Recording is one bucket index (shifts and masks), three adds and no
//! allocation — hot-path safe. Per-shard histograms fold at epoch
//! barriers via [`Mergeable`]: cellwise count addition, which is
//! bit-identical to single-shard recording for any traffic partition.

use stat4_core::isqrt::{log_linear_bucket, log_linear_bucket_count, log_linear_lower_bound};
use stat4_core::{Mergeable, Stat4Error, Stat4Result};

/// Default mantissa bits: 8 sub-buckets per power of two, ≤ 12.5%
/// relative bucket width.
pub const DEFAULT_MANTISSA_BITS: u32 = 3;

/// A fixed-size log-linear histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogLinearHistogram {
    mantissa_bits: u32,
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogLinearHistogram {
    fn default() -> Self {
        Self::new(DEFAULT_MANTISSA_BITS)
    }
}

impl LogLinearHistogram {
    /// A histogram with `2^mantissa_bits` sub-buckets per octave.
    /// The bucket array covers all of `u64` (for `m = 3`: 504 cells).
    ///
    /// # Panics
    ///
    /// Panics if `mantissa_bits >= 16` (bucket array would be absurd).
    #[must_use]
    pub fn new(mantissa_bits: u32) -> Self {
        assert!(mantissa_bits < 16, "mantissa_bits {mantissa_bits} too large");
        Self {
            mantissa_bits,
            buckets: vec![0; log_linear_bucket_count(mantissa_bits)],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample. Allocation-free.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[log_linear_bucket(v, self.mantissa_bits)] += n;
        self.count += n;
        self.sum += u128::from(v) * u128::from(n);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sub-bucket resolution.
    #[must_use]
    pub fn mantissa_bits(&self) -> u32 {
        self.mantissa_bits
    }

    /// Mean of the recorded samples (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| (self.sum / u128::from(self.count)) as u64)
    }

    /// Inclusive value range `[lo, hi]` of bucket `idx`.
    #[must_use]
    pub fn bucket_range(&self, idx: usize) -> (u64, u64) {
        let lo = log_linear_lower_bound(idx, self.mantissa_bits);
        let hi = log_linear_lower_bound(idx + 1, self.mantissa_bits);
        (lo, hi.saturating_sub(u64::from(hi != u64::MAX)))
    }

    /// Non-empty buckets as `(index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Nearest-rank `p`-th percentile estimate (`0 < p <= 100`): the
    /// inclusive upper bound of the bucket where the cumulative count
    /// reaches `ceil(p/100 · count)`. `None` when empty.
    ///
    /// The estimate lands in the same bucket as the exact sample
    /// quantile, i.e. within one bucket width (`2^-m` relative).
    #[must_use]
    pub fn quantile(&self, p: u32) -> Option<u64> {
        assert!((1..=100).contains(&p), "percentile {p} out of range");
        if self.count == 0 {
            return None;
        }
        let target = (u128::from(self.count) * u128::from(p)).div_ceil(100) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(self.bucket_range(i).1.min(self.max));
            }
        }
        Some(self.max)
    }
}

impl Mergeable for LogLinearHistogram {
    /// Cellwise count addition — bit-identical to single-shard
    /// recording of the combined sample stream.
    fn merge_from(&mut self, other: &Self) -> Stat4Result<()> {
        if self.mantissa_bits != other.mantissa_bits {
            return Err(Stat4Error::MergeMismatch {
                what: "histogram mantissa bits",
            });
        }
        for (d, s) in self.buckets.iter_mut().zip(&other.buckets) {
            *d += s;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let mut h = LogLinearHistogram::new(2);
        for v in [1u64, 2, 3, 100, 106, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1212);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.mean(), Some(202));
        assert!(!h.is_empty());
    }

    #[test]
    fn empty_has_no_quantile() {
        let h = LogLinearHistogram::default();
        assert!(h.quantile(50).is_none());
        assert!(h.min().is_none());
        assert!(h.max().is_none());
    }

    #[test]
    fn quantile_of_point_mass_is_exactish() {
        let mut h = LogLinearHistogram::new(3);
        for _ in 0..1000 {
            h.record(5000);
        }
        // Bucket upper bound is >= 5000, capped at the observed max.
        assert_eq!(h.quantile(50), Some(5000));
    }

    #[test]
    fn mismatched_resolution_rejected() {
        let mut a = LogLinearHistogram::new(2);
        let b = LogLinearHistogram::new(3);
        assert!(matches!(
            a.merge_from(&b),
            Err(Stat4Error::MergeMismatch { .. })
        ));
    }

    #[test]
    fn bucket_range_is_inclusive_and_contiguous() {
        let h = LogLinearHistogram::new(3);
        let mut prev_hi = None;
        for idx in 0..64 {
            let (lo, hi) = h.bucket_range(idx);
            assert!(lo <= hi);
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1, "bucket {idx} not contiguous");
            }
            prev_hi = Some(hi);
        }
    }
}
