//! Lightweight span/event tracing for epoch lifecycle.
//!
//! The replay engine's epoch loop is the system's heartbeat: split →
//! ingest (parallel) → barrier → merge → detect. [`Tracer`] records
//! that lifecycle as begin/end/instant events with nanosecond
//! timestamps relative to the tracer's creation, into a **bounded**
//! buffer — when full, new events are counted as dropped instead of
//! growing memory, so tracing can stay on for arbitrarily long
//! replays.
//!
//! The tracer is single-owner (`&mut` recording): the epoch loop owns
//! it, shard threads never touch it. Per-packet work is *not* traced —
//! that's what the histograms are for; traces capture the
//! epoch-granularity control flow.

use std::time::Instant;

/// Event phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A point event.
    Instant,
}

impl TracePhase {
    /// Short phase code (Chrome-trace-style: B/E/i).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Instant => "i",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the tracer was created.
    pub at_ns: u64,
    /// The epoch the event belongs to.
    pub epoch: u64,
    /// Static event name (e.g. `"ingest"`, `"merge"`).
    pub name: &'static str,
    /// Begin/end/instant.
    pub phase: TracePhase,
}

/// A bounded event recorder.
#[derive(Debug, Clone)]
pub struct Tracer {
    origin: Instant,
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Tracer {
    /// A tracer holding at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            origin: Instant::now(),
            events: Vec::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }

    /// Nanoseconds since the tracer was created (saturating).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn push(&mut self, name: &'static str, epoch: u64, phase: TracePhase) {
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent {
            at_ns: self.now_ns(),
            epoch,
            name,
            phase,
        });
    }

    /// Records a span opening.
    pub fn begin(&mut self, name: &'static str, epoch: u64) {
        self.push(name, epoch, TracePhase::Begin);
    }

    /// Records a span closing.
    pub fn end(&mut self, name: &'static str, epoch: u64) {
        self.push(name, epoch, TracePhase::End);
    }

    /// Records a point event.
    pub fn instant(&mut self, name: &'static str, epoch: u64) {
        self.push(name, epoch, TracePhase::Instant);
    }

    /// The recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events rejected because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the buffer as a JSON array of Chrome-trace-style event
    /// objects (`{"name","ph","ts","epoch"}`, `ts` in ns).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"ph\":\"{}\",\"ts\":{},\"epoch\":{}}}",
                crate::expo::json_string(e.name),
                e.phase.code(),
                e.at_ns,
                e.epoch
            ));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_ordered_events() {
        let mut t = Tracer::new(16);
        t.begin("ingest", 0);
        t.end("ingest", 0);
        t.instant("alert", 1);
        let ev = t.events();
        assert_eq!(ev.len(), 3);
        assert!(ev.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert_eq!(ev[2].phase, TracePhase::Instant);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn bounded_buffer_counts_drops() {
        let mut t = Tracer::new(2);
        for i in 0..5 {
            t.instant("e", i);
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn json_shape() {
        let mut t = Tracer::new(4);
        t.begin("merge", 7);
        let j = t.to_json();
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"name\":\"merge\""));
        assert!(j.contains("\"ph\":\"B\""));
        assert!(j.contains("\"epoch\":7"));
    }
}
