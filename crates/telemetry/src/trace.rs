//! Lightweight span/event tracing for epoch lifecycle.
//!
//! The replay engine's epoch loop is the system's heartbeat: split →
//! ingest (parallel) → barrier → merge → detect. [`Tracer`] records
//! that lifecycle as begin/end/instant events with nanosecond
//! timestamps relative to the tracer's creation, into a **bounded**
//! buffer — when full, new events are counted as dropped instead of
//! growing memory, so tracing can stay on for arbitrarily long
//! replays.
//!
//! Each tracer is single-owner (`&mut` recording) and carries a
//! *thread id*: the coordinator's epoch loop owns one
//! ([`COORDINATOR_TID`]), and each shard worker owns its own, created
//! with [`Tracer::for_shard`] against the coordinator's time origin so
//! timestamps from different threads live on one clock. Shard tracers
//! travel with the epoch work through the dispatch channel — threads
//! never share a tracer, they hand it off. After a run,
//! [`MergedTrace::merge`] folds every per-thread buffer into one
//! causally-ordered Chrome-trace document. Per-packet work is *not*
//! traced — that's what the histograms are for; traces capture the
//! epoch-granularity control flow.

use std::time::Instant;

/// Thread id used for the coordinator's own tracer. Shard tracers use
/// the shard index; `u32::MAX` can never collide with one (shard
/// counts are tiny).
pub const COORDINATOR_TID: u32 = u32::MAX;

/// Event phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A point event.
    Instant,
}

impl TracePhase {
    /// Short phase code (Chrome-trace-style: B/E/i).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Instant => "i",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the owning tracer's time origin.
    pub at_ns: u64,
    /// The epoch the event belongs to.
    pub epoch: u64,
    /// Static event name (e.g. `"ingest"`, `"merge"`).
    pub name: &'static str,
    /// Begin/end/instant.
    pub phase: TracePhase,
    /// Recording thread: shard index, or [`COORDINATOR_TID`].
    pub tid: u32,
}

/// A bounded event recorder.
#[derive(Debug, Clone)]
pub struct Tracer {
    origin: Instant,
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
    tid: u32,
}

impl Tracer {
    /// A coordinator tracer holding at most `capacity` events, with a
    /// fresh time origin.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_tid(capacity, COORDINATOR_TID, Instant::now())
    }

    /// A shard worker's tracer sharing the coordinator's `origin`, so
    /// its timestamps and the coordinator's compare directly.
    #[must_use]
    pub fn for_shard(capacity: usize, shard: u32, origin: Instant) -> Self {
        Self::with_tid(capacity, shard, origin)
    }

    fn with_tid(capacity: usize, tid: u32, origin: Instant) -> Self {
        Self {
            origin,
            events: Vec::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
            tid,
        }
    }

    /// The tracer's time origin (pass to [`Tracer::for_shard`] so all
    /// threads share one clock).
    #[must_use]
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// The recording thread id.
    #[must_use]
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Nanoseconds since the tracer's origin (saturating).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Nanoseconds from the origin to `t` (0 if `t` precedes it).
    #[must_use]
    pub fn ns_since(&self, t: Instant) -> u64 {
        t.checked_duration_since(self.origin)
            .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }

    fn push_at(&mut self, name: &'static str, epoch: u64, phase: TracePhase, at_ns: u64) {
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        // Clamp to the last recorded timestamp: per-thread event order
        // is the causal order, and a monotone `ts` keeps every
        // consumer (check_trace, Chrome) from seeing time run
        // backwards on clock jitter.
        let floor = self.events.last().map_or(0, |e| e.at_ns);
        self.events.push(TraceEvent {
            at_ns: at_ns.max(floor),
            epoch,
            name,
            phase,
            tid: self.tid,
        });
    }

    fn push(&mut self, name: &'static str, epoch: u64, phase: TracePhase) {
        let at_ns = self.now_ns();
        self.push_at(name, epoch, phase, at_ns);
    }

    /// Records a span opening.
    pub fn begin(&mut self, name: &'static str, epoch: u64) {
        self.push(name, epoch, TracePhase::Begin);
    }

    /// Records a span opening at an explicit origin-relative
    /// timestamp (e.g. the instant an epoch was *queued*, captured on
    /// another thread before this tracer saw it).
    pub fn begin_at(&mut self, name: &'static str, epoch: u64, at_ns: u64) {
        self.push_at(name, epoch, TracePhase::Begin, at_ns);
    }

    /// Records a span closing.
    pub fn end(&mut self, name: &'static str, epoch: u64) {
        self.push(name, epoch, TracePhase::End);
    }

    /// Records a point event.
    pub fn instant(&mut self, name: &'static str, epoch: u64) {
        self.push(name, epoch, TracePhase::Instant);
    }

    /// The recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events rejected because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the buffer as a JSON array of Chrome-trace-style event
    /// objects (`{"name","ph","ts","tid","epoch"}`, `ts` in ns).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&render_event(e));
        }
        out.push(']');
        out
    }
}

fn render_event(e: &TraceEvent) -> String {
    format!(
        "{{\"name\":{},\"ph\":\"{}\",\"ts\":{},\"pid\":0,\"tid\":{},\"epoch\":{}}}",
        crate::expo::json_string(e.name),
        e.phase.code(),
        e.at_ns,
        e.tid,
        e.epoch
    )
}

/// Every thread's trace buffers folded into one causally-ordered
/// event stream, plus the total number of events lost to buffer
/// bounds — truncation is never silent.
#[derive(Debug, Clone)]
pub struct MergedTrace {
    /// All events, sorted by timestamp (stable: per-thread order is
    /// preserved among equal timestamps).
    pub events: Vec<TraceEvent>,
    /// Sum of every contributing tracer's dropped-event counter.
    pub dropped: u64,
    /// Number of tracers that contributed at least one event.
    pub threads: usize,
}

impl MergedTrace {
    /// Merges the coordinator's and the shards' buffers. Pass the
    /// coordinator tracer first so stable sorting breaks timestamp
    /// ties in favour of the thread that caused the work.
    pub fn merge<'a, I: IntoIterator<Item = &'a Tracer>>(tracers: I) -> Self {
        let mut events = Vec::new();
        let mut dropped = 0u64;
        let mut threads = 0usize;
        for t in tracers {
            if !t.events().is_empty() {
                threads += 1;
            }
            dropped = dropped.saturating_add(t.dropped());
            events.extend_from_slice(t.events());
        }
        // Stable: per-tracer (= per-thread) event order survives ties,
        // so B/E nesting inside a thread can never be reordered.
        events.sort_by_key(|e| e.at_ns);
        Self {
            events,
            dropped,
            threads,
        }
    }

    /// Renders the merged stream as a Chrome-trace JSON object:
    /// `{"traceEvents":[...],"dropped":N,"threads":K}`. Loadable by
    /// `chrome://tracing` / Perfetto (extra top-level keys are
    /// ignored there) and by [`crate::check::check_trace`].
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&render_event(e));
        }
        out.push_str(&format!(
            "],\"dropped\":{},\"threads\":{}}}",
            self.dropped, self.threads
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_ordered_events() {
        let mut t = Tracer::new(16);
        t.begin("ingest", 0);
        t.end("ingest", 0);
        t.instant("alert", 1);
        let ev = t.events();
        assert_eq!(ev.len(), 3);
        assert!(ev.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert_eq!(ev[2].phase, TracePhase::Instant);
        assert_eq!(t.dropped(), 0);
        assert!(ev.iter().all(|e| e.tid == COORDINATOR_TID));
    }

    #[test]
    fn bounded_buffer_counts_drops() {
        let mut t = Tracer::new(2);
        for i in 0..5 {
            t.instant("e", i);
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn json_shape() {
        let mut t = Tracer::new(4);
        t.begin("merge", 7);
        let j = t.to_json();
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"name\":\"merge\""));
        assert!(j.contains("\"ph\":\"B\""));
        assert!(j.contains("\"epoch\":7"));
        assert!(j.contains(&format!("\"tid\":{COORDINATOR_TID}")));
    }

    #[test]
    fn shard_tracer_shares_the_origin_clock() {
        let coord = Tracer::new(8);
        let mut shard = Tracer::for_shard(8, 3, coord.origin());
        shard.begin("ingest", 0);
        shard.end("ingest", 0);
        assert_eq!(shard.tid(), 3);
        assert!(shard.events().iter().all(|e| e.tid == 3));
        // Timestamps relate to the same origin, so they are comparable
        // with the coordinator's clock reading.
        assert!(shard.events()[0].at_ns <= coord.now_ns() + 1_000_000_000);
    }

    #[test]
    fn begin_at_backdates_but_never_reverses_time() {
        let mut t = Tracer::new(8);
        t.instant("mark", 0);
        let mark = t.events()[0].at_ns;
        // An explicit timestamp earlier than the last event is clamped
        // so per-thread order stays monotone.
        t.begin_at("queue_wait", 1, 0);
        assert_eq!(t.events()[1].at_ns, mark);
        // A later explicit timestamp is taken as-is.
        t.begin_at("queue_wait", 2, mark + 500);
        assert_eq!(t.events()[2].at_ns, mark + 500);
    }

    #[test]
    fn ns_since_saturates_at_zero_before_origin() {
        let before = Instant::now();
        let t = Tracer::new(4);
        assert_eq!(t.ns_since(before), 0);
        let after = Instant::now();
        let _ = t.ns_since(after); // must not panic
    }

    #[test]
    fn merge_orders_across_threads_and_sums_drops() {
        let mut coord = Tracer::new(8);
        let origin = coord.origin();
        let mut s0 = Tracer::for_shard(2, 0, origin);
        let mut s1 = Tracer::for_shard(8, 1, origin);
        coord.begin("ingest", 0);
        s0.begin("ingest", 0);
        s0.end("ingest", 0);
        s0.instant("overflow", 0); // dropped: capacity 2
        s1.begin("ingest", 0);
        s1.end("ingest", 0);
        coord.end("ingest", 0);
        let merged = MergedTrace::merge([&coord, &s0, &s1]);
        assert_eq!(merged.events.len(), 6);
        assert_eq!(merged.dropped, 1);
        assert_eq!(merged.threads, 3);
        assert!(merged.events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        let json = merged.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"dropped\":1"));
        assert!(json.contains("\"threads\":3"));
    }

    #[test]
    fn merge_is_stable_within_a_thread() {
        // Force equal timestamps by backdating everything to 0 — the
        // per-thread B/E order must survive the sort.
        let coord = Tracer::new(8);
        let mut s = Tracer::for_shard(8, 0, coord.origin());
        s.begin_at("ingest", 0, 0);
        s.begin_at("chunk", 0, 0);
        let merged = MergedTrace::merge([&s]);
        assert_eq!(merged.events[0].name, "ingest");
        assert_eq!(merged.events[1].name, "chunk");
    }
}
