//! Log-linear histogram conformance: bucket boundaries are the isqrt
//! MSB decomposition, quantiles are within one bucket width of exact,
//! and the `Mergeable` fold is bit-identical to single-shard
//! recording.

use proptest::prelude::*;
use stat4_core::isqrt::{log_linear_bucket, log_linear_lower_bound, msb_decompose};
use stat4_core::Mergeable;
use telemetry::LogLinearHistogram;

/// Bucket boundaries match the MSB exponent/mantissa decomposition the
/// approximate isqrt halves: every bucket's lower bound re-materialises
/// the (exponent ‖ mantissa) bit string, and values sharing a
/// decomposition share a bucket.
#[test]
fn bucket_boundaries_match_isqrt_decomposition() {
    for m in [0u32, 2, 3, 6] {
        let h = LogLinearHistogram::new(m);
        for y in (0u64..4096).chain([1 << 20, u64::MAX / 3, u64::MAX]) {
            let b = log_linear_bucket(y, m);
            let (lo, hi) = h.bucket_range(b);
            assert!(lo <= y && y <= hi, "m={m} y={y} outside [{lo},{hi}]");
            if y >= (1u64 << m) {
                // Above the linear region the lower bound has the same
                // decomposition as y: same exponent class, same top
                // mantissa bits.
                let (e_y, f_y) = msb_decompose(y, m);
                let (e_lo, f_lo) = msb_decompose(lo, m);
                assert_eq!((e_y, f_y), (e_lo, f_lo), "m={m} y={y} lo={lo}");
                // And the bucket index is literally that bit string.
                let expect = (((u64::from(e_y) - u64::from(m) + 1) << m) + f_y) as usize;
                assert_eq!(b, expect, "m={m} y={y}");
            } else {
                assert_eq!((lo, hi), (y, y), "linear region is exact");
            }
        }
    }
}

/// The histogram records into exactly the bucket the decomposition
/// names — observed via nonzero_buckets.
#[test]
fn record_lands_in_decomposition_bucket() {
    let m = 3;
    let mut h = LogLinearHistogram::new(m);
    let values = [0u64, 1, 7, 8, 106, 1000, 123_456_789];
    for &v in &values {
        h.record(v);
    }
    let got: Vec<usize> = h.nonzero_buckets().map(|(i, _)| i).collect();
    let mut expect: Vec<usize> = values.iter().map(|&v| log_linear_bucket(v, m)).collect();
    expect.sort_unstable();
    expect.dedup();
    assert_eq!(got, expect);
}

fn exact_nearest_rank(sorted: &[u64], p: u32) -> u64 {
    let rank = ((sorted.len() as u64) * u64::from(p)).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    /// Quantile estimates land in the same bucket as the exact sample
    /// quantile — i.e. within one bucket width (2^-m relative error).
    #[test]
    fn quantile_within_one_bucket(
        samples in proptest::collection::vec(any::<u64>(), 1..400),
        m in 1u32..7,
        p in 1u32..=100,
    ) {
        let mut h = LogLinearHistogram::new(m);
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let exact = exact_nearest_rank(&sorted, p);
        let est = h.quantile(p).expect("non-empty");
        let exact_bucket = log_linear_bucket(exact, m);
        let lo = log_linear_lower_bound(exact_bucket, m);
        let hi = log_linear_lower_bound(exact_bucket + 1, m);
        prop_assert!(
            est >= lo && (est < hi || hi == u64::MAX),
            "estimate {est} outside exact quantile's bucket [{lo},{hi}) (exact {exact}, p {p}, m {m})"
        );
    }

    /// Merging per-shard histograms equals single-shard recording of
    /// the full stream, bit for bit — the same conformance property the
    /// Stat4 trackers satisfy at epoch barriers.
    #[test]
    fn merge_equals_single_shard(
        tagged in proptest::collection::vec((any::<u64>(), 0usize..4), 0..400),
        m in 0u32..7,
    ) {
        let mut single = LogLinearHistogram::new(m);
        let mut shards: Vec<LogLinearHistogram> =
            (0..4).map(|_| LogLinearHistogram::new(m)).collect();
        for &(v, s) in &tagged {
            single.record(v);
            shards[s].record(v);
        }
        // Fold in both directions: merge must be order-free.
        let mut fwd = shards[0].clone();
        for s in &shards[1..] {
            fwd.merge_from(s).unwrap();
        }
        let mut rev = shards[3].clone();
        for s in shards[..3].iter().rev() {
            rev.merge_from(s).unwrap();
        }
        prop_assert_eq!(&fwd, &single);
        prop_assert_eq!(&rev, &single);
    }

    /// count/sum/min/max survive any merge partition.
    #[test]
    fn merged_moments_exact(
        tagged in proptest::collection::vec((any::<u64>(), 0usize..3), 1..200),
    ) {
        let mut shards: Vec<LogLinearHistogram> =
            (0..3).map(|_| LogLinearHistogram::default()).collect();
        for &(v, s) in &tagged {
            shards[s].record(v);
        }
        let mut merged = LogLinearHistogram::default();
        for s in &shards {
            merged.merge_from(s).unwrap();
        }
        let values: Vec<u64> = tagged.iter().map(|&(v, _)| v).collect();
        prop_assert_eq!(merged.count(), values.len() as u64);
        prop_assert_eq!(merged.sum(), values.iter().map(|&v| u128::from(v)).sum::<u128>());
        prop_assert_eq!(merged.min(), values.iter().min().copied());
        prop_assert_eq!(merged.max(), values.iter().max().copied());
    }
}
