//! Shared helpers for the `repro_*` experiment binaries and the
//! criterion benches.
//!
//! Each binary regenerates one table or figure of the paper (see
//! `DESIGN.md`'s experiment index) and prints a paper-vs-measured
//! comparison; `EXPERIMENTS.md` records the outcomes.

/// Exact running median over a bounded integer domain, backed by a
/// Fenwick (binary indexed) tree: `insert` and `median` are both
/// `O(log N)`, making the Table 3 experiment linear instead of
/// quadratic in the sample count.
#[derive(Debug)]
pub struct RunningMedianOracle {
    /// `tree[i]` holds partial counts; 1-indexed Fenwick layout.
    tree: Vec<u64>,
    n: u64,
    domain: usize,
}

impl RunningMedianOracle {
    /// An oracle over values `1..=domain`.
    #[must_use]
    pub fn new(domain: usize) -> Self {
        Self {
            tree: vec![0; domain + 1],
            n: 0,
            domain,
        }
    }

    /// Records one occurrence of `v` (`1 <= v <= domain`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of domain.
    pub fn insert(&mut self, v: i64) {
        let mut i = usize::try_from(v).expect("positive value");
        assert!((1..=self.domain).contains(&i), "value {v} out of domain");
        self.n += 1;
        while i <= self.domain {
            self.tree[i] += 1;
            i += i & i.wrapping_neg();
        }
    }

    /// Exact nearest-rank median (`ceil(n/2)`-th smallest), `None` when
    /// empty.
    #[must_use]
    pub fn median(&self) -> Option<i64> {
        if self.n == 0 {
            return None;
        }
        let target = self.n.div_ceil(2);
        // Fenwick binary-lifting quantile search.
        let mut pos = 0usize;
        let mut remaining = target;
        let mut step = self.domain.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= self.domain && self.tree[next] < remaining {
                remaining -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        Some((pos + 1) as i64)
    }
}

/// Percentile (nearest-rank) of a sample of `f64`s.
///
/// # Panics
///
/// Panics on an empty sample or NaN values.
#[must_use]
pub fn percentile_f64(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty());
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let rank = ((p / 100.0 * s.len() as f64).ceil() as usize).clamp(1, s.len());
    s[rank - 1]
}

/// Maximum of a sample.
///
/// # Panics
///
/// Panics on an empty sample or NaN values.
#[must_use]
pub fn max_f64(samples: &[f64]) -> f64 {
    samples
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Formats a percentage with sub-percent precision.
#[must_use]
pub fn pct(v: f64) -> String {
    if v < 0.01 && v > 0.0 {
        "<0.01%".to_string()
    } else {
        format!("{v:.2}%")
    }
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// One row of Table 3: the median-tracking error experiment.
///
/// Feeds `samples` uniform draws from `[1, n]` into a one-step-per-
/// packet median tracker, recording for every packet the error
/// `|estimate − exact median of everything seen so far| / n` — the
/// relative-to-domain metric whose magnitudes match the paper's.
/// Returns `(errors_before_half, errors_after_half)`.
///
/// # Panics
///
/// Panics if `n < 1`.
pub fn median_error_run(
    n: i64,
    samples: usize,
    seed: u64,
) -> (Vec<f64>, Vec<f64>) {
    use rand::Rng;
    let mut rng = workloads::rng(seed);
    let mut tracker =
        stat4_core::percentile::PercentileTracker::median(1, n).expect("valid domain");
    let mut oracle = RunningMedianOracle::new(usize::try_from(n).expect("positive domain"));
    let mut before = Vec::new();
    let mut after = Vec::new();
    let half = (n as usize / 2).min(samples);
    for i in 0..samples {
        let v: i64 = rng.random_range(1..=n);
        tracker.observe(v).expect("in domain");
        oracle.insert(v);
        let est = tracker.estimate().expect("seeded") as f64;
        let truth = oracle.median().expect("non-empty") as f64;
        let err = (est - truth).abs() / n as f64 * 100.0;
        if i < half {
            before.push(err);
        } else {
            after.push(err);
        }
    }
    (before, after)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fenwick_median_matches_sort_based() {
        use rand::Rng;
        let mut rng = workloads::rng(5);
        let mut o = RunningMedianOracle::new(50);
        let mut seen = Vec::new();
        assert_eq!(o.median(), None);
        for _ in 0..500 {
            let v: i64 = rng.random_range(1..=50);
            o.insert(v);
            seen.push(v);
            assert_eq!(o.median(), stat4_core::oracle::median(&seen));
        }
    }

    #[test]
    fn percentile_helper() {
        let s = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile_f64(&s, 50.0), 5.0);
        assert_eq!(percentile_f64(&s, 90.0), 9.0);
        assert_eq!(percentile_f64(&s, 100.0), 10.0);
        assert_eq!(max_f64(&s), 10.0);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.001), "<0.01%");
        assert_eq!(pct(3.456), "3.46%");
        assert_eq!(pct(0.0), "0.00%");
    }

    #[test]
    fn median_error_run_shape() {
        let (before, after) = median_error_run(100, 400, 3);
        assert_eq!(before.len(), 50);
        assert_eq!(after.len(), 350);
        // The paper's qualitative claim: error collapses after the
        // distribution stops being sparse.
        let b90 = percentile_f64(&before, 90.0);
        let a90 = percentile_f64(&after, 90.0);
        assert!(a90 <= b90, "late error {a90} <= early error {b90}");
        assert!(a90 < 5.0, "late 90th percentile error small: {a90}");
    }
}
