//! Ablation: order-of-magnitude value scaling (paper Sec. 2).
//!
//! ```text
//! cargo run -p bench --bin ablation_scaling --release
//! ```
//!
//! The paper: "we can further reduce memory consumption by storing the
//! order of magnitude of the values … if we keep 100ms-long counters
//! and a switch forwards 10Gb of traffic in most of the 100ms
//! intervals, we can track values in Gb units". This sweep tracks byte
//! volumes of ~1.25 GB/interval (10 Gb) through [`Scale`]s of
//! increasing coarseness and reports the register bits needed per
//! counter vs the smallest byte-volume spike the scaled mean + 2σ check
//! still detects.

use rand::Rng;
use stat4_core::scale::Scale;
use stat4_core::window::WindowedDist;

const BYTES_PER_INTERVAL: i64 = 1_250_000_000; // 10 Gb in 100 ms
const WINDOW: usize = 100;

fn interval_bytes(rng: &mut impl Rng) -> i64 {
    BYTES_PER_INTERVAL + rng.random_range(-BYTES_PER_INTERVAL / 20..=BYTES_PER_INTERVAL / 20)
}

/// Bits needed to store the largest scaled value seen.
fn bits_needed(max_scaled: i64) -> u32 {
    64 - (max_scaled.max(1) as u64).leading_zeros()
}

fn main() {
    println!("Ablation: order-of-magnitude scaling of tracked byte volumes");
    println!(
        "(~{:.2} GB per interval ±5%, window {WINDOW}, margined 2σ check on scaled units)",
        BYTES_PER_INTERVAL as f64 / 1e9
    );
    println!("{:-<86}", "");
    println!(
        "{:<12} {:>16} {:>14} {:>18} {:>20}",
        "shift", "scaled typical", "counter bits", "min detectable", "quantisation err"
    );
    println!("{:-<86}", "");

    for shift in [0u32, 10, 20, 24, 27, 30] {
        let scale = Scale::new(0, shift, i64::MAX >> 2).expect("valid");
        let mut rng = workloads::rng(42);
        let mut w = WindowedDist::new(WINDOW).expect("window");
        let mut max_scaled = 0i64;
        for _ in 0..WINDOW {
            let s = scale.apply(interval_bytes(&mut rng));
            max_scaled = max_scaled.max(s);
            w.accumulate(s);
            w.close_interval();
        }
        // Smallest spike multiplier detected on the scaled values.
        let mut mult = 1.05f64;
        let detected = loop {
            let spike = scale.apply((BYTES_PER_INTERVAL as f64 * mult) as i64);
            if w.is_spike_margined(spike, 2, 10, 3, 4) {
                break mult;
            }
            mult += 0.05;
            if mult > 50.0 {
                break f64::INFINITY;
            }
        };
        println!(
            "{:<12} {:>16} {:>14} {:>17.2}x {:>17} B",
            shift,
            scale.apply(BYTES_PER_INTERVAL),
            bits_needed(max_scaled),
            detected,
            scale.quantisation_error()
        );
    }
    println!("{:-<86}", "");
    println!(
        "takeaway: shifting 27 bits stores ~10 Gb intervals in 4-bit counters and still \
         detects a ~2x spike; past that the quantisation floor swallows the 2σ band — \
         the paper's \"values much bigger than 100 are unnecessary\" claim, quantified."
    );
}
