//! Reproduces **Table 3**: median estimation error for distributions of
//! `N` elements, over 20 repetitions per value of `N`, split into
//! before/after the first `N/2` samples.
//!
//! ```text
//! cargo run -p bench --bin repro_table3 --release
//! ```
//!
//! For each repetition, uniform draws from `[1, N]` feed the
//! one-step-per-packet median tracker; the error at every packet is
//! `|estimate − exact median of the samples seen so far| / N` — high
//! while the distribution is sparse, collapsing once it fills in,
//! exactly the paper's qualitative claim ("always ≤1%, except early in
//! our simulations, when distributions are sparse").

use bench::{median_error_run, pct, percentile_f64, rule};

fn main() {
    // (N, samples per run, paper before-p50/p90, paper after-p50/p90)
    let rows: [(i64, usize, &str, &str, &str, &str); 3] = [
        (100, 2_000, "4.5%", "34.5%", "0%", "1%"),
        (1_000, 8_000, "3.6%", "29.6%", "0%", "0.1%"),
        (65_536, 196_608, "<1%", "23%", "0%", "0.01%"),
    ];
    const REPS: u64 = 20;

    println!("Table 3 — median estimation error (one marker step per packet)");
    println!("(20 repetitions per N; error = |estimate - exact running median| / N)");
    rule(108);
    println!(
        "{:<9} {:<22} | {:>9} {:>9} {:>9} {:>9} | {:>8} {:>8} {:>8} {:>8}",
        "N",
        "example use case",
        "b-p50",
        "b-p90",
        "a-p50",
        "a-p90",
        "pb-p50",
        "pb-p90",
        "pa-p50",
        "pa-p90"
    );
    rule(108);
    for (n, samples, pb50, pb90, pa50, pa90) in rows {
        let mut before_all = Vec::new();
        let mut after_all = Vec::new();
        for rep in 0..REPS {
            let (b, a) = median_error_run(n, samples, 1000 + rep);
            before_all.extend(b);
            after_all.extend(a);
        }
        let case = match n {
            100 => "packet types",
            1_000 => "per-ms traffic",
            _ => "16-bit field",
        };
        println!(
            "{:<9} {:<22} | {:>9} {:>9} {:>9} {:>9} | {:>8} {:>8} {:>8} {:>8}",
            n,
            case,
            pct(percentile_f64(&before_all, 50.0)),
            pct(percentile_f64(&before_all, 90.0)),
            pct(percentile_f64(&after_all, 50.0)),
            pct(percentile_f64(&after_all, 90.0)),
            pb50,
            pb90,
            pa50,
            pa90
        );
    }
    rule(108);
    println!("b- = before N/2 samples, a- = after; p* columns = paper's Table 3.");

    // Figure 3's register-level walk is asserted in
    // stat4-core::percentile::tests::figure3_register_transition; echo
    // its statement here for the record.
    println!("Figure 3: adding an 8 moves the median marker 4 -> 6 in two packets (unit-tested).");
}
