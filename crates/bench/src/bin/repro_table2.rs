//! Reproduces **Table 2**: percentage error in square-root estimation
//! with respect to the fractional square-root value, per input decade.
//!
//! ```text
//! cargo run -p bench --bin repro_table2 --release
//! ```
//!
//! Sweeps every integer in each range through both the portable
//! implementation and the pipeline-IR implementation (they are asserted
//! identical), then prints measured 50th/90th/max percentage errors
//! next to the paper's claims. The paper's absolute numbers for the
//! upper decades are not attainable by any integer-output variant of
//! its Figure 2 algorithm (see EXPERIMENTS.md); the reproduced *shape*
//! is the rapid decay from the first decade to the interpolation
//! plateau.

use bench::{max_f64, pct, percentile_f64, rule};
use stat4_core::isqrt::approx_error_percent;

fn main() {
    // (lo, hi, paper p50, paper p90, paper max)
    let rows: [(u64, u64, &str, &str, &str); 4] = [
        (1, 10, "3%", "10%", "20%"),
        (10, 100, "0.4%", "1.4%", "3.8%"),
        (100, 1000, "<0.05%", "0.14%", "0.44%"),
        (1000, 10_000, "<0.01%", "<0.01%", "0.05%"),
    ];

    println!("Table 2 — percentage error of the shift-based integer square root");
    println!("(exhaustive sweep of every integer per range; error vs fractional sqrt)");
    rule(92);
    println!(
        "{:<14} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "input y", "p50 meas", "p90 meas", "max meas", "p50 paper", "p90 paper", "max paper"
    );
    rule(92);
    for (lo, hi, p50p, p90p, maxp) in rows {
        let errs: Vec<f64> = (lo..=hi).map(approx_error_percent).collect();
        println!(
            "{:<14} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
            format!("{lo}-{hi}"),
            pct(percentile_f64(&errs, 50.0)),
            pct(percentile_f64(&errs, 90.0)),
            pct(max_f64(&errs)),
            p50p,
            p90p,
            maxp
        );
    }
    rule(92);

    // Figure 2's worked example.
    let v = stat4_core::isqrt::approx_isqrt(106);
    println!("Figure 2 worked example: approx_isqrt(106) = {v} (paper: 10)");
    assert_eq!(v, 10);

    // Cross-check: the pipeline-IR implementation agrees bit-for-bit.
    let mut b = p4sim::ProgramBuilder::new();
    let frag = stat4_p4::fragments::isqrt_fragment(
        &mut b,
        p4sim::phv::fields::PAYLOAD_VALUE,
        stat4_p4::scratch::SD,
    );
    b.set_control(frag);
    let mut pipe = b.build(p4sim::TargetModel::bmv2()).expect("valid program");
    let mut checked = 0u64;
    for x in (0..100_000u64).step_by(37) {
        let mut phv = p4sim::Phv::new();
        phv.set(p4sim::phv::fields::PAYLOAD_VALUE, x);
        pipe.process_phv(&mut phv).expect("pipeline ok");
        assert_eq!(
            phv.get(stat4_p4::scratch::SD),
            stat4_core::isqrt::approx_isqrt(x),
            "IR and portable implementations diverge at {x}"
        );
        checked += 1;
    }
    println!("IR cross-check: {checked} samples, pipeline == portable on every one");
}
