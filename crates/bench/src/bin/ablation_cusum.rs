//! Ablation: the paper's mean + k·σ band vs an integer CUSUM — the
//! "larger exploration of in-switch statistical primitives" the paper's
//! future-work section calls for, quantified.
//!
//! ```text
//! cargo run -p bench --bin ablation_cusum --release
//! ```
//!
//! Three regimes over per-interval counts (window 100, margined band as
//! deployed in the case study, CUSUM calibrated from the same tracked
//! moments):
//!
//! 1. clean noise — false alarms per 10 000 intervals;
//! 2. a 10× volumetric spike — detection latency in intervals;
//! 3. a sustained +20% shift (a low-and-slow attack) — detection
//!    latency in intervals, where the band is structurally blind but
//!    CUSUM accumulates.

use rand::Rng;
use stat4_core::cusum::CusumDetector;
use stat4_core::window::WindowedDist;

const BASE: i64 = 200;
const WINDOW: usize = 100;
const WARMUP: usize = 200;

fn noise(rng: &mut impl Rng) -> i64 {
    // Poisson-ish: base +- ~sqrt(base) of jitter.
    BASE + rng.random_range(-30i64..=30) + rng.random_range(-14i64..=14)
}

/// Returns (band_latency, cusum_latency) in intervals after onset, or
/// None if undetected within the horizon.
fn detection_latency(shift: impl Fn(i64) -> i64, seed: u64) -> (Option<usize>, Option<usize>) {
    let mut rng = workloads::rng(seed);
    let mut window = WindowedDist::new(WINDOW).expect("window");
    for _ in 0..WARMUP {
        window.accumulate(noise(&mut rng));
        window.close_interval();
    }
    let mut cusum = CusumDetector::from_stats(window.stats(), 1, 8);

    let mut band_at = None;
    let mut cusum_at = None;
    for i in 0..2_000usize {
        let x = shift(noise(&mut rng));
        if band_at.is_none() && window.is_spike_margined(x, 2, 10, 3, 4) {
            band_at = Some(i);
        }
        if cusum_at.is_none() && cusum.observe(x) {
            cusum_at = Some(i);
        }
        window.accumulate(x);
        window.close_interval();
        if band_at.is_some() && cusum_at.is_some() {
            break;
        }
    }
    (band_at, cusum_at)
}

fn false_alarms(seed: u64) -> (u64, u64) {
    let mut rng = workloads::rng(seed);
    let mut window = WindowedDist::new(WINDOW).expect("window");
    for _ in 0..WARMUP {
        window.accumulate(noise(&mut rng));
        window.close_interval();
    }
    let mut cusum = CusumDetector::from_stats(window.stats(), 1, 8);
    let mut band = 0u64;
    let mut cus = 0u64;
    for _ in 0..10_000 {
        let x = noise(&mut rng);
        if window.is_spike_margined(x, 2, 10, 3, 4) {
            band += 1;
        }
        if cusum.observe(x) {
            cus += 1;
        }
        window.accumulate(x);
        window.close_interval();
    }
    (band, cus)
}

fn fmt(x: Option<usize>) -> String {
    x.map_or("miss".into(), |v| format!("{v}"))
}

fn main() {
    println!("Ablation: margined mean+2σ band vs integer CUSUM (per-interval counts, base {BASE})");
    println!("{:-<76}", "");

    let (fb, fc) = false_alarms(11);
    println!("clean noise, 10 000 intervals: band false alarms = {fb}, CUSUM false alarms = {fc}");

    println!("\n{:<28} {:>16} {:>16}", "scenario", "band latency", "CUSUM latency");
    println!("{:-<62}", "");
    let mut band_sum = 0usize;
    let mut cusum_sum = 0usize;
    for seed in 1..=5u64 {
        let (b, c) = detection_latency(|x| x * 10, seed);
        band_sum += b.unwrap_or(9999);
        cusum_sum += c.unwrap_or(9999);
        println!("{:<28} {:>16} {:>16}", format!("10x spike (seed {seed})"), fmt(b), fmt(c));
    }
    println!("{:-<62}", "");
    let mut misses_band = 0;
    for seed in 1..=5u64 {
        let (b, c) = detection_latency(|x| x + BASE / 5, seed);
        if b.is_none() {
            misses_band += 1;
        }
        println!(
            "{:<28} {:>16} {:>16}",
            format!("+20% sustained (seed {seed})"),
            fmt(b),
            fmt(c)
        );
    }
    println!("{:-<62}", "");
    println!(
        "takeaway: on abrupt spikes both fire within ~1 interval (band {band_sum}, cusum {cusum_sum} \
         summed over 5 runs);"
    );
    println!(
        "on a low-and-slow +20% shift the band misses in {misses_band}/5 runs while CUSUM \
         accumulates the drift within tens of intervals — complementary primitives, both \
         P4-expressible."
    );
}
