//! Reproduces the paper's **Figure 1 argument** quantitatively: the
//! sketch-only pull architecture (Fig. 1b) vs in-switch detection with
//! pushed alerts (Fig. 1c), on identical traffic, identical detection
//! logic, identical control-channel latency — only the *placement* of
//! the check differs.
//!
//! ```text
//! cargo run -p bench --bin repro_architecture --release
//! ```
//!
//! The paper: "for any sketch-only system, a delay is inevitable
//! between when a traffic change is theoretically detectable and when
//! the system is actually able to detect the change: this delay is
//! inversely proportional to the generated overhead." The sweep below
//! measures exactly that curve (pull period → detection latency +
//! messages + register cells transferred) and the push architecture's
//! single point (one digest, ~zero standing overhead).

use anomaly::drilldown::{DrilldownController, DrilldownTopology};
use anomaly::polling::PollingController;
use netsim::host::{SinkHost, TraceGen, TrafficSource};
use netsim::{P4SwitchNode, Simulation, MICROS, MILLIS};
use stat4_p4::{CaseStudyApp, CaseStudyParams, Stat4Config};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use workloads::SpikeWorkload;

const CTRL_DELAY: u64 = 2 * MILLIS;

fn params() -> CaseStudyParams {
    CaseStudyParams {
        interval_log2: 23, // ~8.4 ms, the paper's default interval
        window_size: 100,
        min_intervals: 16,
        config: Stat4Config {
            counter_num: 2,
            counter_size: 64,
            width_bits: 64,
        },
        ..CaseStudyParams::default()
    }
}

fn workload() -> (workloads::Schedule, workloads::SpikeGroundTruth, u64) {
    let p = params();
    let interval_ns = 1u64 << p.interval_log2;
    let w = SpikeWorkload {
        background_pps: 20_000,
        spike_multiplier: 10,
        spike_start_range: (25 * interval_ns, 26 * interval_ns),
        duration: 80 * interval_ns,
        seed: 21,
        ..SpikeWorkload::default()
    };
    let (s, t) = w.generate();
    (s, t, w.duration)
}

struct Run {
    detect_latency_ms: f64,
    messages: u64,
    cells: u64,
    msgs_per_sec: f64,
}

fn run_pull(period: u64) -> Run {
    let (schedule, truth, duration) = workload();
    let app = CaseStudyApp::build(params()).expect("builds");
    let handles = app.handles();
    let mut sim = Simulation::new();
    let source = sim.add_node(Box::new(TrafficSource::new(Box::new(TraceGen::new(
        schedule,
    )))));
    let sink = sim.add_node(Box::new(SinkHost::new(Arc::new(AtomicU64::new(0)))));
    let switch = sim.add_node(Box::new(P4SwitchNode::new(app.pipeline)));
    let poller = sim.add_node(Box::new(PollingController::new(handles, switch, period)));
    sim.connect(source, 0, switch, 0, 20 * MICROS);
    sim.connect(switch, 1, sink, 0, 20 * MICROS);
    sim.connect_control(switch, poller, CTRL_DELAY);
    // Cap the run at the workload duration so overhead normalisation is
    // fair (the poller would otherwise poll an idle network forever).
    sim.run_until(duration);
    let p = sim.node_as::<PollingController>(poller).expect("poller");
    Run {
        detect_latency_ms: p
            .detected_at
            .map(|at| (at - truth.spike_start) as f64 / 1e6)
            .unwrap_or(f64::NAN),
        messages: p.requests_sent * 2, // request + response
        cells: p.cells_read,
        msgs_per_sec: (p.requests_sent * 2) as f64 / (duration as f64 / 1e9),
    }
}

fn run_push() -> Run {
    let (schedule, truth, duration) = workload();
    let app = CaseStudyApp::build(params()).expect("builds");
    let handles = app.handles();
    let mut sim = Simulation::new();
    let source = sim.add_node(Box::new(TrafficSource::new(Box::new(TraceGen::new(
        schedule,
    )))));
    let sink = sim.add_node(Box::new(SinkHost::new(Arc::new(AtomicU64::new(0)))));
    let switch = sim.add_node(Box::new(P4SwitchNode::new(app.pipeline)));
    let controller = sim.add_node(Box::new(DrilldownController::new(
        handles,
        switch,
        DrilldownTopology {
            net: 10,
            subnets: 6,
            hosts_per_subnet: 6,
        },
    )));
    sim.node_as_mut::<P4SwitchNode>(switch)
        .expect("switch")
        .controller = Some(controller);
    sim.connect(source, 0, switch, 0, 20 * MICROS);
    sim.connect(switch, 1, sink, 0, 20 * MICROS);
    sim.connect_control(switch, controller, CTRL_DELAY);
    sim.run_until(duration);
    let c = sim
        .node_as::<DrilldownController>(controller)
        .expect("controller");
    let digests = sim
        .node_as::<P4SwitchNode>(switch)
        .expect("switch")
        .digests_sent;
    Run {
        detect_latency_ms: c
            .report
            .spike_alert_at
            .map(|at| (at - truth.spike_start) as f64 / 1e6)
            .unwrap_or(f64::NAN),
        messages: digests,
        cells: 0,
        msgs_per_sec: digests as f64 / (duration as f64 / 1e9),
    }
}

fn main() {
    println!("Figure 1 architectures, quantified (same traffic, same check, 2 ms control RTT leg,");
    println!("~8.4 ms intervals, 100-interval window; spike of 10x at a random time)");
    println!("{:-<88}", "");
    println!(
        "{:<28} {:>14} {:>12} {:>14} {:>12}",
        "architecture", "latency (ms)", "messages", "cells pulled", "msgs/sec"
    );
    println!("{:-<88}", "");
    for period in [5 * MILLIS, 10 * MILLIS, 50 * MILLIS, 100 * MILLIS, 500 * MILLIS] {
        let r = run_pull(period);
        println!(
            "{:<28} {:>14.1} {:>12} {:>14} {:>12.1}",
            format!("pull every {} ms", period / MILLIS),
            r.detect_latency_ms,
            r.messages,
            r.cells,
            r.msgs_per_sec
        );
    }
    let push = run_push();
    println!(
        "{:<28} {:>14.1} {:>12} {:>14} {:>12.1}",
        "push (in-switch, Fig. 1c)",
        push.detect_latency_ms,
        push.messages,
        push.cells,
        push.msgs_per_sec
    );
    println!(
        "{:<28} (every push message is an anomaly digest emitted *after* onset; during the",
        ""
    );
    println!("{:<28} anomaly-free warm-up the push architecture sends zero messages)", "");
    println!("{:-<88}", "");
    println!(
        "the paper's claim, measured: pull latency ≈ interval + poll period/1 + RTT and its \
         overhead grows as the period shrinks (inverse proportionality), while the push \
         architecture detects at interval close + one-way delay with zero standing overhead."
    );
    assert!(push.detect_latency_ms < 15.0, "push: first interval + 2 ms");
}
