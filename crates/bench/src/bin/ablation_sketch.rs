//! Ablation: sketched vs exact per-value counters (paper future work).
//!
//! ```text
//! cargo run -p bench --bin ablation_sketch --release
//! ```
//!
//! Stat4 "allocates switch resources for every possible value in the
//! tracked distributions, even if some values are never observed"; the
//! paper proposes hash tables for sparse domains. This sweep tracks a
//! Zipf-popular prefix distribution (the paper's own future-work
//! example of a hard distribution) three ways — exact array, count-min,
//! conservative count-min — and reports memory vs estimate error vs
//! heavy-hitter accuracy.

use stat4_core::sketch::CountMinSketch;
use workloads::ZipfPrefixWorkload;

fn main() {
    // 4096 possible prefixes, Zipf-popular, 200k packets.
    let workload = ZipfPrefixWorkload {
        prefixes: 4096,
        exponent: 1.1,
        packets: 200_000,
        gap_ns: 1,
        seed: 12,
    };
    let (_, counts) = workload.generate();
    let total: u64 = counts.iter().sum();
    let exact_bytes = counts.len() * 8;

    // Ground-truth heavy hitters: > 1/64 of traffic.
    let heavy_truth: Vec<usize> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c * 64 > total)
        .map(|(k, _)| k)
        .collect();

    println!(
        "Ablation: exact counters vs count-min on Zipf(s=1.1) over {} prefixes, {} packets",
        counts.len(),
        total
    );
    println!(
        "exact array: {} B, exact heavy hitters (>1/64): {:?}",
        exact_bytes, heavy_truth
    );
    println!("{:-<90}", "");
    println!(
        "{:<26} {:>10} {:>14} {:>14} {:>10} {:>10}",
        "sketch", "bytes", "mean abs err", "p99 abs err", "HH found", "HH false"
    );
    println!("{:-<90}", "");

    for (rows, width_log2) in [(2u32, 6u32), (4, 8), (4, 10), (4, 12)] {
        for conservative in [false, true] {
            let mut s = CountMinSketch::new(rows as usize, width_log2);
            for (k, &c) in counts.iter().enumerate() {
                // Feed per-key totals in unit increments interleaved is
                // equivalent for CM error; bulk-update for speed.
                if conservative {
                    s.update_conservative(k as u64, c);
                } else {
                    s.update(k as u64, c);
                }
            }
            let mut errs: Vec<u64> = counts
                .iter()
                .enumerate()
                .map(|(k, &c)| s.estimate(k as u64) - c)
                .collect();
            errs.sort_unstable();
            let mean = errs.iter().sum::<u64>() as f64 / errs.len() as f64;
            let p99 = errs[errs.len() * 99 / 100];
            let found = heavy_truth
                .iter()
                .filter(|&&k| s.is_heavy(k as u64, 6))
                .count();
            let false_heavy = (0..counts.len())
                .filter(|&k| !heavy_truth.contains(&k) && s.is_heavy(k as u64, 6))
                .count();
            println!(
                "{:<26} {:>10} {:>14.1} {:>14} {:>7}/{:<2} {:>10}",
                format!(
                    "{}x2^{} {}",
                    rows,
                    width_log2,
                    if conservative { "conservative" } else { "plain" }
                ),
                s.memory_bytes(),
                mean,
                p99,
                found,
                heavy_truth.len(),
                false_heavy
            );
        }
    }
    println!("{:-<90}", "");
    println!(
        "takeaway: a 4x2^10 sketch finds every heavy hitter in 1/4 the memory of the exact \
         array; conservative update cuts the estimate error further at the cost of a \
         read-modify-write per row — the trade the paper's future-work section anticipates."
    );
}
