//! Reproduces the **Sec. 3 validation experiment** (Figure 5): a host
//! sends 10 000 Ethernet frames whose payload carries a random integer
//! in `[-255, 255]`; the switch tracks the integers' frequency
//! distribution and reports `(N, Xsum, Xsumsq, σ², σ)` for every packet;
//! the host recomputes everything in software and compares.
//!
//! ```text
//! cargo run -p bench --bin repro_validation --release
//! ```
//!
//! Paper's result: "in all our experiments (with up to 10,000 packets),
//! the values of N, Xsum, Xsumsq and σ²(NX) stored at the switch are
//! equal to those computed at the host." The reproduction asserts
//! exactly that, digest by digest.

use netsim::host::{SinkHost, TraceGen, TrafficSource};
use netsim::{P4SwitchNode, RecordingController, Simulation, MICROS};
use stat4_core::freq::FrequencyDist;
use stat4_p4::{EchoApp, Stat4Config, DIGEST_ECHO};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use workloads::EchoWorkload;

fn main() {
    let workload = EchoWorkload {
        packets: 10_000,
        gap_ns: 10_000,
        seed: 20,
    };
    let (schedule, values) = workload.generate();
    let app = EchoApp::build(&Stat4Config::default()).expect("echo app builds");
    let (host, sim, controller) = run(schedule, app);

    let ctl = sim
        .node_as::<RecordingController>(controller)
        .expect("controller present");
    let echoes = sim
        .node_as::<TrafficSource>(host)
        .expect("host present")
        .received;
    println!("Validation experiment (Fig. 5): {} packets", values.len());
    println!(
        "digests received: {}, frames echoed back to host: {}",
        ctl.digests.len(),
        echoes
    );
    assert_eq!(echoes, values.len() as u64, "every frame echoed");
    assert_eq!(ctl.digests.len(), values.len(), "one digest per packet");

    // Host-side oracle: replay the same values through stat4-core.
    let mut oracle = FrequencyDist::new(-255, 255).expect("domain fits");
    let mut mismatches = 0u64;
    for ((_, _, digest), v) in ctl.digests.iter().zip(&values) {
        assert_eq!(digest.id, DIGEST_ECHO);
        oracle.observe(*v).expect("in range");
        let expect = [
            oracle.n_distinct(),
            oracle.xsum(),
            u64::try_from(oracle.xsumsq()).expect("fits"),
            u64::try_from(oracle.variance_nx()).expect("fits"),
            oracle.sd_nx(),
        ];
        if digest.values != expect {
            mismatches += 1;
            if mismatches <= 3 {
                eprintln!("MISMATCH after value {v}: switch {:?} host {expect:?}", digest.values);
            }
        }
    }
    println!(
        "switch-vs-host comparison: {} packets checked, {} mismatches",
        values.len(),
        mismatches
    );
    assert_eq!(mismatches, 0, "paper's result: exact equality");
    println!("RESULT: N, Xsum, Xsumsq, var(NX), sd(NX) identical on every packet — matches the paper.");
}

fn run(
    schedule: workloads::Schedule,
    app: EchoApp,
) -> (netsim::NodeId, Simulation, netsim::NodeId) {
    let mut sim = Simulation::new();
    // The echo host sends the workload and counts the echoed replies
    // arriving back on the same port (TrafficSource::received).
    let host = sim.add_node(Box::new(TrafficSource::new(Box::new(TraceGen::new(
        schedule,
    )))));
    let unused_sink = sim.add_node(Box::new(SinkHost::new(Arc::new(AtomicU64::new(0)))));
    let controller = sim.add_node(Box::new(RecordingController::new()));
    let switch = sim.add_node(Box::new(
        P4SwitchNode::new(app.pipeline).with_controller(controller),
    ));
    sim.connect(host, 0, switch, 0, 10 * MICROS);
    sim.connect(switch, 1, unused_sink, 0, 10 * MICROS);
    sim.connect_control(switch, controller, 500 * MICROS);
    sim.run();
    (host, sim, controller)
}
