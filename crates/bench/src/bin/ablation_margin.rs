//! Ablation: the alarm margin (DESIGN.md "Known deviations").
//!
//! ```text
//! cargo run -p bench --bin ablation_margin --release
//! ```
//!
//! The paper's check is a bare `mean + 2σ`; our deployment adds a
//! relative margin `max(Xsum >> shift, 4)`. This sweep quantifies the
//! trade on per-interval counts: the false-alarm probability on clean
//! (Poisson-ish) traffic vs the smallest detectable spike multiplier,
//! as the margin widens from "off" to 50% of the mean.

use rand::Rng;
use stat4_core::window::WindowedDist;

const BASE: i64 = 200;
const WINDOW: usize = 100;

fn noise(rng: &mut impl Rng) -> i64 {
    BASE + rng.random_range(-30i64..=30) + rng.random_range(-14i64..=14)
}

/// False alarms on clean traffic, per 10 000 intervals (margin off =
/// shift 63, floor 0).
fn fp_rate(shift: u32, floor: u64, seed: u64) -> u64 {
    let mut rng = workloads::rng(seed);
    let mut w = WindowedDist::new(WINDOW).expect("window");
    for _ in 0..WINDOW {
        w.accumulate(noise(&mut rng));
        w.close_interval();
    }
    let mut alarms = 0;
    for _ in 0..10_000 {
        let x = noise(&mut rng);
        if w.is_spike_margined(x, 2, 10, shift, floor) {
            alarms += 1;
        }
        w.accumulate(x);
        w.close_interval();
    }
    alarms
}

/// Smallest spike multiplier (in 5% steps) that is detected within one
/// interval of onset.
fn min_detectable(shift: u32, floor: u64, seed: u64) -> f64 {
    let mut mult = 1.05f64;
    loop {
        let mut rng = workloads::rng(seed);
        let mut w = WindowedDist::new(WINDOW).expect("window");
        for _ in 0..WINDOW {
            w.accumulate(noise(&mut rng));
            w.close_interval();
        }
        let spike = (BASE as f64 * mult) as i64;
        if w.is_spike_margined(spike, 2, 10, shift, floor) {
            return mult;
        }
        mult += 0.05;
        if mult > 20.0 {
            return f64::INFINITY;
        }
    }
}

fn main() {
    println!("Ablation: relative alarm margin max(Xsum >> shift, floor) on the spike check");
    println!("(base rate {BASE}/interval, window {WINDOW}, k = 2; 10 000 clean intervals)");
    println!("{:-<78}", "");
    println!(
        "{:<26} {:>18} {:>24}",
        "margin", "false alarms", "min detectable spike"
    );
    println!("{:-<78}", "");
    // (label, shift, floor)
    let configs: [(&str, u32, u64); 5] = [
        ("off (paper's bare 2σ)", 63, 0),
        ("1/32 of mean (shift 5)", 5, 4),
        ("1/8 of mean (shift 3)", 3, 4),
        ("1/4 of mean (shift 2)", 2, 4),
        ("1/2 of mean (shift 1)", 1, 4),
    ];
    for (label, shift, floor) in configs {
        let fp: u64 = (1..=3).map(|s| fp_rate(shift, floor, s)).sum::<u64>() / 3;
        let md = min_detectable(shift, floor, 1);
        println!("{label:<26} {fp:>13} /10k {md:>22.2}x");
    }
    println!("{:-<78}", "");
    println!(
        "takeaway: the bare band false-alarms continuously on stochastic counts; 1/8 of the \
         mean (one shift + one max, P4-legal) silences it while still catching sub-2x spikes — \
         the deployment default."
    );
}
