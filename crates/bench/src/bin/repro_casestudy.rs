//! Reproduces the **Sec. 4 case study** (Figure 6): spike detection and
//! drill-down over a sweep of interval lengths and window sizes.
//!
//! ```text
//! cargo run -p bench --bin repro_casestudy --release
//! ```
//!
//! Paper's results: "in all the experiments, the switch detects the
//! traffic spike in the first interval after the start of the spike";
//! "correctly identifies the destination of the traffic spike";
//! "pinpointing the destination of each spike typically takes 2-3
//! seconds because of the interaction between the control and data
//! planes."
//!
//! The sweep covers interval lengths from ~8 ms to ~2 s (powers of two:
//! the data plane derives the interval id by shifting the timestamp) and
//! windows of 10-100 intervals. Control-plane latency is modelled at
//! 400 ms one-way — the order of magnitude of bmv2 digest processing
//! plus P4Runtime table updates in the paper's test bench — which is
//! what stretches pinpointing into seconds while detection stays within
//! one interval.

use anomaly::drilldown::{DrilldownController, DrilldownPhase, DrilldownTopology};
use netsim::host::{SinkHost, TraceGen, TrafficSource};
use netsim::{P4SwitchNode, Simulation, MICROS, MILLIS, SECONDS};
use stat4_p4::{CaseStudyApp, CaseStudyParams, Stat4Config};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use workloads::SpikeWorkload;

struct RunResult {
    detected: bool,
    detect_latency_intervals: f64,
    pinpointed: bool,
    correct_dest: bool,
    pinpoint_secs: f64,
}

#[allow(clippy::too_many_lines)]
fn run_once(interval_log2: u32, window_size: u64, seed: u64, ctrl_delay: u64) -> RunResult {
    let interval_ns = 1u64 << interval_log2;
    let params = CaseStudyParams {
        interval_log2,
        window_size,
        min_intervals: (window_size / 2).clamp(4, 16),
        config: Stat4Config {
            counter_num: 2,
            counter_size: 256,
            width_bits: 64,
        },
        ..CaseStudyParams::default()
    };
    // Warm-up long enough to fill the check's minimum, spike afterwards,
    // then enough tail for two controller round trips + statistics.
    let warmup = interval_ns * (params.min_intervals + 6);
    let tail = 8 * ctrl_delay + 20 * interval_ns;
    let workload = SpikeWorkload {
        background_pps: (2_000_000_000 / interval_ns).clamp(2_000, 2_000_000),
        spike_multiplier: 10,
        spike_start_range: (warmup, warmup + interval_ns),
        duration: warmup + interval_ns + tail,
        seed,
        ..SpikeWorkload::default()
    };
    let (schedule, truth) = workload.generate();
    let app = CaseStudyApp::build(params).expect("app builds");
    let handles = app.handles();

    let mut sim = Simulation::new();
    let source = sim.add_node(Box::new(TrafficSource::new(Box::new(TraceGen::new(
        schedule,
    )))));
    let sink = sim.add_node(Box::new(SinkHost::new(Arc::new(AtomicU64::new(0)))));
    let switch = sim.add_node(Box::new(P4SwitchNode::new(app.pipeline)));
    let controller = sim.add_node(Box::new(DrilldownController::new(
        handles,
        switch,
        DrilldownTopology {
            net: 10,
            subnets: 6,
            hosts_per_subnet: 6,
        },
    )));
    sim.node_as_mut::<P4SwitchNode>(switch)
        .expect("switch")
        .controller = Some(controller);
    sim.connect(source, 0, switch, 0, 20 * MICROS);
    sim.connect(switch, 1, sink, 0, 20 * MICROS);
    sim.connect_control(switch, controller, ctrl_delay);
    sim.run();

    let ctl = sim
        .node_as::<DrilldownController>(controller)
        .expect("controller");
    let report = ctl.report;
    let detected = report.spike_alert_at.is_some();
    // Detection latency in interval units, measured at the switch (the
    // digest is emitted one control-delay before it arrives).
    let detect_latency_intervals = report
        .spike_alert_at
        .map(|at| {
            let emitted = at.saturating_sub(ctrl_delay);
            (emitted.saturating_sub(truth.spike_start)) as f64 / interval_ns as f64
        })
        .unwrap_or(f64::NAN);
    RunResult {
        detected,
        detect_latency_intervals,
        pinpointed: matches!(ctl.phase, DrilldownPhase::Done { .. }),
        correct_dest: report.dest == Some(truth.spike_dest),
        pinpoint_secs: report
            .pinpoint_latency()
            .map(|ns| ns as f64 / SECONDS as f64)
            .unwrap_or(f64::NAN),
    }
}

fn main() {
    let ctrl_delay = 400 * MILLIS;
    println!("Case study (Fig. 6): spike detection + drill-down sweep");
    println!("control-plane one-way delay: {} ms", ctrl_delay / MILLIS);
    println!(
        "{:-<88}",
        ""
    );
    println!(
        "{:<12} {:<9} {:<6} | {:>9} {:>14} {:>10} {:>9} {:>10}",
        "interval", "window", "seed", "detected", "latency(ivls)", "pinpoint", "correct", "time(s)"
    );
    println!("{:-<88}", "");

    let mut all_detected = true;
    let mut all_first_interval = true;
    let mut all_correct = true;
    let mut pinpoint_times = Vec::new();

    // Intervals ~8.4 ms .. ~2.1 s; windows 10..100 as in the paper.
    for &(interval_log2, label) in &[(23u32, "8.4ms"), (25, "33.6ms"), (28, "268ms"), (31, "2.15s")]
    {
        for &window in &[10u64, 50, 100] {
            // Keep the slowest configurations to one seed; they simulate
            // minutes of traffic.
            let seeds: &[u64] = if interval_log2 >= 28 { &[1] } else { &[1, 2, 3] };
            for &seed in seeds {
                let r = run_once(interval_log2, window, seed, ctrl_delay);
                all_detected &= r.detected;
                // The alert is emitted when the spike's first interval
                // *closes* (i.e. on the first packet of the following
                // interval), so the latency is <= 1 interval plus one
                // inter-packet gap.
                all_first_interval &= r.detect_latency_intervals <= 1.25;
                all_correct &= r.pinpointed && r.correct_dest;
                if r.pinpointed {
                    pinpoint_times.push(r.pinpoint_secs);
                }
                println!(
                    "{:<12} {:<9} {:<6} | {:>9} {:>14.2} {:>10} {:>9} {:>10.2}",
                    label,
                    window,
                    seed,
                    r.detected,
                    r.detect_latency_intervals,
                    r.pinpointed,
                    r.correct_dest,
                    r.pinpoint_secs
                );
            }
        }
    }
    println!("{:-<88}", "");
    let lo = pinpoint_times.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = pinpoint_times.iter().copied().fold(0.0f64, f64::max);
    println!("paper: detection in the first interval after onset  -> reproduced: {all_first_interval}");
    println!("paper: destination correctly identified             -> reproduced: {all_correct}");
    println!(
        "paper: pinpointing typically takes 2-3 s             -> measured: {lo:.2}-{hi:.2} s"
    );
    assert!(all_detected && all_first_interval && all_correct);
}
