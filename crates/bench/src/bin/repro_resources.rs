//! Reproduces the **Sec. 4 resource-consumption analysis**: memory
//! footprint, match-action dependencies and the longest sequential
//! dependency chain of the case-study application.
//!
//! ```text
//! cargo run -p bench --bin repro_resources --release
//! ```
//!
//! Paper's numbers: "the case-study application occupies 3.1KB. It
//! entails at most one dependency between match-action rules, since at
//! most two rules with independent actions match each packet. The
//! longest dependency chain in our code has 12 sequential steps, used to
//! override the oldest counter in distributions of traffic over time."

use p4sim::resources::analyze;
use stat4_p4::{CaseStudyApp, CaseStudyParams, EchoApp, Stat4Config};

fn main() {
    // Paper-equivalent sizing: the drill-down distribution needs at
    // most 36 groups; 100-interval window; one tracked distribution.
    let params = CaseStudyParams {
        window_size: 100,
        config: Stat4Config {
            counter_num: 1,
            counter_size: 64,
            width_bits: 32,
        },
        ..CaseStudyParams::default()
    };
    let app = CaseStudyApp::build(params).expect("app builds");
    let report = analyze(&app.pipeline);

    println!("Case-study application resource report");
    println!("{:-<72}", "");
    println!("{report}");
    println!("{:-<72}", "");
    println!("per-register breakdown:");
    for (name, bytes) in &report.registers {
        println!("  {name:<22} {bytes:>8} B");
    }
    println!("per-table breakdown (at declared capacity):");
    for (name, bytes) in &report.tables {
        println!("  {name:<22} {bytes:>8} B");
    }
    println!("per-action critical paths (top 8):");
    for (name, steps) in report.action_chains.iter().take(8) {
        println!("  {name:<22} {steps:>8} steps");
    }
    println!("{:-<72}", "");
    println!("paper: application occupies 3.1 KB          -> measured: {:.1} KB", report.total_kb());
    println!(
        "paper: at most 1 match-action dependency    -> measured: {}",
        report.match_dependencies
    );
    let longest_fragment = report
        .action_chains
        .iter()
        .filter(|(n, _)| !n.starts_with("isqrt"))
        .max_by_key(|(_, s)| *s)
        .cloned()
        .unwrap_or_default();
    println!(
        "paper: longest dependency chain 12 steps    -> measured: {} steps ('{}', the analogous \
         stateful update fragment); the sqrt fragment alone is {} steps (its 7-step MSB \
         if-cascade included), and the conservative whole-packet worst path sums to {}",
        longest_fragment.1,
        longest_fragment.0,
        report
            .action_chains
            .iter()
            .find(|(n, _)| n.starts_with("isqrt_main"))
            .map(|(_, s)| *s)
            .unwrap_or(0),
        report.longest_chain_steps
    );
    println!(
        "paper: deployable in >10-stage pipelines    -> estimated stages: {} ({})",
        report.stage_estimate,
        if report.fits_target { "fits" } else { "does not fit" }
    );

    // The echo/validation app for comparison.
    let echo = EchoApp::build(&Stat4Config::default()).expect("echo builds");
    let echo_report = analyze(&echo.pipeline);
    println!("{:-<72}", "");
    println!(
        "echo app (validation, 4x512-cell distributions): {:.1} KB, chain {} steps",
        echo_report.total_kb(),
        echo_report.longest_chain_steps
    );
}
