//! Machine-readable replay benchmark: runs the persistent-pool replay
//! engine at 1/2/4/8 shards over the standard SYN-flood workload and
//! writes `BENCH_replay.json` — throughput, epoch/merge timing
//! quantiles, the detector's detection-delay distribution, and the
//! pool-vs-reference speedup per shard count (the reference engine is
//! the pre-pool per-epoch thread-scope implementation kept as
//! `replay::reference`).
//!
//! ```text
//! cargo run -p bench --bin emit_bench_json --release [-- [--check] [OUT.json]]
//! ```
//!
//! With `--check` the process exits 1 if the best multi-shard pool
//! throughput falls below the single-shard pool baseline — the CI
//! smoke gate for "sharding still pays for itself". The check is
//! skipped (with a note) on single-core machines, where a multi-shard
//! win is not physically expected.
//!
//! The numbers come straight from the run's telemetry snapshot, so the
//! benchmark exercises the same instrumentation the `--metrics-out`
//! CLI path exports; the JSON is hand-rolled (no serde derive) like the
//! rest of the telemetry layer, keeping the workspace offline-buildable.

use replay::{reference, run_replay, ReplayConfig, ReplayOutcome};
use telemetry::{json_string, LogLinearHistogram};
use workloads::{Schedule, SynFloodWorkload};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn workload() -> Schedule {
    let (s, _) = SynFloodWorkload {
        background_cps: 500,
        flood_pps: 50_000,
        flood_start: 400_000_000,
        duration: 900_000_000,
        seed: 4,
        ..SynFloodWorkload::default()
    }
    .generate();
    s
}

/// `"name":{"p50":..,"p99":..,"max":..,"count":..}` for a histogram,
/// with nulls when empty.
fn hist_json(name: &str, h: &LogLinearHistogram) -> String {
    let q = |p: u32| h.quantile(p).map_or(String::from("null"), |v| v.to_string());
    format!(
        "{}:{{\"p50\":{},\"p99\":{},\"max\":{},\"count\":{}}}",
        json_string(name),
        q(50),
        q(99),
        h.max().map_or(String::from("null"), |v| v.to_string()),
        h.count()
    )
}

/// Best throughput over `passes` timed runs (after the caller's
/// warmup), so one scheduler hiccup doesn't skew the published number.
fn best_pps(passes: usize, run: impl Fn() -> ReplayOutcome) -> (ReplayOutcome, f64) {
    let mut best: Option<(ReplayOutcome, f64)> = None;
    for _ in 0..passes {
        let out = run();
        let pps = out.throughput_pps();
        if best.as_ref().is_none_or(|(_, b)| pps > *b) {
            best = Some((out, pps));
        }
    }
    best.expect("at least one benchmark pass")
}

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_replay.json");
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            out_path = arg;
        }
    }
    let schedule = workload();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "sharded replay benchmark: {} packets, shard counts {SHARD_COUNTS:?}, {cores} core(s)",
        schedule.len()
    );

    let mut runs = Vec::new();
    let mut pool_pps = Vec::new();
    for shards in SHARD_COUNTS {
        let cfg = ReplayConfig {
            shards,
            ..ReplayConfig::default()
        };
        // Warmup pass: fault in the page cache and warm the allocator
        // before anything is timed.
        let _ = run_replay(&schedule, &cfg);
        let (out, pps) = best_pps(3, || run_replay(&schedule, &cfg));
        let (_, ref_pps) = best_pps(3, || reference::run_replay(&schedule, &cfg));
        pool_pps.push(pps);
        let t = &out.telemetry;
        let merged = t.merged_shard();
        let delay = &t.detector.detection_delay;
        println!(
            "  {shards} shard(s): {pps:>8.0} pkt/s pool, {ref_pps:>8.0} pkt/s reference \
             ({:.2}x), {} epochs, {} alerts",
            pps / ref_pps,
            out.epochs,
            out.alerts.len(),
        );
        runs.push(format!(
            "{{\"shards\":{shards},\"packets\":{},\"epochs\":{},\"alerts\":{},\
             \"elapsed_ns\":{},\"pps\":{pps:.0},\"reference_pps\":{ref_pps:.0},\
             \"speedup_vs_reference\":{:.3},\"detected_at_ns\":{},\
             {},{},{},{},{},{}}}",
            out.packets,
            out.epochs,
            out.alerts.len(),
            t.elapsed_ns,
            pps / ref_pps,
            out.detected_at
                .map_or(String::from("null"), |v| v.to_string()),
            hist_json("detection_delay_ns", delay),
            hist_json("epoch_ns", &t.epoch_ns),
            hist_json("merge_ns", &t.merge_ns),
            hist_json("barrier_wait_ns", &merged.barrier_wait_ns),
            hist_json("partition_ns", &t.partition_ns),
            hist_json("queue_wait_ns", &merged.queue_wait_ns),
        ));
    }

    let json = format!(
        "{{\"benchmark\":\"sharded_replay\",\"workload\":\"synflood\",\
         \"packets\":{},\"cores\":{cores},\"runs\":[{}]}}\n",
        schedule.len(),
        runs.join(",")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("emit_bench_json: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if check {
        if cores < 2 {
            println!("--check: skipped (single core; multi-shard speedup not expected)");
            return;
        }
        let single = pool_pps[0];
        let best_multi = pool_pps[1..].iter().copied().fold(f64::MIN, f64::max);
        if best_multi < single {
            eprintln!(
                "--check: FAILED — best multi-shard throughput {best_multi:.0} pkt/s \
                 is below the 1-shard baseline {single:.0} pkt/s"
            );
            std::process::exit(1);
        }
        println!(
            "--check: ok — best multi-shard {best_multi:.0} pkt/s >= 1-shard {single:.0} pkt/s"
        );
    }
}
