//! Machine-readable replay benchmark: runs the sharded replay engine
//! at 1/2/4/8 shards over the standard SYN-flood workload and writes
//! `BENCH_replay.json` — throughput, epoch/merge timing quantiles, and
//! the detector's detection-delay distribution per shard count.
//!
//! ```text
//! cargo run -p bench --bin emit_bench_json --release [-- OUT.json]
//! ```
//!
//! The numbers come straight from the run's telemetry snapshot, so the
//! benchmark exercises the same instrumentation the `--metrics-out`
//! CLI path exports; the JSON is hand-rolled (no serde derive) like the
//! rest of the telemetry layer, keeping the workspace offline-buildable.

use replay::{run_replay, ReplayConfig};
use telemetry::{json_string, LogLinearHistogram};
use workloads::{Schedule, SynFloodWorkload};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn workload() -> Schedule {
    let (s, _) = SynFloodWorkload {
        background_cps: 500,
        flood_pps: 50_000,
        flood_start: 400_000_000,
        duration: 900_000_000,
        seed: 4,
        ..SynFloodWorkload::default()
    }
    .generate();
    s
}

/// `"name":{"p50":..,"p99":..,"max":..,"count":..}` for a histogram,
/// with nulls when empty.
fn hist_json(name: &str, h: &LogLinearHistogram) -> String {
    let q = |p: u32| h.quantile(p).map_or(String::from("null"), |v| v.to_string());
    format!(
        "{}:{{\"p50\":{},\"p99\":{},\"max\":{},\"count\":{}}}",
        json_string(name),
        q(50),
        q(99),
        h.max().map_or(String::from("null"), |v| v.to_string()),
        h.count()
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| String::from("BENCH_replay.json"));
    let schedule = workload();
    println!(
        "sharded replay benchmark: {} packets, shard counts {SHARD_COUNTS:?}",
        schedule.len()
    );

    let mut runs = Vec::new();
    for shards in SHARD_COUNTS {
        let cfg = ReplayConfig {
            shards,
            ..ReplayConfig::default()
        };
        let out = run_replay(&schedule, &cfg);
        let t = &out.telemetry;
        let merged = t.merged_shard();
        let delay = &t.detector.detection_delay;
        println!(
            "  {shards} shard(s): {:>8.0} pkt/s, {} epochs, {} alerts, delay p50 = {:?} ns",
            out.throughput_pps(),
            out.epochs,
            out.alerts.len(),
            delay.quantile(50),
        );
        runs.push(format!(
            "{{\"shards\":{shards},\"packets\":{},\"epochs\":{},\"alerts\":{},\
             \"elapsed_ns\":{},\"pps\":{:.0},\"detected_at_ns\":{},\
             {},{},{},{}}}",
            out.packets,
            out.epochs,
            out.alerts.len(),
            t.elapsed_ns,
            out.throughput_pps(),
            out.detected_at
                .map_or(String::from("null"), |v| v.to_string()),
            hist_json("detection_delay_ns", delay),
            hist_json("epoch_ns", &t.epoch_ns),
            hist_json("merge_ns", &t.merge_ns),
            hist_json("barrier_wait_ns", &merged.barrier_wait_ns),
        ));
    }

    let json = format!(
        "{{\"benchmark\":\"sharded_replay\",\"workload\":\"synflood\",\
         \"packets\":{},\"runs\":[{}]}}\n",
        schedule.len(),
        runs.join(",")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("emit_bench_json: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
