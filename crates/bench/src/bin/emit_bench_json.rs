//! Machine-readable replay benchmark: runs the persistent-pool replay
//! engine at 1/2/4/8 shards over the standard SYN-flood workload and
//! writes `BENCH_replay.json` — throughput, epoch/merge timing
//! quantiles, the detector's detection-delay distribution, and the
//! pool-vs-reference speedup per shard count (the reference engine is
//! the pre-pool per-epoch thread-scope implementation kept as
//! `replay::reference`).
//!
//! ```text
//! cargo run -p bench --bin emit_bench_json --release [-- [--check] [OUT.json]]
//! ```
//!
//! With `--check` the process exits 1 unless every gate holds:
//!
//! - best multi-shard pool throughput ≥ the single-shard pool baseline
//!   ("sharding still pays for itself"; skipped with a note on
//!   single-core machines, where a multi-shard win is not physically
//!   expected);
//! - `partition_ns` carries exactly one sample per closed epoch (the
//!   warm-up hash pass must land in `prepartition_ns`, not the
//!   per-epoch histogram);
//! - merge cost grows **sub-linearly** in shard count: the 8-shard
//!   merge p50 stays under 4× the 1-shard p50 — the sparse delta path
//!   folds only touched cells, so per-barrier cost must not scale with
//!   8× the full tracker state (the pre-delta engine sat at ~7×);
//! - the delta telemetry proves sparsity: nonzero `merge_delta_bytes`
//!   and `merge_skipped_registers`, and at most 2 full rebuilds per
//!   faultless run (the first barrier, plus slack for one alive-map
//!   hiccup).
//!
//! The numbers come straight from the run's telemetry snapshot, so the
//! benchmark exercises the same instrumentation the `--metrics-out`
//! CLI path exports; the JSON is hand-rolled (no serde derive) like the
//! rest of the telemetry layer, keeping the workspace offline-buildable.

use replay::{reference, run_replay, ReplayConfig, ReplayOutcome};
use telemetry::{json_string, LogLinearHistogram};
use workloads::{Schedule, SynFloodWorkload};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn workload() -> Schedule {
    let (s, _) = SynFloodWorkload {
        background_cps: 500,
        flood_pps: 50_000,
        flood_start: 400_000_000,
        duration: 900_000_000,
        seed: 4,
        ..SynFloodWorkload::default()
    }
    .generate();
    s
}

/// `"name":{"p50":..,"p99":..,"max":..,"count":..}` for a histogram,
/// with nulls when empty.
fn hist_json(name: &str, h: &LogLinearHistogram) -> String {
    let q = |p: u32| h.quantile(p).map_or(String::from("null"), |v| v.to_string());
    format!(
        "{}:{{\"p50\":{},\"p99\":{},\"max\":{},\"count\":{}}}",
        json_string(name),
        q(50),
        q(99),
        h.max().map_or(String::from("null"), |v| v.to_string()),
        h.count()
    )
}

/// Best throughput over `passes` timed runs (after the caller's
/// warmup), so one scheduler hiccup doesn't skew the published number.
fn best_pps(passes: usize, run: impl Fn() -> ReplayOutcome) -> (ReplayOutcome, f64) {
    let mut best: Option<(ReplayOutcome, f64)> = None;
    for _ in 0..passes {
        let out = run();
        let pps = out.throughput_pps();
        if best.as_ref().is_none_or(|(_, b)| pps > *b) {
            best = Some((out, pps));
        }
    }
    best.expect("at least one benchmark pass")
}

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_replay.json");
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            out_path = arg;
        }
    }
    let schedule = workload();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "sharded replay benchmark: {} packets, shard counts {SHARD_COUNTS:?}, {cores} core(s)",
        schedule.len()
    );

    let mut runs = Vec::new();
    let mut pool_pps = Vec::new();
    let mut gate_failures: Vec<String> = Vec::new();
    let mut merge_p50: Vec<Option<u64>> = Vec::new();
    for shards in SHARD_COUNTS {
        let cfg = ReplayConfig {
            shards,
            ..ReplayConfig::default()
        };
        // Warmup pass: fault in the page cache and warm the allocator
        // before anything is timed.
        let _ = run_replay(&schedule, &cfg);
        let (out, pps) = best_pps(3, || run_replay(&schedule, &cfg));
        let (_, ref_pps) = best_pps(3, || reference::run_replay(&schedule, &cfg));
        pool_pps.push(pps);
        let t = &out.telemetry;
        let merged = t.merged_shard();
        let delay = &t.detector.detection_delay;
        println!(
            "  {shards} shard(s): {pps:>8.0} pkt/s pool, {ref_pps:>8.0} pkt/s reference \
             ({:.2}x), {} epochs, {} alerts",
            pps / ref_pps,
            out.epochs,
            out.alerts.len(),
        );
        runs.push(format!(
            "{{\"shards\":{shards},\"packets\":{},\"epochs\":{},\"alerts\":{},\
             \"elapsed_ns\":{},\"pps\":{pps:.0},\"reference_pps\":{ref_pps:.0},\
             \"speedup_vs_reference\":{:.3},\"detected_at_ns\":{},\
             \"merge_delta_bytes\":{},\"merge_skipped_registers\":{},\
             \"merge_rebuilds\":{},{},{},{},{},{},{}}}",
            out.packets,
            out.epochs,
            out.alerts.len(),
            t.elapsed_ns,
            pps / ref_pps,
            out.detected_at
                .map_or(String::from("null"), |v| v.to_string()),
            t.merge_delta_bytes.get(),
            t.merge_skipped_registers.get(),
            t.merge_rebuilds.get(),
            hist_json("detection_delay_ns", delay),
            hist_json("epoch_ns", &t.epoch_ns),
            hist_json("merge_ns", &t.merge_ns),
            hist_json("barrier_wait_ns", &merged.barrier_wait_ns),
            hist_json("partition_ns", &t.partition_ns),
            hist_json("queue_wait_ns", &merged.queue_wait_ns),
        ));
        merge_p50.push(t.merge_ns.quantile(50));
        // Per-run gates: recorded here (where the telemetry is in
        // scope), reported under --check after the JSON is written.
        if t.partition_ns.count() != out.epochs {
            gate_failures.push(format!(
                "{shards} shard(s): partition_ns carries {} samples for {} epochs \
                 (warm-up pass must land in prepartition_ns)",
                t.partition_ns.count(),
                out.epochs
            ));
        }
        if t.merge_delta_bytes.get() == 0 || t.merge_skipped_registers.get() == 0 {
            gate_failures.push(format!(
                "{shards} shard(s): delta merge telemetry is not sparse \
                 (delta_bytes={}, skipped_registers={})",
                t.merge_delta_bytes.get(),
                t.merge_skipped_registers.get()
            ));
        }
        if t.merge_rebuilds.get() > 2 {
            gate_failures.push(format!(
                "{shards} shard(s): {} full merge rebuilds on a faultless run \
                 (expected 1, tolerating 2)",
                t.merge_rebuilds.get()
            ));
        }
    }

    let json = format!(
        "{{\"benchmark\":\"sharded_replay\",\"workload\":\"synflood\",\
         \"packets\":{},\"cores\":{cores},\"runs\":[{}]}}\n",
        schedule.len(),
        runs.join(",")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("emit_bench_json: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if check {
        // Sub-linear merge growth: the sparse delta path folds only the
        // cells touched during the epoch, so the 8-shard merge p50 must
        // stay well under 8x the 1-shard p50. A floor of 2048 ns on the
        // baseline keeps the ratio meaningful when single-shard merges
        // are too fast for the histogram's resolution.
        if let (Some(&Some(one)), Some(&Some(eight))) = (merge_p50.first(), merge_p50.last()) {
            let bound = 4 * one.max(2048);
            if eight >= bound {
                gate_failures.push(format!(
                    "merge p50 grew super-linearly: {eight} ns at 8 shards vs \
                     {one} ns at 1 shard (bound {bound} ns)"
                ));
            } else {
                println!("--check: merge p50 {one} ns @1 shard -> {eight} ns @8 shards (sub-linear)");
            }
        } else {
            gate_failures.push(String::from("merge_ns histogram is empty at 1 or 8 shards"));
        }
        if cores < 2 {
            println!("--check: throughput gate skipped (single core; multi-shard speedup not expected)");
        } else {
            let single = pool_pps[0];
            let best_multi = pool_pps[1..].iter().copied().fold(f64::MIN, f64::max);
            if best_multi < single {
                gate_failures.push(format!(
                    "best multi-shard throughput {best_multi:.0} pkt/s is below \
                     the 1-shard baseline {single:.0} pkt/s"
                ));
            } else {
                println!(
                    "--check: best multi-shard {best_multi:.0} pkt/s >= 1-shard {single:.0} pkt/s"
                );
            }
        }
        if !gate_failures.is_empty() {
            for f in &gate_failures {
                eprintln!("--check: FAILED — {f}");
            }
            std::process::exit(1);
        }
        println!("--check: ok — all gates passed");
    }
}
