//! End-to-end per-packet cost of the emitted pipeline programs: frame
//! parsing, the echo application, and the case-study application (its
//! two paths: mid-interval counting vs the interval-close path that
//! runs the variance + square-root chain).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use p4sim::phv::fields;
use p4sim::Phv;
use packet::builder::PacketBuilder;
use stat4_p4::{CaseStudyApp, CaseStudyParams, EchoApp, Stat4Config};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn bench_pipeline(c: &mut Criterion) {
    let frame = PacketBuilder::udp(
        Ipv4Addr::new(192, 0, 2, 1),
        Ipv4Addr::new(10, 0, 3, 4),
        4242,
        80,
    )
    .payload(&42u64.to_be_bytes())
    .build();

    c.bench_function("pipeline/parse_frame", |b| {
        b.iter(|| p4sim::parse_frame(black_box(&frame), 1, 99));
    });

    let echo = EchoApp::build(&Stat4Config::default()).expect("builds");
    c.bench_function("pipeline/echo_per_packet", |b| {
        b.iter_batched_ref(
            || echo.pipeline.clone(),
            |pipe| {
                for i in 0..64u64 {
                    let mut phv = Phv::new();
                    phv.set(fields::PAYLOAD_VALUE, i % 511);
                    pipe.process_phv(&mut phv).expect("ok");
                }
            },
            BatchSize::SmallInput,
        );
    });

    let params = CaseStudyParams::default();
    let app = CaseStudyApp::build(params).expect("builds");
    c.bench_function("pipeline/casestudy_mid_interval", |b| {
        b.iter_batched_ref(
            || app.pipeline.clone(),
            |pipe| {
                // All packets in one interval: the cheap count path.
                for i in 0..64u64 {
                    let mut phv = Phv::new();
                    phv.set(fields::TIMESTAMP_NS, 1_000_000 + i);
                    phv.set(fields::IPV4_DST, 0x0a00_0001);
                    phv.set(fields::IPV4_VALID, 1);
                    pipe.process_phv(&mut phv).expect("ok");
                }
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("pipeline/casestudy_interval_close", |b| {
        b.iter_batched_ref(
            || app.pipeline.clone(),
            |pipe| {
                // Every packet lands in a new interval: the close path
                // (variance + sqrt + window update) runs each time.
                let ivl = 1u64 << CaseStudyParams::default().interval_log2;
                for i in 0..64u64 {
                    let mut phv = Phv::new();
                    phv.set(fields::TIMESTAMP_NS, (i + 1) * ivl);
                    phv.set(fields::IPV4_DST, 0x0a00_0001);
                    phv.set(fields::IPV4_VALID, 1);
                    pipe.process_phv(&mut phv).expect("ok");
                }
            },
            BatchSize::SmallInput,
        );
    });
}

/// Short measurement windows: the suite covers many benchmarks and is
/// run wholesale by `cargo bench --workspace`; per-benchmark precision
/// matters less than overall coverage.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_pipeline
}
criterion_main!(benches);
