//! The squaring ablation (paper Sec. 2: "some hardware switches do not
//! support the squaring of values unknown at compile time … we can
//! approximate squaring by using shifting operations"): exact runtime
//! multiplication vs the one-term and refined shift approximations vs
//! the exact unrolled shift-add multiplier, plus their accuracy.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_squaring(c: &mut Criterion) {
    let inputs: Vec<u64> = (1..1025u64).map(|i| i.wrapping_mul(2654435761) % 60_000).collect();

    let mut g = c.benchmark_group("squaring");
    g.bench_function("exact_mul", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for &x in &inputs {
                let x = black_box(x);
                acc = acc.wrapping_add((x as u128) * (x as u128));
            }
            acc
        });
    });
    g.bench_function("approx_shift_one_term", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for &x in &inputs {
                acc = acc.wrapping_add(stat4_core::square::approx_square(black_box(x)));
            }
            acc
        });
    });
    g.bench_function("approx_shift_refined", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for &x in &inputs {
                acc = acc.wrapping_add(stat4_core::square::approx_square_refined(black_box(x)));
            }
            acc
        });
    });
    g.finish();

    // IR-level: exact Mul (bmv2) vs the unrolled shift-add multiplier
    // (hardware-legal). 16-bit unroll = 80 primitives.
    let mul_pipe = {
        let mut b = p4sim::ProgramBuilder::new();
        let a = b.add_action(p4sim::ActionDef::new(
            "mul",
            vec![p4sim::Primitive::Mul {
                dst: stat4_p4::scratch::SD,
                a: p4sim::Operand::Field(p4sim::phv::fields::PAYLOAD_VALUE),
                b: p4sim::Operand::Field(p4sim::phv::fields::PAYLOAD_VALUE),
            }],
        ));
        b.set_control(p4sim::Control::ApplyAction(a));
        b.build(p4sim::TargetModel::bmv2()).expect("valid")
    };
    let unrolled_pipe = {
        let mut b = p4sim::ProgramBuilder::new();
        let a = b.add_action(p4sim::ActionDef::new(
            "mul_unrolled",
            stat4_p4::fragments::mul_unrolled_primitives(
                p4sim::phv::fields::PAYLOAD_VALUE,
                p4sim::phv::fields::PAYLOAD_VALUE,
                stat4_p4::scratch::SD,
                16,
            ),
        ));
        b.set_control(p4sim::Control::ApplyAction(a));
        b.build(p4sim::TargetModel::tofino_like()).expect("valid")
    };

    let mut g = c.benchmark_group("squaring_ir");
    for (name, pipe) in [("runtime_mul", &mul_pipe), ("unrolled_16bit", &unrolled_pipe)] {
        g.bench_function(name, |bch| {
            let mut pipe = pipe.clone();
            bch.iter(|| {
                let mut acc = 0u64;
                for &x in &inputs[..64] {
                    let mut phv = p4sim::Phv::new();
                    phv.set(p4sim::phv::fields::PAYLOAD_VALUE, x);
                    pipe.process_phv(&mut phv).expect("ok");
                    acc = acc.wrapping_add(phv.get(stat4_p4::scratch::SD));
                }
                acc
            });
        });
    }
    g.finish();
}

/// Short measurement windows: the suite covers many benchmarks and is
/// run wholesale by `cargo bench --workspace`; per-benchmark precision
/// matters less than overall coverage.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_squaring
}
criterion_main!(benches);
