//! Microbenchmarks of the percentile tracker, including the
//! step-size ablation: the paper's one-step-per-packet rebalance (the
//! P4-feasible variant) against an unconstrained rebalance loop (what a
//! loop-capable target could do), quantifying what the restriction
//! costs in work per packet.

use criterion::{criterion_group, criterion_main, Criterion};
use stat4_core::percentile::{PercentileSet, PercentileTracker, Quantile};
use std::hint::black_box;

fn inputs() -> Vec<i64> {
    (0..4096i64).map(|i| (i * 131) % 1000).collect()
}

fn bench_percentile(c: &mut Criterion) {
    let values = inputs();

    let mut g = c.benchmark_group("percentile");
    g.bench_function("median_one_step_per_packet", |b| {
        b.iter(|| {
            let mut t = PercentileTracker::median(0, 999).expect("domain");
            for &v in &values {
                t.observe(black_box(v)).expect("in domain");
            }
            t.estimate()
        });
    });
    g.bench_function("median_full_rebalance_per_packet", |b| {
        b.iter(|| {
            let mut s = PercentileSet::new(0, 999, &[Quantile::median()]).expect("domain");
            for &v in &values {
                s.observe(black_box(v)).expect("in domain");
                s.rebalance_full();
            }
            s.estimate(0)
        });
    });
    g.bench_function("three_markers_shared_counts", |b| {
        let qs = [
            Quantile::percentile(10).expect("valid"),
            Quantile::median(),
            Quantile::percentile(90).expect("valid"),
        ];
        b.iter(|| {
            let mut s = PercentileSet::new(0, 999, &qs).expect("domain");
            for &v in &values {
                s.observe(black_box(v)).expect("in domain");
            }
            (s.estimate(0), s.estimate(1), s.estimate(2))
        });
    });
    g.finish();
}

/// Short measurement windows: the suite covers many benchmarks and is
/// run wholesale by `cargo bench --workspace`; per-benchmark precision
/// matters less than overall coverage.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_percentile
}
criterion_main!(benches);
