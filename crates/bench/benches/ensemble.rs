//! Per-interval cost of the detector ensemble: how much latency the
//! eight-engine panel adds to each epoch merge, and how that compares
//! to the single lifted SYN-flood engine the seed replay loop ran.
//! The merge budget is the bound that matters — detection runs on the
//! coordinator between epoch barriers, so a slow panel stretches
//! every interval.

use anomaly::{Detector, Ensemble, ScoreDrilldown, SignalContext, SynFloodEngine};
use criterion::{criterion_group, criterion_main, Criterion};
use replay::{build_ensemble, ReplayConfig};
use stat4_core::{FrequencyDist, RunningStats};
use std::hint::black_box;

/// A plausible merged interval: steady mixed traffic.
fn intervals(n: u64) -> (FrequencyDist, RunningStats) {
    let mut kinds = FrequencyDist::new(0, 3).expect("4-kind domain");
    let mut stats = RunningStats::new();
    for i in 0..n * 200 {
        let k = i64::try_from(i % 4).expect("small");
        let jitter = i64::try_from(i % 9).expect("small");
        kinds.observe(k).expect("in domain");
        stats.push(60 + jitter);
    }
    (kinds, stats)
}

fn ctx_at<'a>(
    at: u64,
    kinds: &'a FrequencyDist,
    stats: &'a RunningStats,
) -> SignalContext<'a> {
    SignalContext {
        at,
        epoch: at / 10_000_000,
        interval_ns: 10_000_000,
        spanned: 1,
        packets: 200,
        syns: 20,
        len_sum: 12_800,
        distinct_sources: 64,
        median_len: 64,
        kinds,
        len_stats: stats,
    }
}

fn bench_ensemble(c: &mut Criterion) {
    let (kinds, stats) = intervals(64);
    let mut g = c.benchmark_group("ensemble");

    g.bench_function("full_panel_interval", |b| {
        // Mirrors the coordinator's detect phase exactly: every
        // verdict also feeds the drilldown trigger, as in the replay
        // loop since provenance capture landed.
        b.iter_batched(
            || {
                let cfg = ReplayConfig::default();
                (build_ensemble(&cfg), ScoreDrilldown::new(cfg.ensemble.trigger))
            },
            |(mut ensemble, mut drill)| {
                for i in 1..=64u64 {
                    let v = ensemble.observe(black_box(&ctx_at(i * 10_000_000, &kinds, &stats)));
                    black_box(v.combined_q16);
                    black_box(drill.observe(&v));
                }
                (ensemble, drill)
            },
            criterion::BatchSize::SmallInput,
        );
    });

    g.bench_function("synflood_only_interval", |b| {
        b.iter_batched(
            || SynFloodEngine::new(ReplayConfig::default().detector),
            |mut engine| {
                for i in 1..=64u64 {
                    let r = engine.update(black_box(&ctx_at(i * 10_000_000, &kinds, &stats)));
                    black_box(r);
                }
                engine
            },
            criterion::BatchSize::SmallInput,
        );
    });

    g.bench_function("build_ensemble", |b| {
        b.iter(|| black_box(build_ensemble(&ReplayConfig::default())));
    });

    g.finish();

    // Keep the helper honest about engine count drift: the panel the
    // bench times is the panel the replay engine runs.
    assert_eq!(
        build_ensemble(&ReplayConfig::default()).names().len(),
        8,
        "ensemble panel size changed — update the bench comments"
    );
    let _ = Ensemble::new(Vec::new());
}

criterion_group!(benches, bench_ensemble);
criterion_main!(benches);
