//! Replay-engine throughput: the same SYN-flood trace replayed on 1,
//! 2, 4, and 8 shards. On a multi-core machine the sharded
//! configurations should scale toward the core count; on a single core
//! the numbers expose the engine's barrier/merge overhead instead.

use criterion::{criterion_group, criterion_main, Criterion};
use replay::{run_replay, ReplayConfig};
use std::hint::black_box;
use workloads::{Schedule, SynFloodWorkload};

fn flood_trace() -> Schedule {
    let (s, _) = SynFloodWorkload {
        background_cps: 1_000,
        flood_pps: 40_000,
        flood_start: 100_000_000,
        duration: 400_000_000,
        seed: 7,
        ..SynFloodWorkload::default()
    }
    .generate();
    s
}

fn bench_replay(c: &mut Criterion) {
    let schedule = flood_trace();
    let mut g = c.benchmark_group("replay");
    for shards in [1usize, 2, 4, 8] {
        g.bench_function(&format!("shards_{shards}"), |b| {
            b.iter(|| {
                let out = run_replay(
                    black_box(&schedule),
                    &ReplayConfig {
                        shards,
                        ..ReplayConfig::default()
                    },
                );
                black_box(out.packets)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
