//! Microbenchmarks of the moment trackers, including the paper's
//! lazy-vs-eager standard-deviation ablation (Sec. 3: "our library
//! updates the statistical measures only when a new value is added",
//! amortising the MSB scan).

use criterion::{criterion_group, criterion_main, Criterion};
use stat4_core::freq::FrequencyDist;
use stat4_core::running::RunningStats;
use stat4_core::window::WindowedDist;
use std::hint::black_box;

fn bench_moments(c: &mut Criterion) {
    let values: Vec<i64> = (0..1024i64).map(|i| (i * 37) % 1000).collect();

    let mut g = c.benchmark_group("moments");
    g.bench_function("running_stats_push", |b| {
        b.iter(|| {
            let mut s = RunningStats::new();
            for &v in &values {
                s.push(black_box(v));
            }
            s.xsum()
        });
    });
    g.bench_function("freq_dist_observe", |b| {
        b.iter(|| {
            let mut d = FrequencyDist::new(0, 999).expect("domain");
            for &v in &values {
                d.observe(black_box(v)).expect("in domain");
            }
            d.xsum()
        });
    });
    g.bench_function("windowed_close_interval", |b| {
        b.iter(|| {
            let mut w = WindowedDist::new(100).expect("window");
            for &v in &values {
                w.accumulate(black_box(v));
                w.close_interval();
            }
            w.stats().xsum()
        });
    });
    g.finish();

    // Lazy vs eager sigma: push 1024 values; eager recomputes sd on
    // every push, lazy only at the end (the paper's design point: reads
    // are far rarer than updates).
    let mut g = c.benchmark_group("sigma_ablation");
    g.bench_function("eager_sd_every_push", |b| {
        b.iter(|| {
            let mut s = RunningStats::new();
            let mut acc = 0u64;
            for &v in &values {
                s.push(black_box(v));
                acc = acc.wrapping_add(s.sd_nx());
            }
            acc
        });
    });
    g.bench_function("lazy_sd_on_read", |b| {
        b.iter(|| {
            let mut s = RunningStats::new();
            for &v in &values {
                s.push(black_box(v));
            }
            s.sd_nx()
        });
    });
    g.bench_function("cached_sd_mixed_reads", |b| {
        b.iter(|| {
            let mut s = RunningStats::new();
            let mut acc = 0u64;
            for (i, &v) in values.iter().enumerate() {
                s.push(black_box(v));
                if i % 16 == 0 {
                    acc = acc.wrapping_add(s.sd_cached());
                }
            }
            acc
        });
    });
    g.finish();
}

/// Short measurement windows: the suite covers many benchmarks and is
/// run wholesale by `cargo bench --workspace`; per-benchmark precision
/// matters less than overall coverage.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_moments
}
criterion_main!(benches);
