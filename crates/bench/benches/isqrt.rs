//! Microbenchmarks of the square-root primitives: the paper's
//! shift-based approximation against the exact integer root and the
//! hardware float root, plus the full pipeline-IR realisation (whose
//! cost includes the 7-step MSB if-cascade the paper worries about and
//! amortises with lazy evaluation).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_isqrt(c: &mut Criterion) {
    let inputs: Vec<u64> = (0..1024u64).map(|i| i.wrapping_mul(0x9e37_79b9) % 1_000_000).collect();

    let mut g = c.benchmark_group("isqrt");
    g.bench_function("approx_shift_based", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &x in &inputs {
                acc = acc.wrapping_add(stat4_core::isqrt::approx_isqrt(black_box(x)));
            }
            acc
        });
    });
    g.bench_function("exact_digit_by_digit", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &x in &inputs {
                acc = acc.wrapping_add(stat4_core::isqrt::exact_isqrt(black_box(x)));
            }
            acc
        });
    });
    g.bench_function("f64_sqrt_floor", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &x in &inputs {
                acc = acc.wrapping_add((black_box(x) as f64).sqrt() as u64);
            }
            acc
        });
    });
    g.finish();

    // The IR realisation on the simulated pipeline.
    let mut b = p4sim::ProgramBuilder::new();
    let frag = stat4_p4::fragments::isqrt_fragment(
        &mut b,
        p4sim::phv::fields::PAYLOAD_VALUE,
        stat4_p4::scratch::SD,
    );
    b.set_control(frag);
    let pipe = b.build(p4sim::TargetModel::bmv2()).expect("valid program");

    c.bench_function("isqrt/pipeline_ir", |bch| {
        bch.iter_batched_ref(
            || pipe.clone(),
            |pipe| {
                let mut acc = 0u64;
                for &x in &inputs[..64] {
                    let mut phv = p4sim::Phv::new();
                    phv.set(p4sim::phv::fields::PAYLOAD_VALUE, x);
                    pipe.process_phv(&mut phv).expect("ok");
                    acc = acc.wrapping_add(phv.get(stat4_p4::scratch::SD));
                }
                acc
            },
            BatchSize::SmallInput,
        );
    });
}

/// Short measurement windows: the suite covers many benchmarks and is
/// run wholesale by `cargo bench --workspace`; per-benchmark precision
/// matters less than overall coverage.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_isqrt
}
criterion_main!(benches);
