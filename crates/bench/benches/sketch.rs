//! Microbenchmarks of the sparse-domain primitives: count-min update
//! policies (portable and in-pipeline) and the EWMA/CUSUM streaming
//! detectors.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use p4sim::phv::fields;
use p4sim::Phv;
use stat4_core::cusum::CusumDetector;
use stat4_core::ewma::Ewma;
use stat4_core::sketch::CountMinSketch;
use stat4_p4::{SketchApp, SketchAppParams};
use std::hint::black_box;

fn bench_sketch(c: &mut Criterion) {
    let keys: Vec<u64> = (0..1024u64).map(|i| i.wrapping_mul(2654435761) % 4096).collect();

    let mut g = c.benchmark_group("sketch");
    g.bench_function("plain_update", |b| {
        b.iter(|| {
            let mut s = CountMinSketch::new(4, 10);
            for &k in &keys {
                s.update(black_box(k), 1);
            }
            s.total()
        });
    });
    g.bench_function("conservative_update", |b| {
        b.iter(|| {
            let mut s = CountMinSketch::new(4, 10);
            for &k in &keys {
                s.update_conservative(black_box(k), 1);
            }
            s.total()
        });
    });
    g.bench_function("estimate", |b| {
        let mut s = CountMinSketch::new(4, 10);
        for &k in &keys {
            s.update(k, 1);
        }
        b.iter(|| {
            let mut acc = 0u64;
            for &k in &keys {
                acc = acc.wrapping_add(s.estimate(black_box(k)));
            }
            acc
        });
    });
    g.finish();

    let app = SketchApp::build(SketchAppParams::default()).expect("builds");
    c.bench_function("sketch/pipeline_per_packet", |b| {
        b.iter_batched_ref(
            || app.pipeline.clone(),
            |pipe| {
                for &k in &keys[..64] {
                    let mut phv = Phv::new();
                    phv.set(fields::IPV4_DST, k);
                    pipe.process_phv(&mut phv).expect("ok");
                }
            },
            BatchSize::SmallInput,
        );
    });

    let mut g = c.benchmark_group("streaming_detectors");
    g.bench_function("ewma_update", |b| {
        b.iter(|| {
            let mut e = Ewma::new(4);
            for &k in &keys {
                e.update(black_box(k as i64));
            }
            e.value()
        });
    });
    g.bench_function("cusum_observe", |b| {
        b.iter(|| {
            let mut d = CusumDetector::new(2048, 64, 10_000);
            let mut alarms = 0u64;
            for &k in &keys {
                alarms += u64::from(d.observe(black_box(k as i64)));
            }
            alarms
        });
    });
    g.finish();
}

/// Short measurement windows: the suite covers many benchmarks and is
/// run wholesale by `cargo bench --workspace`; per-benchmark precision
/// matters less than overall coverage.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_sketch
}
criterion_main!(benches);
