//! Asserted accuracy tests for the paper's Table 2 and Table 3 — the
//! checked counterparts of the print-only `repro_table2` /
//! `repro_table3` binaries (which keep the full human-readable sweep).
//!
//! Two layers of claims are pinned:
//!
//! 1. **Controller-side refinement meets the paper's numbers.** The
//!    paper's upper-decade Table 2 errors (≤ 0.01%) are unreachable by
//!    any integer-*output* variant of the Figure 2 shift algorithm (see
//!    EXPERIMENTS.md) — they require fractional resolution. The Q16
//!    Newton refinement (`refined_sqrt_q16`), which models the control
//!    plane recomputing σ from exported sums, is asserted against the
//!    ISSUE bounds: median error ≤ 3.8% on y ∈ [10,100] and ≤ 0.01% on
//!    y ∈ [1000,10000].
//! 2. **The data-plane approximation stays inside its documented
//!    envelope.** The exhaustive per-decade sweep is deterministic, so
//!    regressions in the shift algorithm show up as exact threshold
//!    crossings.
//!
//! Table 3 is asserted on the paper's own qualitative claim — "always
//! ≤ 1%, except early in our simulations, when distributions are
//! sparse": tight bounds after the distribution fills in (N/2 samples),
//! loose sanity bounds on the sparse warm-up phase.

use bench::{max_f64, median_error_run, percentile_f64};
use stat4_core::isqrt::{approx_error_percent, approx_isqrt, refined_error_percent};

// ---------------------------------------------------------------- Table 2

#[test]
fn table2_refined_sqrt_meets_paper_bounds() {
    let low: Vec<f64> = (10..=100).map(refined_error_percent).collect();
    let high: Vec<f64> = (1000..=10_000).map(refined_error_percent).collect();
    let low_median = percentile_f64(&low, 50.0);
    let high_median = percentile_f64(&high, 50.0);
    assert!(
        low_median <= 3.8,
        "median error on [10,100] is {low_median:.4}% (bound 3.8%)"
    );
    assert!(
        high_median <= 0.01,
        "median error on [1000,10000] is {high_median:.6}% (bound 0.01%)"
    );
    // The refinement converges to fixed-point resolution, so even the
    // worst case of the upper decade sits under the paper's 0.05% max.
    assert!(
        max_f64(&high) <= 0.05,
        "max error on [1000,10000] is {:.6}%",
        max_f64(&high)
    );
}

#[test]
fn table2_switch_approx_within_documented_envelope() {
    // (lo, hi, p50 bound, p90 bound, max bound) — the measured envelope
    // of the shift-based data-plane approximation (repro_table2 prints
    // the exact values); the sweep is exhaustive and deterministic.
    let rows: [(u64, u64, f64, f64, f64); 4] = [
        (1, 10, 6.5, 30.0, 42.5),
        (10, 100, 5.5, 12.0, 23.0),
        (100, 1000, 2.0, 4.5, 6.5),
        (1000, 10_000, 2.0, 5.0, 6.5),
    ];
    for (lo, hi, p50, p90, max) in rows {
        let errs: Vec<f64> = (lo..=hi).map(approx_error_percent).collect();
        let m50 = percentile_f64(&errs, 50.0);
        let m90 = percentile_f64(&errs, 90.0);
        let mmax = max_f64(&errs);
        assert!(m50 <= p50, "[{lo},{hi}] p50 {m50:.3}% > {p50}%");
        assert!(m90 <= p90, "[{lo},{hi}] p90 {m90:.3}% > {p90}%");
        assert!(mmax <= max, "[{lo},{hi}] max {mmax:.3}% > {max}%");
    }
}

#[test]
fn table2_figure2_worked_example() {
    assert_eq!(approx_isqrt(106), 10, "paper Figure 2: √106 ≈ 10");
}

#[test]
fn table2_approx_exact_on_even_powers_of_two() {
    for k in 0..=31u32 {
        assert_eq!(approx_isqrt(1u64 << (2 * k)), 1u64 << k);
    }
}

// ---------------------------------------------------------------- Table 3

#[test]
fn table3_median_tracker_within_bounds() {
    // (N, samples, steady-state p90 bound from the paper's Table 3
    // "after" column, with headroom for the smaller repetition count)
    let rows: [(i64, usize, f64); 3] = [
        (100, 2_000, 1.0),
        (1_000, 8_000, 0.1),
        (65_536, 120_000, 0.02),
    ];
    const REPS: u64 = 5;
    for (n, samples, after_p90_bound) in rows {
        let mut before = Vec::new();
        let mut after = Vec::new();
        for rep in 0..REPS {
            let (b, a) = median_error_run(n, samples, 1000 + rep);
            before.extend(b);
            after.extend(a);
        }
        let a50 = percentile_f64(&after, 50.0);
        let a90 = percentile_f64(&after, 90.0);
        let b90 = percentile_f64(&before, 90.0);
        assert!(
            a50 <= 0.05,
            "N={n}: steady-state median error {a50:.4}% (paper: 0%)"
        );
        assert!(
            a90 <= after_p90_bound,
            "N={n}: steady-state p90 error {a90:.4}% > {after_p90_bound}%"
        );
        // Sparse warm-up phase: the paper reports up to ~35% at p90;
        // with few repetitions the phase holds only N/2 samples each,
        // so sanity-bound it loosely rather than pinning a noisy value.
        assert!(b90 <= 50.0, "N={n}: warm-up p90 error {b90:.2}%");
    }
}
