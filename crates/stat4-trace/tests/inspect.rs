//! End-to-end inspector coverage: run a real (chaotic) replay, render
//! the artifacts exactly as the CLI flags do, and drive every
//! inspector view over them — the same path CI's trace smoke exercises
//! through the binaries.

use faultinject::FaultSchedule;
use replay::{parse_outcome_json, render_outcome_json, run_replay_with_faults, ReplayConfig};
use stat4_trace::{explain, flame, flame_rows, timeline, thread_name};
use telemetry::{check_trace, parse_trace, COORDINATOR_TID};
use workloads::{Schedule, SynFloodWorkload};

fn flood() -> Schedule {
    let (s, _) = SynFloodWorkload {
        background_cps: 500,
        flood_pps: 20_000,
        flood_start: 150_000_000,
        duration: 400_000_000,
        seed: 11,
        ..SynFloodWorkload::default()
    }
    .generate();
    s
}

#[test]
fn chaos_run_artifacts_survive_every_inspector_view() {
    let s = flood();
    let cfg = ReplayConfig {
        shards: 4,
        ..ReplayConfig::default()
    };
    let faults =
        FaultSchedule::parse("shard_crash=1@3,ctrl_loss=0.30", 42).expect("valid chaos spec");
    let out = run_replay_with_faults(&s, &cfg, &faults);

    // The trace must validate and carry spans from the coordinator and
    // every live shard.
    let trace_text = out.telemetry.merged_trace().to_chrome_json();
    let summary = check_trace(&trace_text).expect("merged chaos trace validates");
    assert!(summary.spans > 0, "no spans in {summary:?}");
    let doc = parse_trace(&trace_text).expect("parses");
    let mut tids: Vec<u64> = doc.events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(
        tids.contains(&u64::from(COORDINATOR_TID)),
        "coordinator missing from {tids:?}"
    );
    for shard in 0..cfg.shards as u64 {
        if shard == 1 {
            continue; // crashed at epoch 3 — may or may not have traced
        }
        assert!(tids.contains(&shard), "shard {shard} missing from {tids:?}");
    }

    // Timeline and flamegraph render the same document.
    let tl = timeline(&doc);
    assert!(tl.contains("coordinator"), "{tl}");
    assert!(tl.contains(&thread_name(0)), "{tl}");
    assert!(tl.contains("▶ ingest"), "{tl}");
    let fl = flame(&doc);
    assert!(fl.contains("ingest"), "{fl}");
    let rows = flame_rows(&doc);
    for r in &rows {
        assert!(r.self_ns <= r.total_ns, "self exceeds total in {r:?}");
    }
    assert!(
        rows.iter()
            .any(|r| r.name == "barrier" && r.tid == u64::from(COORDINATOR_TID)),
        "coordinator barrier span missing from flame rows"
    );

    // The snapshot round-trips and explains its first alert.
    assert!(
        !out.provenance.is_empty(),
        "the flood must leave at least one provenance record"
    );
    let snap_text = render_outcome_json(&out);
    let snap = parse_outcome_json(&snap_text).expect("snapshot parses");
    let story = explain(&snap, out.provenance[0].id).expect("first alert explains");
    assert!(story.contains("FIRED"), "{story}");
    assert!(story.contains("score"), "{story}");
    assert!(story.contains("lineage"), "{story}");
    assert!(
        story.contains("quarantined at epoch"),
        "chaos quarantine missing from: {story}"
    );

    // Asking for an alert that never fired names the ones that did.
    let err = explain(&snap, 9_999).expect_err("bogus id must fail");
    assert!(err.contains("no alert 9999"), "{err}");
}

#[test]
fn clean_run_explain_reports_full_lineage() {
    let s = flood();
    let cfg = ReplayConfig {
        shards: 2,
        ..ReplayConfig::default()
    };
    let out = run_replay_with_faults(&s, &cfg, &FaultSchedule::none());
    assert!(!out.provenance.is_empty());
    let snap = parse_outcome_json(&render_outcome_json(&out)).expect("snapshot parses");
    let story = explain(&snap, 0).expect("alert 0 explains");
    assert!(
        story.contains("assembled from 2 shard(s)"),
        "clean run must deliver every shard: {story}"
    );
    assert!(
        story.contains("no shards quarantined"),
        "clean run has no incidents: {story}"
    );
}
