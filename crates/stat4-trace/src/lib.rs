//! Run inspector for the replay engine's observability artifacts.
//!
//! A replay run leaves two files behind: the merged Chrome-trace
//! document (`--trace-out`) and the deterministic run snapshot
//! (`--snapshot-out`). This crate renders both for humans:
//!
//! - [`timeline`] — every span open/close and instant, one line per
//!   event, indented by nesting depth per thread;
//! - [`flame`] — a folded flamegraph table: per `(thread, span)` call
//!   count, total time, and self time (total minus nested children);
//! - [`explain`] — the full provenance story of one alert: which
//!   engines fired at what score against what threshold, the signal
//!   values the ensemble saw, the epoch's lineage (delivered shards,
//!   carried epochs, quarantines, reroutes), and any drilldown rebind
//!   transactions the alert triggered.
//!
//! Validation itself lives in [`telemetry::check_trace`]; the
//! `stat4-trace check` subcommand is a thin wrapper over it.

use std::collections::HashMap;
use std::fmt::Write as _;

use replay::{LifecycleReport, RunSnapshot};
use telemetry::{TraceDoc, COORDINATOR_TID};

/// Q16 fixed-point unit — matches the anomaly crate's scale.
const Q16: i64 = 1 << 16;

/// Human name for a recording thread id.
#[must_use]
pub fn thread_name(tid: u64) -> String {
    if tid == u64::from(COORDINATOR_TID) {
        String::from("coordinator")
    } else {
        format!("shard {tid}")
    }
}

/// Renders nanoseconds with a readable unit (ns, µs, ms, or s).
#[must_use]
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{}.{:01}µs", ns / 1_000, (ns % 1_000) / 100)
    } else if ns < 1_000_000_000 {
        format!("{}.{:03}ms", ns / 1_000_000, (ns % 1_000_000) / 1_000)
    } else {
        format!("{}.{:03}s", ns / 1_000_000_000, (ns % 1_000_000_000) / 1_000_000)
    }
}

/// Q16 fixed-point value rendered as a decimal with three places.
#[must_use]
pub fn fmt_q16(v: i64) -> String {
    let sign = if v < 0 { "-" } else { "" };
    let abs = v.unsigned_abs();
    let scaled = (abs * 1000 + (1 << 15)) >> 16;
    format!("{sign}{}.{:03}", scaled / 1000, scaled % 1000)
}

/// One line per trace event, in document order, indented by the
/// recording thread's span nesting depth at that point.
#[must_use]
pub fn timeline(doc: &TraceDoc) -> String {
    let mut out = String::new();
    let mut depth: HashMap<u64, usize> = HashMap::new();
    let mut opened_at: HashMap<u64, Vec<u64>> = HashMap::new();
    for ev in &doc.events {
        let d = depth.entry(ev.tid).or_insert(0);
        match ev.phase.as_str() {
            "B" => {
                let indent = "  ".repeat(*d);
                let _ = writeln!(
                    out,
                    "{:>12}  {:<12} {indent}▶ {} epoch {}",
                    fmt_ns(ev.ts),
                    thread_name(ev.tid),
                    ev.name,
                    ev.epoch,
                );
                *d += 1;
                opened_at.entry(ev.tid).or_default().push(ev.ts);
            }
            "E" => {
                *d = d.saturating_sub(1);
                let started = opened_at.entry(ev.tid).or_default().pop();
                let dur = started.map_or_else(String::new, |s| {
                    format!(" ({})", fmt_ns(ev.ts.saturating_sub(s)))
                });
                let indent = "  ".repeat(*d);
                let _ = writeln!(
                    out,
                    "{:>12}  {:<12} {indent}◀ {} epoch {}{dur}",
                    fmt_ns(ev.ts),
                    thread_name(ev.tid),
                    ev.name,
                    ev.epoch,
                );
            }
            _ => {
                let indent = "  ".repeat(*d);
                let _ = writeln!(
                    out,
                    "{:>12}  {:<12} {indent}· {} epoch {}",
                    fmt_ns(ev.ts),
                    thread_name(ev.tid),
                    ev.name,
                    ev.epoch,
                );
            }
        }
    }
    if doc.dropped > 0 {
        let _ = writeln!(out, "(… {} event(s) dropped at the buffer cap)", doc.dropped);
    }
    out
}

/// Aggregate row of [`flame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlameRow {
    /// Recording thread.
    pub tid: u64,
    /// Span name.
    pub name: String,
    /// Completed spans with this name on this thread.
    pub calls: u64,
    /// Wall time inside the span, children included.
    pub total_ns: u64,
    /// Wall time inside the span, children excluded.
    pub self_ns: u64,
}

/// Folds completed spans into per-`(thread, name)` totals with self
/// time (total minus the time spent in nested child spans). Unclosed
/// spans and instants contribute nothing.
#[must_use]
pub fn flame_rows(doc: &TraceDoc) -> Vec<FlameRow> {
    // Per-thread stack of (name, start_ts, time eaten by children).
    let mut stacks: HashMap<u64, Vec<(String, u64, u64)>> = HashMap::new();
    let mut agg: HashMap<(u64, String), (u64, u64, u64)> = HashMap::new();
    for ev in &doc.events {
        let stack = stacks.entry(ev.tid).or_default();
        match ev.phase.as_str() {
            "B" => stack.push((ev.name.clone(), ev.ts, 0)),
            "E" => {
                if let Some((name, start, child_ns)) = stack.pop() {
                    let total = ev.ts.saturating_sub(start);
                    let entry = agg.entry((ev.tid, name)).or_insert((0, 0, 0));
                    entry.0 += 1;
                    entry.1 += total;
                    entry.2 += total.saturating_sub(child_ns);
                    if let Some(parent) = stack.last_mut() {
                        parent.2 += total;
                    }
                }
            }
            _ => {}
        }
    }
    let mut rows: Vec<FlameRow> = agg
        .into_iter()
        .map(|((tid, name), (calls, total_ns, self_ns))| FlameRow {
            tid,
            name,
            calls,
            total_ns,
            self_ns,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.self_ns
            .cmp(&a.self_ns)
            .then(a.tid.cmp(&b.tid))
            .then(a.name.cmp(&b.name))
    });
    rows
}

/// Renders [`flame_rows`] as an aligned table, hottest self time
/// first.
#[must_use]
pub fn flame(doc: &TraceDoc) -> String {
    let rows = flame_rows(doc);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<16} {:>7} {:>12} {:>12}",
        "thread", "span", "calls", "total", "self"
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "{:<12} {:<16} {:>7} {:>12} {:>12}",
            thread_name(r.tid),
            r.name,
            r.calls,
            fmt_ns(r.total_ns),
            fmt_ns(r.self_ns),
        );
    }
    if rows.is_empty() {
        let _ = writeln!(out, "(no completed spans in this trace)");
    }
    out
}

/// Renders the provenance story of alert `id` from a run snapshot.
///
/// # Errors
///
/// When the snapshot holds no record with that id — the message lists
/// the ids that do exist.
pub fn explain(snap: &RunSnapshot, id: u64) -> Result<String, String> {
    let Some(rec) = snap.provenance.iter().find(|r| r.id == id) else {
        let have: Vec<String> = snap.provenance.iter().map(|r| r.id.to_string()).collect();
        return Err(if have.is_empty() {
            String::from("this run fired no alerts, so there is nothing to explain")
        } else {
            format!("no alert {id} in this run (have: {})", have.join(", "))
        });
    };
    let p = &rec.provenance;
    let l = &rec.lineage;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "alert {} — epoch {} at {}",
        rec.id,
        p.epoch,
        fmt_ns(p.at)
    );
    let _ = writeln!(out, "cause: {}", describe_cause(&p.cause));
    let _ = writeln!(
        out,
        "combined ensemble score: {} (Q16 {}, trigger unit {Q16})",
        fmt_q16(p.combined_q16),
        p.combined_q16
    );
    let _ = writeln!(out, "engines at fire time:");
    for e in &p.engines {
        let verdict = if e.fired { "FIRED" } else { "quiet" };
        let _ = writeln!(
            out,
            "  {:>12}  {verdict:<5} score {} vs threshold {}  (confidence {}, weight {}, expected {}, observed {})",
            e.engine,
            fmt_q16(e.score),
            fmt_q16(e.threshold_q16),
            fmt_q16(e.confidence),
            fmt_q16(e.weight),
            e.expected,
            e.observed,
        );
    }
    let s = &p.signals;
    let _ = writeln!(
        out,
        "signals: {} packet(s), {} syn(s), {} distinct source(s), median len {} B over {} interval(s)",
        s.packets, s.syns, s.distinct_sources, s.median_len, s.spanned,
    );
    let _ = writeln!(
        out,
        "lineage: epoch {} assembled from {} shard(s) {:?}",
        l.epoch,
        l.delivered_shards.len(),
        l.delivered_shards,
    );
    if l.carried_epochs.is_empty() {
        let _ = writeln!(out, "  no carry-forward: every earlier epoch was delivered");
    } else {
        let _ = writeln!(
            out,
            "  carried forward from {} undelivered epoch(s): {:?}",
            l.carried_epochs.len(),
            l.carried_epochs,
        );
    }
    if l.rerouted_frames > 0 {
        let _ = writeln!(
            out,
            "  {} frame(s) rerouted around quarantined shards this epoch",
            l.rerouted_frames
        );
    }
    if l.quarantined.is_empty() {
        let _ = writeln!(out, "  no shards quarantined before this alert");
    } else {
        for q in &l.quarantined {
            let _ = writeln!(
                out,
                "  shard {} quarantined at epoch {}: {}",
                q.shard, q.epoch, q.detail
            );
        }
    }
    if rec.drilldown.is_empty() {
        let _ = writeln!(out, "drilldown: no rebind transactions");
    } else {
        let _ = writeln!(
            out,
            "drilldown: {} rebind transaction(s)",
            rec.drilldown.len()
        );
        for t in &rec.drilldown {
            let _ = writeln!(
                out,
                "  gen {} at {}: {} -> {} ({} bind(s), cause {})",
                t.generation,
                fmt_ns(t.at),
                t.from_phase,
                t.to_phase,
                t.binds,
                describe_cause(&t.cause),
            );
        }
    }
    Ok(out)
}

/// Renders a replay lifecycle report (`--lifecycle-out`) as a short
/// narrative: where the run resumed from, every checkpoint, every swap
/// verdict, the kill point, and the closing generation tally.
#[must_use]
pub fn lifecycle_story(report: &LifecycleReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "lifecycle:");
    if report.events.is_empty() {
        let _ = writeln!(out, "  quiet run: no lifecycle events");
    }
    for ev in &report.events {
        let line = match ev.kind.as_str() {
            "resumed" => format!("resumed ({})", ev.detail),
            "checkpoint_written" => format!("checkpoint written ({})", ev.detail),
            "checkpoint_error" => format!("checkpoint FAILED ({})", ev.detail),
            "checkpoint_fallback" => format!("fell back past a bad checkpoint ({})", ev.detail),
            "killed" => format!("killed ({})", ev.detail),
            "swap_committed" => format!("swap committed ({})", ev.detail),
            "swap_rejected" => format!("swap REJECTED: {}", ev.detail),
            "stale_swap_rejected" => format!("stale swap rejected: {}", ev.detail),
            "shed_level" => format!("telemetry shed level changed ({})", ev.detail),
            other => format!("{other}: {}", ev.detail),
        };
        let _ = writeln!(out, "  epoch {:>4}  {line}", ev.epoch);
    }
    let _ = writeln!(
        out,
        "  summary: generation {}, {} checkpoint(s) written, {} swap(s) committed, {} rejected{}",
        report.generation,
        report.checkpoints_written,
        report.swaps_committed,
        report.swaps_rejected,
        match report.resumed_from {
            Some(ord) => format!(", resumed from checkpoint {ord}"),
            None => String::new(),
        },
    );
    out
}

fn describe_cause(c: &anomaly::TriggerCause) -> String {
    match c {
        anomaly::TriggerCause::EnginesFired(names) => {
            format!("engine(s) fired: {}", names.join(", "))
        }
        anomaly::TriggerCause::CombinedScore {
            combined_q16,
            threshold_q16,
        } => format!(
            "combined score {} crossed threshold {}",
            fmt_q16(*combined_q16),
            fmt_q16(*threshold_q16)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::check::TraceRecord;

    fn rec(name: &str, phase: &str, ts: u64, tid: u64, epoch: u64) -> TraceRecord {
        TraceRecord {
            name: name.to_string(),
            phase: phase.to_string(),
            ts,
            tid,
            epoch,
        }
    }

    #[test]
    fn fmt_ns_picks_readable_units() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(2_500), "2.5µs");
        assert_eq!(fmt_ns(3_042_000), "3.042ms");
        assert_eq!(fmt_ns(1_250_000_000), "1.250s");
    }

    #[test]
    fn fmt_q16_rounds_to_three_places() {
        assert_eq!(fmt_q16(1 << 16), "1.000");
        assert_eq!(fmt_q16(3 << 15), "1.500");
        assert_eq!(fmt_q16(-(1 << 15)), "-0.500");
        assert_eq!(fmt_q16(0), "0.000");
    }

    #[test]
    fn thread_names_distinguish_coordinator() {
        assert_eq!(thread_name(u64::from(COORDINATOR_TID)), "coordinator");
        assert_eq!(thread_name(2), "shard 2");
    }

    #[test]
    fn flame_attributes_self_time_to_the_innermost_span() {
        // ingest [0, 100] wraps barrier [10, 60]: ingest self = 50.
        let doc = TraceDoc {
            events: vec![
                rec("ingest", "B", 0, 7, 0),
                rec("barrier", "B", 10, 7, 0),
                rec("barrier", "E", 60, 7, 0),
                rec("ingest", "E", 100, 7, 0),
            ],
            dropped: 0,
        };
        let rows = flame_rows(&doc);
        let ingest = rows.iter().find(|r| r.name == "ingest").unwrap();
        assert_eq!((ingest.calls, ingest.total_ns, ingest.self_ns), (1, 100, 50));
        let barrier = rows.iter().find(|r| r.name == "barrier").unwrap();
        assert_eq!((barrier.calls, barrier.total_ns, barrier.self_ns), (1, 50, 50));
    }

    #[test]
    fn timeline_indents_nested_spans_and_reports_drops() {
        let doc = TraceDoc {
            events: vec![
                rec("ingest", "B", 0, 0, 3),
                rec("alert", "i", 5, 0, 3),
                rec("ingest", "E", 10, 0, 3),
            ],
            dropped: 2,
        };
        let text = timeline(&doc);
        assert!(text.contains("▶ ingest epoch 3"), "{text}");
        assert!(text.contains("  · alert epoch 3"), "instant indented: {text}");
        assert!(text.contains("◀ ingest epoch 3 (10ns)"), "{text}");
        assert!(text.contains("2 event(s) dropped"), "{text}");
    }
}
