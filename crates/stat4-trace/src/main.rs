//! `stat4-trace` — inspect the artifacts a replay run writes.
//!
//! ```text
//! stat4-trace check     <trace.json>
//! stat4-trace timeline  <trace.json>
//! stat4-trace flame     <trace.json>
//! stat4-trace explain   <run.json> <alert-id> [lifecycle.json]
//! stat4-trace lifecycle <lifecycle.json>
//! ```
//!
//! `check` validates the merged Chrome-trace document (phase codes,
//! per-thread timestamp monotonicity, balanced span nesting) and
//! prints a one-line summary. `timeline` and `flame` render the same
//! document for humans. `explain` reads a `--snapshot-out` run
//! snapshot and tells the full story of one alert: the engines that
//! fired, their scores against their thresholds, the signal values,
//! the epoch's lineage, and any drilldown rebind transactions — and
//! with an optional `--lifecycle-out` report appended, the run's
//! checkpoint/swap/recovery history around it. `lifecycle` renders
//! that history on its own.
//!
//! Exit status is non-zero on invalid input or failed validation.

use std::process::ExitCode;

use replay::LifecycleReport;
use stat4_trace::{explain, flame, lifecycle_story, timeline};
use telemetry::{check_trace, parse_trace};

const USAGE: &str = "usage: stat4-trace check     <trace.json>\n\
     \x20      stat4-trace timeline  <trace.json>\n\
     \x20      stat4-trace flame     <trace.json>\n\
     \x20      stat4-trace explain   <run.json> <alert-id> [lifecycle.json]\n\
     \x20      stat4-trace lifecycle <lifecycle.json>";

fn read_or_die(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn run(args: &[String]) -> Result<String, String> {
    match args {
        [cmd, path] if cmd == "check" => {
            let text = read_or_die(path)?;
            match check_trace(&text) {
                Ok(s) => Ok(format!(
                    "ok: {} event(s), {} thread(s), {} span(s), {} dropped",
                    s.events, s.threads, s.spans, s.dropped
                )),
                Err(errors) => Err(format!(
                    "trace {path} is invalid:\n  {}",
                    errors.join("\n  ")
                )),
            }
        }
        [cmd, path] if cmd == "timeline" || cmd == "flame" => {
            let text = read_or_die(path)?;
            let doc = parse_trace(&text)
                .map_err(|errors| format!("trace {path} is invalid:\n  {}", errors.join("\n  ")))?;
            Ok(if cmd == "timeline" {
                timeline(&doc)
            } else {
                flame(&doc)
            })
        }
        [cmd, path, id, rest @ ..] if cmd == "explain" && rest.len() <= 1 => {
            let id: u64 = id
                .parse()
                .map_err(|_| format!("alert id must be a number, got {id:?}"))?;
            let text = read_or_die(path)?;
            let snap = replay::parse_outcome_json(&text)
                .map_err(|e| format!("snapshot {path} is invalid: {e}"))?;
            let mut out = explain(&snap, id)?;
            if let Some(lc_path) = rest.first() {
                let lc_text = read_or_die(lc_path)?;
                let report = LifecycleReport::parse(&lc_text)
                    .map_err(|e| format!("lifecycle report {lc_path} is invalid: {e}"))?;
                out.push_str(&lifecycle_story(&report));
            }
            Ok(out)
        }
        [cmd, path] if cmd == "lifecycle" => {
            let text = read_or_die(path)?;
            let report = LifecycleReport::parse(&text)
                .map_err(|e| format!("lifecycle report {path} is invalid: {e}"))?;
            Ok(lifecycle_story(&report))
        }
        [help] if help == "--help" || help == "-h" => Ok(String::from(USAGE)),
        _ => Err(String::from(USAGE)),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(out) => {
            print!("{out}");
            if !out.ends_with('\n') {
                println!();
            }
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("stat4-trace: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(args: &[&str]) -> Result<String, String> {
        let owned: Vec<String> = args.iter().map(ToString::to_string).collect();
        run(&owned)
    }

    #[test]
    fn usage_on_bad_invocations() {
        assert!(call(&[]).unwrap_err().contains("usage"));
        assert!(call(&["frobnicate", "x.json"]).unwrap_err().contains("usage"));
        assert!(call(&["explain", "x.json"]).unwrap_err().contains("usage"));
        assert_eq!(call(&["--help"]).unwrap(), USAGE);
    }

    #[test]
    fn explain_rejects_non_numeric_id() {
        let err = call(&["explain", "run.json", "first"]).unwrap_err();
        assert!(err.contains("must be a number"), "{err}");
    }

    #[test]
    fn missing_file_is_a_readable_error() {
        let err = call(&["check", "/nonexistent/trace.json"]).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn lifecycle_subcommand_renders_a_report() {
        let mut report = LifecycleReport::default();
        report.push(3, "swap_committed", String::from("generation 1: program verified equivalent"));
        report.push(5, "killed", String::from("stopped at drain point before epoch ordinal 5"));
        report.swaps_committed = 1;
        report.generation = 1;
        let path = std::env::temp_dir().join("stat4-trace-lifecycle-test.json");
        std::fs::write(&path, report.to_json()).unwrap();
        let out = call(&["lifecycle", path.to_str().unwrap()]).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("swap committed"), "{out}");
        assert!(out.contains("killed"), "{out}");
        assert!(out.contains("generation 1"), "{out}");
    }

    #[test]
    fn lifecycle_subcommand_rejects_garbage() {
        let path = std::env::temp_dir().join("stat4-trace-lifecycle-garbage.json");
        std::fs::write(&path, "not json at all").unwrap();
        let err = call(&["lifecycle", path.to_str().unwrap()]).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("is invalid"), "{err}");
    }
}
