//! Property tests for the pipeline substrate: table lookup semantics
//! against a naive reference, parser round-trips against the builder,
//! and interpreter determinism on random straight-line programs.

use p4sim::action::{ActionDef, Operand, Primitive};
use p4sim::control::Control;
use p4sim::phv::{fields, Phv};
use p4sim::table::{Entry, MatchKind, MatchValue, Table, TableDef};
use p4sim::{ProgramBuilder, TargetModel};
use packet::builder::PacketBuilder;
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Naive reference for LPM: scan all entries, keep the longest matching
/// prefix.
fn lpm_reference(entries: &[(u32, u8)], key: u32) -> Option<usize> {
    let mut best: Option<(usize, u8)> = None;
    for (i, &(value, plen)) in entries.iter().enumerate() {
        let matches = if plen == 0 {
            true
        } else {
            let shift = 32 - u32::from(plen);
            (key >> shift) == (value >> shift)
        };
        if matches && best.is_none_or(|(_, bp)| plen > bp) {
            best = Some((i, plen));
        }
    }
    best.map(|(i, _)| i)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The table's LPM winner always equals the reference scan.
    #[test]
    fn lpm_lookup_matches_reference(
        entries in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..20),
        keys in proptest::collection::vec(any::<u32>(), 1..50),
    ) {
        let mut t = Table::new(TableDef {
            name: "lpm".into(),
            keys: vec![(fields::IPV4_DST, MatchKind::Lpm { width: 32 })],
            max_entries: 64,
            allowed_actions: (0..entries.len()).collect(),
            default_action: None,
        });
        for (i, &(value, plen)) in entries.iter().enumerate() {
            t.insert(
                0,
                Entry {
                    key: vec![MatchValue::Lpm {
                        value: u64::from(value),
                        prefix_len: plen,
                    }],
                    priority: 0,
                    action: i,
                    action_data: vec![],
                },
            )
            .expect("insert");
        }
        for &key in &keys {
            let mut phv = Phv::new();
            phv.set(fields::IPV4_DST, u64::from(key));
            let got = t.lookup(&phv).map(|e| e.action);
            let expect_idx = lpm_reference(&entries, key);
            // Several entries can share the longest prefix length; the
            // reference returns the first, the table may return any of
            // the same length. Compare by prefix length instead of index.
            match (got, expect_idx) {
                (None, None) => {}
                (Some(g), Some(e)) => {
                    prop_assert_eq!(entries[g].1, entries[e].1, "same specificity");
                }
                other => prop_assert!(false, "mismatch: {:?}", other),
            }
        }
    }

    /// Builder → parser round trip: every header field the builder set
    /// comes back out of the PHV.
    #[test]
    fn parser_roundtrips_builder(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in 1u16..65535,
        dport in 1u16..65535,
        udp in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let s = Ipv4Addr::from(src);
        let d = Ipv4Addr::from(dst);
        let frame = if udp {
            PacketBuilder::udp(s, d, sport, dport).payload(&payload).build()
        } else {
            PacketBuilder::tcp_syn(s, d, sport, dport).payload(&payload).build()
        };
        let phv = p4sim::parse_frame(&frame, 3, 1234);
        prop_assert_eq!(phv.get(fields::IPV4_VALID), 1);
        prop_assert_eq!(phv.get(fields::IPV4_SRC), u64::from(src));
        prop_assert_eq!(phv.get(fields::IPV4_DST), u64::from(dst));
        prop_assert_eq!(phv.get(fields::PKT_LEN), frame.len() as u64);
        if udp {
            prop_assert_eq!(phv.get(fields::UDP_VALID), 1);
            prop_assert_eq!(phv.get(fields::UDP_SPORT), u64::from(sport));
            prop_assert_eq!(phv.get(fields::UDP_DPORT), u64::from(dport));
        } else {
            prop_assert_eq!(phv.get(fields::TCP_VALID), 1);
            prop_assert_eq!(phv.get(fields::TCP_SPORT), u64::from(sport));
            prop_assert_eq!(phv.get(fields::TCP_DPORT), u64::from(dport));
            prop_assert_eq!(phv.get(fields::TCP_IS_SYN), 1);
        }
    }

    /// Random straight-line arithmetic programs execute without error
    /// and are deterministic (same PHV in, same PHV out).
    #[test]
    fn interpreter_deterministic(
        ops in proptest::collection::vec((0u8..8, any::<u64>(), any::<u64>()), 1..40),
        seed_val in any::<u64>(),
    ) {
        let mut prims = Vec::new();
        for (i, &(kind, a, b)) in ops.iter().enumerate() {
            let dst = fields::scratch((i % 8) as u16);
            let src_a = if i % 2 == 0 {
                Operand::Const(a)
            } else {
                Operand::Field(fields::scratch(((i + 3) % 8) as u16))
            };
            let src_b = Operand::Const(b % 64);
            prims.push(match kind {
                0 => Primitive::Add { dst, a: src_a, b: src_b },
                1 => Primitive::Sub { dst, a: src_a, b: src_b },
                2 => Primitive::And { dst, a: src_a, b: src_b },
                3 => Primitive::Or { dst, a: src_a, b: src_b },
                4 => Primitive::Xor { dst, a: src_a, b: src_b },
                5 => Primitive::Shl { dst, src: src_a, amount: src_b },
                6 => Primitive::Shr { dst, src: src_a, amount: src_b },
                _ => Primitive::Msb { dst, src: src_a },
            });
        }
        let mut builder = ProgramBuilder::new();
        let act = builder.add_action(ActionDef::new("random", prims));
        builder.set_control(Control::ApplyAction(act));
        let mut p1 = builder.build(TargetModel::bmv2()).expect("valid program");
        let mut p2 = p1.clone();

        let mut phv1 = Phv::new();
        phv1.set(fields::PAYLOAD_VALUE, seed_val);
        let mut phv2 = phv1.clone();
        let o1 = p1.process_phv(&mut phv1).expect("runs");
        let o2 = p2.process_phv(&mut phv2).expect("runs");
        prop_assert_eq!(phv1, phv2);
        prop_assert_eq!(o1.steps, o2.steps);
    }
}
