//! Golden diagnostics for known-bad programs, and the allocator's
//! behaviour-equivalence property.
//!
//! Each fixture is a program that *builds* fine on bmv2 and must be
//! rejected by the verifier with a specific stable lint code when
//! checked against hardware-like limits — the seeded corpus CI pins
//! `stat4-lint` against.

use p4sim::analysis::{allocate, replay_divergence, TableDepGraph};
use p4sim::phv::fields;
use p4sim::{
    check_equivalence, check_merge_soundness, verify, verify_against, vet_rebind, ActionDef, Cond,
    Control, Entry, LintCode, MatchKind, MatchValue, Operand, Phv, Primitive, ProgramBuilder,
    RegMerge, RuntimeRequest, Severity, SymbolicOptions, TableDef, TargetModel,
};
use p4sim::control::CmpOp;

fn has(report: &p4sim::VerifyReport, code: LintCode, severity: Severity) -> bool {
    has_diag(&report.diagnostics, code, severity)
}

fn has_diag(diags: &[p4sim::Diagnostic], code: LintCode, severity: Severity) -> bool {
    diags
        .iter()
        .any(|d| d.code == code && d.severity == severity)
}

/// Division is unrepresentable in the IR; the division-free discipline's
/// remaining hazard is runtime multiplication, which bmv2 executes and
/// hardware cannot.
#[test]
fn runtime_mul_is_s4l001_on_hardware() {
    let mut b = ProgramBuilder::new();
    let a = b.add_action(ActionDef::new(
        "square",
        vec![Primitive::Mul {
            dst: fields::M0,
            a: Operand::Field(fields::PAYLOAD_VALUE),
            b: Operand::Field(fields::PAYLOAD_VALUE),
        }],
    ));
    b.set_control(Control::ApplyAction(a));
    let p = b.build(TargetModel::bmv2()).expect("legal on bmv2");

    let report = verify_against(&p, &TargetModel::tofino_like());
    assert!(has(&report, LintCode::RuntimeMul, Severity::Error), "{report}");
    assert!(!report.passes(false));
    assert!(report.to_json().contains("\"code\":\"S4L001\""));

    // The same program is clean against its own (software) target.
    assert!(verify(&p).passes(false));
}

#[test]
fn dynamic_shift_is_s4l002_on_hardware() {
    let mut b = ProgramBuilder::new();
    let a = b.add_action(ActionDef::new(
        "var_shift",
        vec![Primitive::Shl {
            dst: fields::M0,
            src: Operand::Const(1),
            amount: Operand::Field(fields::PAYLOAD_VALUE),
        }],
    ));
    b.set_control(Control::ApplyAction(a));
    let p = b.build(TargetModel::bmv2()).expect("legal on bmv2");
    let report = verify_against(&p, &TargetModel::tofino_like());
    assert!(has(&report, LintCode::DynamicShift, Severity::Error), "{report}");
}

/// A 13-deep chain of match-dependent tables cannot fit the 12-stage
/// hardware preset.
#[test]
fn deep_table_chain_is_s4l003_on_hardware() {
    let mut b = ProgramBuilder::new();
    let mut tabs = Vec::new();
    for i in 0..13u16 {
        let w = b.add_action(ActionDef::new(
            format!("w{i}"),
            vec![Primitive::Set {
                dst: fields::scratch((i + 1) % 20),
                src: Operand::Const(1),
            }],
        ));
        tabs.push(b.add_table(TableDef {
            name: format!("t{i}"),
            keys: vec![(fields::scratch(i % 20), MatchKind::Exact)],
            max_entries: 1,
            allowed_actions: vec![w],
            default_action: None,
        }));
    }
    b.set_control(Control::Seq(
        tabs.into_iter().map(Control::ApplyTable).collect(),
    ));
    let p = b.build(TargetModel::bmv2()).unwrap();

    let hw = verify_against(&p, &TargetModel::tofino_like());
    assert!(has(&hw, LintCode::StageOverflow, Severity::Error), "{hw}");
    assert_eq!(hw.allocation.depth, 13);
    assert!(!hw.allocation.fits);

    let sw = verify(&p);
    assert_eq!(sw.allocation.depth, 13, "same chain, unlimited stages");
    assert!(sw.allocation.fits);
}

/// Two separate read-modify-write points on one register: legal (if
/// slow) on bmv2, impossible on a PISA stateful ALU.
#[test]
fn register_double_access_is_s4l004_on_hardware() {
    let mut b = ProgramBuilder::new();
    let r = b.add_register("ewma", 64, 16);
    let rmw = |name: &str| {
        ActionDef::new(
            name,
            vec![
                Primitive::RegRead {
                    dst: fields::M0,
                    register: 0,
                    index: Operand::Const(3),
                },
                Primitive::Add {
                    dst: fields::M0,
                    a: Operand::Field(fields::M0),
                    b: Operand::Const(1),
                },
                Primitive::RegWrite {
                    register: 0,
                    index: Operand::Const(3),
                    src: Operand::Field(fields::M0),
                },
            ],
        )
    };
    assert_eq!(r, 0);
    let a1 = b.add_action(rmw("touch_once"));
    let a2 = b.add_action(rmw("touch_again"));
    b.set_control(Control::Seq(vec![
        Control::ApplyAction(a1),
        Control::ApplyAction(a2),
    ]));
    let p = b.build(TargetModel::bmv2()).unwrap();

    let hw = verify_against(&p, &TargetModel::tofino_like());
    assert!(has(&hw, LintCode::RegisterMultiAccess, Severity::Error), "{hw}");

    // On software the same pattern is a note, never fatal.
    let sw = verify(&p);
    assert!(sw.passes(true), "{sw}");
    assert!(sw
        .diagnostics
        .iter()
        .any(|d| d.code == LintCode::RegisterMultiAccess && d.severity == Severity::Info));
}

/// A value provably wider than the destination register: certain
/// truncation, an error on every target.
#[test]
fn provable_truncation_is_s4l005_everywhere() {
    let mut b = ProgramBuilder::new();
    let r = b.add_register("counter16", 16, 4);
    let a = b.add_action(ActionDef::new(
        "overflow",
        vec![
            Primitive::Shl {
                dst: fields::M0,
                src: Operand::Const(1),
                amount: Operand::Const(40),
            },
            Primitive::RegWrite {
                register: r,
                index: Operand::Const(0),
                src: Operand::Field(fields::M0),
            },
        ],
    ));
    b.set_control(Control::ApplyAction(a));
    let p = b.build(TargetModel::bmv2()).unwrap();

    let report = verify(&p);
    assert!(has(&report, LintCode::WidthTruncation, Severity::Error), "{report}");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::WidthTruncation)
        .unwrap();
    assert!(
        d.chain.iter().any(|c| c.starts_with("Shl")),
        "diagnostic names the producing primitive: {:?}",
        d.chain
    );
}

/// Exceeding the step budget is a warning: the program still runs, the
/// worst-case bound is just violated. `--deny warnings` promotes it.
#[test]
fn step_budget_is_s4l007_warning() {
    let mut b = ProgramBuilder::new();
    let mut prims = Vec::new();
    // A 12-step dependent chain, echoing the paper's "12 sequential
    // steps" override path.
    prims.push(Primitive::Set {
        dst: fields::M0,
        src: Operand::Const(0),
    });
    for _ in 0..11 {
        prims.push(Primitive::Add {
            dst: fields::M0,
            a: Operand::Field(fields::M0),
            b: Operand::Const(1),
        });
    }
    let a = b.add_action(ActionDef::new("override_oldest", prims));
    b.set_control(Control::ApplyAction(a));
    let p = b.build(TargetModel::bmv2()).unwrap();

    let tight = TargetModel {
        step_budget: 10,
        ..TargetModel::tofino_like()
    };
    let report = verify_against(&p, &tight);
    assert_eq!(report.worst_chain_steps, 12);
    assert!(has(&report, LintCode::StepBudget, Severity::Warning), "{report}");
    assert!(report.passes(false), "a warning is not an error");
    assert!(!report.passes(true), "--deny warnings rejects it");
}

/// An index that provably misses the register is an error; the hash
/// fragment's width-bounded index is proven fine.
#[test]
fn index_out_of_range_is_s4l008() {
    let mut b = ProgramBuilder::new();
    let r = b.add_register("cells", 64, 4);
    let a = b.add_action(ActionDef::new(
        "oob",
        vec![Primitive::RegWrite {
            register: r,
            index: Operand::Const(9),
            src: Operand::Const(1),
        }],
    ));
    b.set_control(Control::ApplyAction(a));
    let p = b.build(TargetModel::bmv2()).unwrap();
    let report = verify(&p);
    assert!(has(&report, LintCode::RegisterIndexRange, Severity::Error), "{report}");
}

/// A register declared at the full 64-bit cell width leaves no guard
/// bits for the SEU-recovery saturation path on a target that reserves
/// headroom — the recovery cannot detect out-of-width flips.
#[test]
fn missing_seu_headroom_is_s4l012_warning() {
    let mut b = ProgramBuilder::new();
    let wide = b.add_register("xsum_full", 64, 8);
    let narrow = b.add_register("xsum_guarded", 32, 8);
    let a = b.add_action(ActionDef::new(
        "acc",
        vec![
            Primitive::RegWrite {
                register: wide,
                index: Operand::Const(0),
                src: Operand::Field(fields::PKT_LEN),
            },
            Primitive::RegWrite {
                register: narrow,
                index: Operand::Const(1),
                src: Operand::Field(fields::PKT_LEN),
            },
        ],
    ));
    b.set_control(Control::ApplyAction(a));
    let p = b.build(TargetModel::bmv2()).expect("builds on bmv2");

    let hardened = TargetModel {
        seu_headroom_bits: 2,
        ..TargetModel::tofino_like()
    };
    let report = verify_against(&p, &hardened);
    assert!(has(&report, LintCode::SeuHeadroom, Severity::Warning), "{report}");
    assert!(report.to_json().contains("\"code\":\"S4L012\""));
    let flagged: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == LintCode::SeuHeadroom)
        .collect();
    assert_eq!(flagged.len(), 1, "only the full-width register is flagged");
    assert!(flagged[0].context.contains("xsum_full"));
    assert!(report.passes(false), "a warning is not an error");
    assert!(!report.passes(true), "--deny warnings rejects it");

    // Standard presets reserve no headroom: never flagged.
    let stock = verify_against(&p, &TargetModel::tofino_like());
    assert!(!stock.diagnostics.iter().any(|d| d.code == LintCode::SeuHeadroom));
}

// ---------------------------------------------------------------------
// Symbolic differential fixtures: S4L013 target divergence, S4L014
// path budget, S4L015 merge unsoundness, S4L016 unsafe rebind. Each
// pins the stable lint code, the severity, and — for divergences —
// that the shipped counterexample reproduces concretely.
// ---------------------------------------------------------------------

/// Builds `dst = 3 * PAYLOAD_VALUE` with the given primitives and
/// emits the result in a digest so the two builds are observationally
/// comparable (scratch PHV state is not part of [`p4sim::analysis::symbolic`]'s
/// observation).
fn triple_pipeline(prims: Vec<Primitive>, target: TargetModel) -> p4sim::Pipeline {
    let mut b = ProgramBuilder::new();
    let mut all = prims;
    all.push(Primitive::Digest {
        id: 0x30,
        values: vec![Operand::Field(fields::M0)],
    });
    let a = b.add_action(ActionDef::new("triple", all));
    b.set_control(Control::ApplyAction(a));
    b.build(target).unwrap()
}

/// The software build multiplies at runtime; a correct hardware
/// rewrite (`3x = (x << 1) + x`, exact mod 2^64) verifies equivalent,
/// while a sloppy one (`x << 2`) is rejected with `S4L013` and a
/// counterexample packet that reproduces the divergence concretely.
#[test]
fn cross_target_rewrite_divergence_is_s4l013() {
    let sw = triple_pipeline(
        vec![Primitive::Mul {
            dst: fields::M0,
            a: Operand::Field(fields::PAYLOAD_VALUE),
            b: Operand::Const(3),
        }],
        TargetModel::bmv2(),
    );
    // The software build is clean on bmv2 — the hazard only appears
    // when the program is rewritten for the mul-free hardware target.
    assert!(verify(&sw).passes(true));

    let good_hw = triple_pipeline(
        vec![
            Primitive::Shl {
                dst: fields::M0,
                src: Operand::Field(fields::PAYLOAD_VALUE),
                amount: Operand::Const(1),
            },
            Primitive::Add {
                dst: fields::M0,
                a: Operand::Field(fields::M0),
                b: Operand::Field(fields::PAYLOAD_VALUE),
            },
        ],
        TargetModel::tofino_like(),
    );
    assert!(verify(&good_hw).passes(true));

    let opts = SymbolicOptions::default();
    let ok = check_equivalence(&sw, &good_hw, &opts);
    assert!(ok.equivalent(), "{:?}", ok.diagnostics);
    assert!(ok.passes(true));

    let bad_hw = triple_pipeline(
        vec![Primitive::Shl {
            dst: fields::M0,
            src: Operand::Field(fields::PAYLOAD_VALUE),
            amount: Operand::Const(2),
        }],
        TargetModel::tofino_like(),
    );
    let report = check_equivalence(&sw, &bad_hw, &opts);
    assert!(!report.equivalent());
    assert!(!report.passes(false));
    assert!(has_diag(&report.diagnostics, LintCode::TargetDivergence, Severity::Error));
    assert!(report.to_json().contains("\"code\":\"S4L013\""));

    // The counterexample is a real packet: replaying it concretely
    // reproduces the divergence the symbolic pass claimed.
    let ce = report.counterexample.expect("divergence carries a witness");
    let detail = replay_divergence(&sw, &bad_hw, &ce.witness);
    assert!(detail.is_some(), "counterexample must reproduce concretely");
}

/// A branch tree wider than the path budget is reported as `S4L014`,
/// never silently truncated: the verdict degrades to a warning, not to
/// a false "equivalent".
#[test]
fn path_budget_exhaustion_is_s4l014_warning() {
    let wide = |target: TargetModel| {
        let mut b = ProgramBuilder::new();
        let mut arms = Vec::new();
        // 2^8 paths over 8 independent header bits.
        for i in 0..8u16 {
            let set = b.add_action(ActionDef::new(
                format!("mark{i}"),
                vec![Primitive::Add {
                    dst: fields::M0,
                    a: Operand::Field(fields::M0),
                    b: Operand::Const(1 << i),
                }],
            ));
            arms.push(Control::If {
                cond: Cond::new(
                    Operand::Field(fields::scratch(i)),
                    CmpOp::Eq,
                    Operand::Const(0),
                ),
                then_branch: Box::new(Control::ApplyAction(set)),
                else_branch: None,
            });
        }
        arms.push(Control::ApplyAction(b.add_action(ActionDef::new(
            "emit",
            vec![Primitive::Digest {
                id: 0x31,
                values: vec![Operand::Field(fields::M0)],
            }],
        ))));
        b.set_control(Control::Seq(arms));
        b.build(target).unwrap()
    };
    let a = wide(TargetModel::bmv2());
    let b = wide(TargetModel::tofino_like());

    let opts = SymbolicOptions {
        path_budget: 16,
        ..SymbolicOptions::default()
    };
    let report = check_equivalence(&a, &b, &opts);
    assert!(report.truncated, "budget of 16 cannot cover 256 paths");
    assert!(has_diag(&report.diagnostics, LintCode::PathBudget, Severity::Warning));
    assert!(report.to_json().contains("\"code\":\"S4L014\""));
    assert!(report.passes(false), "budget exhaustion alone is a warning");
    assert!(!report.passes(true), "--deny warnings rejects the partial proof");
}

/// A register declared `Sum`-mergeable whose update is last-writer-wins
/// (a plain overwrite of a header value) does not commute with the
/// merge: two shards summed give a different switch state than one
/// switch seeing both packets. `S4L015`, with both origin packets in
/// the counterexample.
#[test]
fn non_additive_update_under_sum_merge_is_s4l015() {
    let build = |merge: RegMerge| {
        let mut b = ProgramBuilder::new();
        let last = b.add_register("last_seen", 64, 4);
        b.set_register_merge(last, merge);
        let a = b.add_action(ActionDef::new(
            "remember",
            vec![Primitive::RegWrite {
                register: last,
                index: Operand::Const(0),
                src: Operand::Field(fields::PAYLOAD_VALUE),
            }],
        ));
        b.set_control(Control::ApplyAction(a));
        b.build(TargetModel::bmv2()).unwrap()
    };

    let opts = SymbolicOptions::default();
    let unsound = check_merge_soundness(&build(RegMerge::Sum), &opts);
    assert!(!unsound.passes(false));
    assert!(has_diag(&unsound.diagnostics, LintCode::MergeUnsound, Severity::Error));
    assert!(unsound.to_json().contains("\"code\":\"S4L015\""));
    assert!(
        !unsound.counterexamples.is_empty(),
        "violation ships the two origin packets"
    );

    // Declaring the register non-mergeable exempts it — the same
    // program is then clean (and the exemption is visible).
    let exempted = check_merge_soundness(&build(RegMerge::None), &opts);
    assert!(exempted.passes(true), "{:?}", exempted.diagnostics);
    assert!(exempted.exempt.iter().any(|n| n == "last_seen"));

    // A genuine additive counter under Sum is sound.
    let mut b = ProgramBuilder::new();
    let hits = b.add_register("hits", 64, 4);
    let a = b.add_action(ActionDef::new(
        "count",
        vec![
            Primitive::RegRead {
                dst: fields::M0,
                register: hits,
                index: Operand::Const(0),
            },
            Primitive::Add {
                dst: fields::M0,
                a: Operand::Field(fields::M0),
                b: Operand::Const(1),
            },
            Primitive::RegWrite {
                register: hits,
                index: Operand::Const(0),
                src: Operand::Field(fields::M0),
            },
        ],
    ));
    b.set_control(Control::ApplyAction(a));
    let counter = b.build(TargetModel::bmv2()).unwrap();
    let sound = check_merge_soundness(&counter, &opts);
    assert!(sound.passes(true), "{:?}", sound.diagnostics);
    assert!(sound.checked > 0);
}

/// A rebind pipeline: routing decides on a /8, drilldown binds
/// per-prefix counter slots keyed on the same address. Used by the
/// `S4L016` fixtures below.
fn rebind_pipeline() -> (p4sim::Pipeline, usize, usize) {
    let mut b = ProgramBuilder::new();
    let cells = b.add_register("cells", 64, 4);
    let route = b.add_action(ActionDef::new(
        "route",
        vec![Primitive::Set {
            dst: fields::M0,
            src: Operand::Const(1),
        }],
    ));
    let route_table = b.add_table(TableDef {
        name: "route".into(),
        keys: vec![(fields::IPV4_DST, MatchKind::Lpm { width: 32 })],
        max_entries: 4,
        allowed_actions: vec![route],
        default_action: None,
    });
    let track = b.add_action(ActionDef::new(
        "track",
        vec![
            Primitive::RegRead {
                dst: fields::M0,
                register: cells,
                index: Operand::Data(0),
            },
            Primitive::Add {
                dst: fields::M0,
                a: Operand::Field(fields::M0),
                b: Operand::Const(1),
            },
            Primitive::RegWrite {
                register: cells,
                index: Operand::Data(0),
                src: Operand::Field(fields::M0),
            },
        ],
    ));
    let drill_table = b.add_table(TableDef {
        name: "drill".into(),
        keys: vec![(fields::IPV4_DST, MatchKind::Lpm { width: 32 })],
        max_entries: 4,
        allowed_actions: vec![track],
        default_action: None,
    });
    b.set_control(Control::Seq(vec![
        Control::ApplyTable(route_table),
        Control::ApplyTable(drill_table),
    ]));
    let mut p = b.build(TargetModel::bmv2()).unwrap();
    // The route table ships with a /8 covering the monitored network,
    // like the case-study app's rate table.
    let resp = p.runtime(&RuntimeRequest::InsertEntry {
        table: route_table,
        entry: Entry {
            key: vec![MatchValue::Lpm {
                value: 0x0a00_0000,
                prefix_len: 8,
            }],
            priority: 8,
            action: route,
            action_data: vec![],
        },
    });
    assert!(resp.is_ok(), "{resp:?}");
    (p, drill_table, track)
}

fn drill_insert(table: usize, action: usize, prefix: u64, len: u8, slot: u64) -> RuntimeRequest {
    RuntimeRequest::InsertEntry {
        table,
        entry: Entry {
            key: vec![MatchValue::Lpm {
                value: prefix,
                prefix_len: len,
            }],
            priority: i32::from(len),
            action,
            action_data: vec![slot],
        },
    }
}

/// A rebind whose bound slot provably misses the register is rejected
/// with an `S4L016` error, a concrete witness packet, and no vetted
/// pipeline; a well-formed rebind passes and yields one.
#[test]
fn out_of_range_rebind_is_s4l016() {
    let (p, drill, track) = rebind_pipeline();
    let opts = SymbolicOptions::default();

    let good = vet_rebind(
        &p,
        &drill_insert(drill, track, 0x0a00_0100, 24, 2),
        &opts,
    );
    assert!(good.passes(), "{:?}", good.diagnostics);
    assert!(good.vetted.is_some(), "accepted rebind ships the advanced model");

    let bad = vet_rebind(
        &p,
        &drill_insert(drill, track, 0x0a00_0100, 24, 999),
        &opts,
    );
    assert!(!bad.passes());
    assert!(has_diag(&bad.diagnostics, LintCode::UnsafeRebind, Severity::Error));
    assert!(bad.to_json().contains("\"code\":\"S4L016\""));
    assert!(bad.vetted.is_none(), "rejected rebind must not advance the model");
}

/// Regression: the poisoned drill entry nests *inside* the route
/// table's /8. The witness solver must prefer the more specific /24
/// value for the shared key field — taking the first (/8) assignment
/// would make the replay packet miss the poisoned entry and downgrade
/// the fault to an unconfirmed warning.
#[test]
fn nested_lpm_rebind_fault_still_confirms_as_s4l016_error() {
    let (p, drill, track) = rebind_pipeline();
    let opts = SymbolicOptions::default();
    let report = vet_rebind(
        &p,
        &drill_insert(drill, track, 0x0a00_0100, 24, 999),
        &opts,
    );
    assert!(
        has_diag(&report.diagnostics, LintCode::UnsafeRebind, Severity::Error),
        "fault inside a nested LPM must still replay concretely: {:?}",
        report.diagnostics
    );
    assert!(!report.passes());
}

// ---------------------------------------------------------------------
// Allocation equivalence: executing units stage by stage — in any order
// within a stage — is indistinguishable from sequential execution,
// because every dependency edge (including anti- and register edges)
// forces a stage boundary.
// ---------------------------------------------------------------------

/// One randomly generated control unit.
#[derive(Debug, Clone, Copy)]
struct UnitSpec {
    kind: u8,
    dst: u16,
    src: u16,
    addend: u64,
    reg: usize,
    cell: u64,
}

const NREGS: usize = 3;
const CELLS: usize = 4;

fn build_pipeline(specs: &[UnitSpec], order: &[usize]) -> p4sim::Pipeline {
    let mut b = ProgramBuilder::new();
    for r in 0..NREGS {
        b.add_register(format!("r{r}"), 64, CELLS);
    }
    for (i, s) in specs.iter().enumerate() {
        let dst = fields::scratch(s.dst % 20);
        let src = fields::scratch(s.src % 20);
        let prims = match s.kind % 3 {
            0 => vec![Primitive::Set {
                dst,
                src: Operand::Const(s.addend),
            }],
            1 => vec![Primitive::Add {
                dst,
                a: Operand::Field(src),
                b: Operand::Const(s.addend),
            }],
            _ => vec![
                Primitive::RegRead {
                    dst,
                    register: s.reg % NREGS,
                    index: Operand::Const(s.cell % CELLS as u64),
                },
                Primitive::Add {
                    dst,
                    a: Operand::Field(dst),
                    b: Operand::Const(s.addend),
                },
                Primitive::RegWrite {
                    register: s.reg % NREGS,
                    index: Operand::Const(s.cell % CELLS as u64),
                    src: Operand::Field(dst),
                },
            ],
        };
        b.add_action(ActionDef::new(format!("u{i}"), prims));
    }
    b.set_control(Control::Seq(
        order.iter().map(|&i| Control::ApplyAction(i)).collect(),
    ));
    b.build(TargetModel::bmv2()).unwrap()
}

fn run_and_snapshot(p: &mut p4sim::Pipeline, packets: u32) -> (Vec<u64>, Vec<Vec<u64>>) {
    let mut last_scratch = Vec::new();
    for k in 0..packets {
        let mut phv = Phv::new();
        phv.set(fields::PAYLOAD_VALUE, u64::from(k) * 17 + 1);
        p.process_phv(&mut phv).unwrap();
        last_scratch = (0..24).map(|i| phv.get(fields::scratch(i))).collect();
    }
    let regs = p
        .registers()
        .iter()
        .map(|r| r.cells.clone())
        .collect::<Vec<_>>();
    (last_scratch, regs)
}

mod stage_equivalence {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn within_stage_reordering_preserves_behavior(
            raw in proptest::collection::vec(
                ((0u8..3, 0u16..20, 0u16..20), (0u64..1000, 0usize..super::NREGS, 0u64..super::CELLS as u64)),
                1..8,
            )
        ) {
            let specs: Vec<UnitSpec> = raw
                .iter()
                .map(|&((kind, dst, src), (addend, reg, cell))| UnitSpec {
                    kind, dst, src, addend, reg, cell,
                })
                .collect();
            let n = specs.len();
            let sequential_order: Vec<usize> = (0..n).collect();
            let mut seq = build_pipeline(&specs, &sequential_order);

            // Allocate stages, then execute stage by stage with each
            // stage's units REVERSED — the adversarial within-stage
            // order.
            let tdg = TableDepGraph::build(&seq);
            let mut diags = Vec::new();
            let alloc = allocate(&seq, &tdg, &TargetModel::bmv2(), &mut diags);
            let mut staged_order: Vec<usize> = (0..n).collect();
            staged_order.sort_by_key(|&i| (alloc.node_stage[i], std::cmp::Reverse(i)));
            let mut staged = build_pipeline(&specs, &staged_order);

            // Every dependency edge crosses a stage boundary.
            for e in &tdg.edges {
                prop_assert!(
                    alloc.node_stage[e.from] < alloc.node_stage[e.to],
                    "edge {} -> {} within stage {}",
                    e.from, e.to, alloc.node_stage[e.from]
                );
            }

            let (scratch_a, regs_a) = run_and_snapshot(&mut seq, 3);
            let (scratch_b, regs_b) = run_and_snapshot(&mut staged, 3);
            prop_assert_eq!(scratch_a, scratch_b);
            prop_assert_eq!(regs_a, regs_b);
        }
    }
}
