//! Match-action tables: exact / LPM / ternary / range keys, entries
//! populated exclusively by the control plane.

use crate::error::{P4Error, P4Result};
use crate::phv::{FieldId, Phv};
use serde::{Deserialize, Serialize};

/// How a key component matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchKind {
    /// Exact-value match.
    Exact,
    /// Longest-prefix match over `width`-bit values.
    Lpm {
        /// Bit width of the field (e.g. 32 for IPv4 addresses).
        width: u8,
    },
    /// Value/mask match, priority-ordered.
    Ternary,
    /// Inclusive range match, priority-ordered.
    Range,
}

/// One key component of a table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchValue {
    /// Matches exactly this value.
    Exact(u64),
    /// Matches when the top `prefix_len` bits (of the kind's width)
    /// equal those of `value`.
    Lpm {
        /// Prefix value.
        value: u64,
        /// Number of significant leading bits.
        prefix_len: u8,
    },
    /// Matches when `field & mask == value & mask`.
    Ternary {
        /// Pattern.
        value: u64,
        /// Care mask.
        mask: u64,
    },
    /// Matches when `lo <= field <= hi`.
    Range {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// Wildcard (matches anything) — shorthand for fully-masked ternary.
    Any,
}

impl MatchValue {
    fn matches(&self, kind: &MatchKind, field: u64) -> bool {
        match (self, kind) {
            (MatchValue::Exact(v), _) => field == *v,
            (MatchValue::Lpm { value, prefix_len }, MatchKind::Lpm { width }) => {
                let width = u32::from(*width);
                let plen = u32::from(*prefix_len).min(width);
                if plen == 0 {
                    return true;
                }
                let shift = width - plen;
                (field >> shift) == (*value >> shift)
            }
            (MatchValue::Lpm { value, prefix_len }, _) => {
                // LPM value against a non-LPM kind: treat as 64-bit field.
                let plen = u32::from(*prefix_len).min(64);
                if plen == 0 {
                    return true;
                }
                let shift = 64 - plen;
                (field >> shift) == (*value >> shift)
            }
            (MatchValue::Ternary { value, mask }, _) => field & mask == value & mask,
            (MatchValue::Range { lo, hi }, _) => (*lo..=*hi).contains(&field),
            (MatchValue::Any, _) => true,
        }
    }

    /// Specificity used to rank LPM entries (prefix length; exact = max).
    fn lpm_specificity(&self) -> u32 {
        match self {
            MatchValue::Exact(_) => u32::MAX,
            MatchValue::Lpm { prefix_len, .. } => u32::from(*prefix_len),
            MatchValue::Ternary { mask, .. } => mask.count_ones(),
            MatchValue::Range { .. } => 0,
            MatchValue::Any => 0,
        }
    }
}

/// A table entry: key components, priority (higher wins among ternary /
/// range candidates), the action to run and its runtime parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entry {
    /// One component per table key.
    pub key: Vec<MatchValue>,
    /// Tie-break priority (higher wins).
    pub priority: i32,
    /// Action id to invoke on hit.
    pub action: usize,
    /// Runtime parameters passed to the action's `Data(n)` operands.
    pub action_data: Vec<u64>,
}

/// Static definition of a table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableDef {
    /// Human-readable name for reports.
    pub name: String,
    /// Key fields and their match kinds.
    pub keys: Vec<(FieldId, MatchKind)>,
    /// Capacity in entries (drives the resource model).
    pub max_entries: usize,
    /// Actions entries of this table may invoke (P4's `actions = {...}`
    /// list); used by validation and the dependency analyser.
    pub allowed_actions: Vec<usize>,
    /// Action run on miss (with its action data), if any.
    pub default_action: Option<(usize, Vec<u64>)>,
}

/// A table definition plus its current entries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// The static definition.
    pub def: TableDef,
    entries: Vec<Entry>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(def: TableDef) -> Self {
        Self {
            def,
            entries: Vec::new(),
        }
    }

    /// Current entries (insertion order).
    #[must_use]
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Inserts an entry.
    ///
    /// # Errors
    ///
    /// [`P4Error::KeyShapeMismatch`] or [`P4Error::TableFull`]. The
    /// caller (the pipeline runtime) additionally validates action ids
    /// and action-data arity.
    pub fn insert(&mut self, table_id: usize, entry: Entry) -> P4Result<()> {
        if entry.key.len() != self.def.keys.len() {
            return Err(P4Error::KeyShapeMismatch {
                table: table_id,
                expected: self.def.keys.len(),
                provided: entry.key.len(),
            });
        }
        if self.entries.len() >= self.def.max_entries {
            return Err(P4Error::TableFull { table: table_id });
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Removes the first entry whose key equals `key`.
    ///
    /// # Errors
    ///
    /// [`P4Error::EntryNotFound`] if no entry has that key.
    pub fn remove(&mut self, table_id: usize, key: &[MatchValue]) -> P4Result<Entry> {
        let pos = self
            .entries
            .iter()
            .position(|e| e.key == key)
            .ok_or(P4Error::EntryNotFound { table: table_id })?;
        Ok(self.entries.remove(pos))
    }

    /// Replaces the action/data of the first entry whose key equals
    /// `key`.
    ///
    /// # Errors
    ///
    /// [`P4Error::EntryNotFound`] if no entry has that key.
    pub fn modify(
        &mut self,
        table_id: usize,
        key: &[MatchValue],
        action: usize,
        action_data: Vec<u64>,
    ) -> P4Result<()> {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.key == key)
            .ok_or(P4Error::EntryNotFound { table: table_id })?;
        e.action = action;
        e.action_data = action_data;
        Ok(())
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Looks up the best-matching entry for the PHV: all key components
    /// must match; among candidates the highest (total LPM specificity,
    /// priority, earliest insertion) wins.
    #[must_use]
    pub fn lookup(&self, phv: &Phv) -> Option<&Entry> {
        let mut best: Option<(&Entry, u64, i32)> = None;
        for e in &self.entries {
            let mut specificity = 0u64;
            let mut all = true;
            for ((field, kind), mv) in self.def.keys.iter().zip(&e.key) {
                let v = phv.get(*field);
                if !mv.matches(kind, v) {
                    all = false;
                    break;
                }
                specificity += u64::from(mv.lpm_specificity());
            }
            if !all {
                continue;
            }
            let better = match &best {
                None => true,
                Some((_, s, p)) => specificity > *s || (specificity == *s && e.priority > *p),
            };
            if better {
                best = Some((e, specificity, e.priority));
            }
        }
        best.map(|(e, _, _)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phv::fields;

    fn lpm_table() -> Table {
        Table::new(TableDef {
            name: "routes".into(),
            keys: vec![(fields::IPV4_DST, MatchKind::Lpm { width: 32 })],
            max_entries: 16,
            allowed_actions: vec![1, 2],
            default_action: None,
        })
    }

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u64 {
        u64::from(u32::from_be_bytes([a, b, c, d]))
    }

    #[test]
    fn lpm_longest_prefix_wins() {
        let mut t = lpm_table();
        t.insert(
            0,
            Entry {
                key: vec![MatchValue::Lpm {
                    value: ip(10, 0, 0, 0),
                    prefix_len: 8,
                }],
                priority: 0,
                action: 1,
                action_data: vec![],
            },
        )
        .unwrap();
        t.insert(
            0,
            Entry {
                key: vec![MatchValue::Lpm {
                    value: ip(10, 0, 5, 0),
                    prefix_len: 24,
                }],
                priority: 0,
                action: 2,
                action_data: vec![],
            },
        )
        .unwrap();

        let mut phv = Phv::new();
        phv.set(fields::IPV4_DST, ip(10, 0, 5, 77));
        assert_eq!(t.lookup(&phv).unwrap().action, 2, "/24 beats /8");

        phv.set(fields::IPV4_DST, ip(10, 9, 9, 9));
        assert_eq!(t.lookup(&phv).unwrap().action, 1, "only /8 matches");

        phv.set(fields::IPV4_DST, ip(11, 0, 0, 1));
        assert!(t.lookup(&phv).is_none());
    }

    #[test]
    fn exact_match() {
        let mut t = Table::new(TableDef {
            name: "ports".into(),
            keys: vec![(fields::TCP_DPORT, MatchKind::Exact)],
            max_entries: 4,
            allowed_actions: vec![9],
            default_action: None,
        });
        t.insert(
            0,
            Entry {
                key: vec![MatchValue::Exact(80)],
                priority: 0,
                action: 9,
                action_data: vec![],
            },
        )
        .unwrap();
        let mut phv = Phv::new();
        phv.set(fields::TCP_DPORT, 80);
        assert_eq!(t.lookup(&phv).unwrap().action, 9);
        phv.set(fields::TCP_DPORT, 443);
        assert!(t.lookup(&phv).is_none());
    }

    #[test]
    fn ternary_priority_breaks_ties() {
        let mut t = Table::new(TableDef {
            name: "cls".into(),
            keys: vec![(fields::TCP_FLAGS, MatchKind::Ternary)],
            max_entries: 8,
            allowed_actions: vec![1, 2],
            default_action: None,
        });
        // Entry A: SYN bit set (mask 0x02), priority 1.
        t.insert(
            0,
            Entry {
                key: vec![MatchValue::Ternary {
                    value: 0x02,
                    mask: 0x02,
                }],
                priority: 1,
                action: 1,
                action_data: vec![],
            },
        )
        .unwrap();
        // Entry B: anything, priority 10 but less specific mask.
        t.insert(
            0,
            Entry {
                key: vec![MatchValue::Ternary {
                    value: 0,
                    mask: 0,
                }],
                priority: 10,
                action: 2,
                action_data: vec![],
            },
        )
        .unwrap();
        let mut phv = Phv::new();
        phv.set(fields::TCP_FLAGS, 0x02);
        // Specificity (mask bits) outranks priority in our model: the
        // SYN rule is more specific.
        assert_eq!(t.lookup(&phv).unwrap().action, 1);
        phv.set(fields::TCP_FLAGS, 0x10);
        assert_eq!(t.lookup(&phv).unwrap().action, 2);
    }

    #[test]
    fn range_match() {
        let mut t = Table::new(TableDef {
            name: "len".into(),
            keys: vec![(fields::PKT_LEN, MatchKind::Range)],
            max_entries: 4,
            allowed_actions: vec![3],
            default_action: None,
        });
        t.insert(
            0,
            Entry {
                key: vec![MatchValue::Range { lo: 64, hi: 128 }],
                priority: 0,
                action: 3,
                action_data: vec![],
            },
        )
        .unwrap();
        let mut phv = Phv::new();
        phv.set(fields::PKT_LEN, 100);
        assert!(t.lookup(&phv).is_some());
        phv.set(fields::PKT_LEN, 129);
        assert!(t.lookup(&phv).is_none());
        phv.set(fields::PKT_LEN, 64);
        assert!(t.lookup(&phv).is_some());
    }

    #[test]
    fn capacity_and_shape_enforced() {
        let mut t = Table::new(TableDef {
            name: "tiny".into(),
            keys: vec![(fields::PKT_LEN, MatchKind::Exact)],
            max_entries: 1,
            allowed_actions: vec![0],
            default_action: None,
        });
        assert!(matches!(
            t.insert(
                5,
                Entry {
                    key: vec![],
                    priority: 0,
                    action: 0,
                    action_data: vec![],
                }
            ),
            Err(P4Error::KeyShapeMismatch { table: 5, .. })
        ));
        t.insert(
            5,
            Entry {
                key: vec![MatchValue::Exact(1)],
                priority: 0,
                action: 0,
                action_data: vec![],
            },
        )
        .unwrap();
        assert!(matches!(
            t.insert(
                5,
                Entry {
                    key: vec![MatchValue::Exact(2)],
                    priority: 0,
                    action: 0,
                    action_data: vec![],
                }
            ),
            Err(P4Error::TableFull { table: 5 })
        ));
    }

    #[test]
    fn modify_and_remove() {
        let mut t = lpm_table();
        let key = vec![MatchValue::Lpm {
            value: ip(10, 0, 0, 0),
            prefix_len: 8,
        }];
        t.insert(
            0,
            Entry {
                key: key.clone(),
                priority: 0,
                action: 1,
                action_data: vec![7],
            },
        )
        .unwrap();
        t.modify(0, &key, 2, vec![8, 9]).unwrap();
        assert_eq!(t.entries()[0].action, 2);
        assert_eq!(t.entries()[0].action_data, vec![8, 9]);
        let removed = t.remove(0, &key).unwrap();
        assert_eq!(removed.action, 2);
        assert!(matches!(
            t.remove(0, &key),
            Err(P4Error::EntryNotFound { table: 0 })
        ));
    }

    #[test]
    fn multi_key_all_components_must_match() {
        let mut t = Table::new(TableDef {
            name: "two".into(),
            keys: vec![
                (fields::IPV4_PROTO, MatchKind::Exact),
                (fields::TCP_DPORT, MatchKind::Range),
            ],
            max_entries: 4,
            allowed_actions: vec![1],
            default_action: None,
        });
        t.insert(
            0,
            Entry {
                key: vec![MatchValue::Exact(6), MatchValue::Range { lo: 0, hi: 1023 }],
                priority: 0,
                action: 1,
                action_data: vec![],
            },
        )
        .unwrap();
        let mut phv = Phv::new();
        phv.set(fields::IPV4_PROTO, 6);
        phv.set(fields::TCP_DPORT, 80);
        assert!(t.lookup(&phv).is_some());
        phv.set(fields::IPV4_PROTO, 17);
        assert!(t.lookup(&phv).is_none());
        phv.set(fields::IPV4_PROTO, 6);
        phv.set(fields::TCP_DPORT, 2000);
        assert!(t.lookup(&phv).is_none());
    }

    #[test]
    fn wildcard_any() {
        let mut t = Table::new(TableDef {
            name: "w".into(),
            keys: vec![(fields::IPV4_SRC, MatchKind::Ternary)],
            max_entries: 2,
            allowed_actions: vec![4],
            default_action: None,
        });
        t.insert(
            0,
            Entry {
                key: vec![MatchValue::Any],
                priority: 0,
                action: 4,
                action_data: vec![],
            },
        )
        .unwrap();
        let phv = Phv::new();
        assert_eq!(t.lookup(&phv).unwrap().action, 4);
    }
}
