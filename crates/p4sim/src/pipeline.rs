//! The pipeline interpreter: executes a validated program packet by
//! packet against register state.

use crate::action::{ActionDef, Operand, Primitive};
use crate::control::Control;
use crate::error::{P4Error, P4Result};
use crate::fault::FaultHook;
use crate::parser::parse_frame;
use crate::phv::{fields, Phv, DROP_PORT};
use crate::table::Table;
use crate::target::TargetModel;
use serde::{Deserialize, Serialize};
use stat4_core::delta::DirtyJournal;

/// How one register's per-shard state folds into a whole-switch view
/// during sharded replay (`crate::replay::merge_registers`), and the
/// algebra the merge-soundness check (`S4L015`) verifies the register's
/// update function against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegMerge {
    /// Cellwise wrapping addition masked to the register width — the
    /// arithmetic a fixed-width hardware register performs. Correct for
    /// counters and sum/sum-of-squares accumulators.
    #[default]
    Sum,
    /// Cellwise saturating addition clamped at the width mask.
    SatSum,
    /// Cellwise maximum (high-water marks).
    Max,
    /// Not mergeable cellwise: state encodes order (ring heads, marker
    /// positions, seeded-once flags). The merge keeps the destination
    /// shard's cells, and the register is exempt from the soundness
    /// check — a higher-level rebuild must reconcile it.
    None,
}

impl RegMerge {
    /// Folds one source cell into a destination cell under this policy
    /// (`mask` is the register's width mask). `None` keeps `dst`.
    #[must_use]
    pub fn combine(self, dst: u64, src: u64, mask: u64) -> u64 {
        match self {
            RegMerge::Sum => dst.wrapping_add(src) & mask,
            RegMerge::SatSum => dst.saturating_add(src).min(mask),
            RegMerge::Max => dst.max(src),
            RegMerge::None => dst,
        }
    }
}

/// A stateful register array.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Register {
    /// Name for reports.
    pub name: String,
    /// Cell width in bits (writes are masked).
    pub width_bits: u32,
    /// Cell storage.
    pub cells: Vec<u64>,
    /// Declared cross-shard merge policy (see [`RegMerge`]).
    #[serde(default)]
    pub merge: RegMerge,
    /// Cells written since the last [`Pipeline::take_register_delta`]
    /// — the changed-register-span journal behind sparse cross-shard
    /// merges. Bookkeeping, not identity: excluded from eq and serde.
    #[serde(skip, default)]
    pub(crate) journal: DirtyJournal,
}

/// Equality is over the declared shape and cell contents only — the
/// dirty journal is bookkeeping, not identity.
impl PartialEq for Register {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.width_bits == other.width_bits
            && self.cells == other.cells
            && self.merge == other.merge
    }
}

impl Eq for Register {}

impl Register {
    pub(crate) fn mask(&self) -> u64 {
        if self.width_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width_bits) - 1
        }
    }

    /// The one journaled write path: records the cell's pre-write value
    /// on first touch, then writes `v` masked to the register width.
    /// Every interpreter/controller mutation funnels through here so
    /// register deltas stay complete.
    pub(crate) fn write_cell(&mut self, i: usize, v: u64) {
        self.journal.mark(i, self.cells[i]);
        self.cells[i] = v & self.mask();
    }
}

/// A digest pushed to the controller during packet processing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DigestRecord {
    /// Application-defined digest kind.
    pub id: u16,
    /// Evaluated payload values.
    pub values: Vec<u64>,
}

/// What happened to one packet.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PacketOutcome {
    /// Egress port, if forwarded.
    pub egress: Option<u64>,
    /// True if dropped.
    pub dropped: bool,
    /// Extra pipeline passes the packet consumed.
    pub recirculations: u32,
    /// Set while a pass is executing when the next pass was requested.
    #[serde(skip)]
    recirculate_requested: bool,
    /// Digests emitted (push alerts to the controller).
    pub digests: Vec<DigestRecord>,
    /// Interpreter steps consumed (primitives + table lookups).
    pub steps: u64,
    /// `(table_id, hit)` for every table applied, in order.
    pub tables_applied: Vec<(usize, bool)>,
}

/// A snapshot of a pipeline's mutable state — every register cell plus
/// the packet counter — for crash-recovery checkpoints and hot-swap
/// shadow transfer. The static definition (tables, actions, control
/// tree) is deliberately not captured: a restore target is a fresh
/// build of the same program, and [`Pipeline::restore_state`] verifies
/// the register file lines up before touching anything.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineState {
    /// `(register name, cells)` in declaration order.
    pub registers: Vec<(String, Vec<u64>)>,
    /// Packets processed when the state was captured.
    pub packets_processed: u64,
}

/// A complete program instance: static definition plus mutable state.
#[derive(Debug, Clone)]
pub struct Pipeline {
    pub(crate) target: TargetModel,
    pub(crate) registers: Vec<Register>,
    pub(crate) actions: Vec<ActionDef>,
    pub(crate) tables: Vec<Table>,
    pub(crate) control: Control,
    pub(crate) packets_processed: u64,
    pub(crate) fault_hook: Option<Box<dyn FaultHook>>,
    /// `packets_processed` at the last [`Self::take_register_delta`].
    pub(crate) taken_packets: u64,
    /// Set when a fault hook has run: hooks mutate registers directly
    /// (bypassing the journal), so pending deltas are unreliable and
    /// the next take must signal "full merge required".
    pub(crate) hook_touched: bool,
}

impl Pipeline {
    pub(crate) fn from_parts(
        target: TargetModel,
        registers: Vec<Register>,
        actions: Vec<ActionDef>,
        tables: Vec<Table>,
        control: Control,
    ) -> Self {
        Self {
            target,
            registers,
            actions,
            tables,
            control,
            packets_processed: 0,
            fault_hook: None,
            taken_packets: 0,
            hook_touched: false,
        }
    }

    /// Installs (or with `None`, removes) a fault-injection hook. The
    /// hook sees every subsequent packet; see [`crate::fault`].
    pub fn set_fault_hook(&mut self, hook: Option<Box<dyn FaultHook>>) {
        self.fault_hook = hook;
    }

    /// The installed fault hook, if any (telemetry reads its counters).
    #[must_use]
    pub fn fault_hook(&self) -> Option<&dyn FaultHook> {
        self.fault_hook.as_deref()
    }

    /// The target this program was validated against.
    #[must_use]
    pub fn target(&self) -> &TargetModel {
        &self.target
    }

    /// Number of packets processed so far.
    #[must_use]
    pub fn packets_processed(&self) -> u64 {
        self.packets_processed
    }

    /// Read-only register access (tests, resource accounting; the
    /// controller path goes through [`crate::runtime`]).
    #[must_use]
    pub fn registers(&self) -> &[Register] {
        &self.registers
    }

    /// Captures the pipeline's mutable state (register cells + packet
    /// counter) for a checkpoint; see [`PipelineState`].
    #[must_use]
    pub fn export_state(&self) -> PipelineState {
        PipelineState {
            registers: self
                .registers
                .iter()
                .map(|r| (r.name.clone(), r.cells.clone()))
                .collect(),
            packets_processed: self.packets_processed,
        }
    }

    /// Restores state previously captured by [`Pipeline::export_state`]
    /// from a pipeline running the same program. All-or-nothing: the
    /// register file (names, order, cell counts) is validated in full
    /// before any cell is written, so a mismatched snapshot leaves the
    /// pipeline untouched. Restored cells are masked to the declared
    /// register width.
    ///
    /// # Errors
    ///
    /// [`P4Error::Invalid`] naming the first mismatched register.
    pub fn restore_state(&mut self, state: &PipelineState) -> P4Result<()> {
        if state.registers.len() != self.registers.len() {
            return Err(P4Error::Invalid {
                what: format!(
                    "state snapshot has {} register(s), program declares {}",
                    state.registers.len(),
                    self.registers.len()
                ),
            });
        }
        for (reg, (name, cells)) in self.registers.iter().zip(&state.registers) {
            if reg.name != *name {
                return Err(P4Error::Invalid {
                    what: format!("state register `{name}` where program declares `{}`", reg.name),
                });
            }
            if reg.cells.len() != cells.len() {
                return Err(P4Error::Invalid {
                    what: format!(
                        "register `{name}`: snapshot has {} cell(s), program declares {}",
                        cells.len(),
                        reg.cells.len()
                    ),
                });
            }
        }
        for (reg, (_, cells)) in self.registers.iter_mut().zip(&state.registers) {
            let mask = reg.mask();
            for (dst, src) in reg.cells.iter_mut().zip(cells) {
                *dst = src & mask;
            }
            // A restore replaces the whole file: re-base the journal so
            // the next delta is relative to the restored state (a
            // consumer must full-merge once before trusting deltas).
            reg.journal.clear();
        }
        self.packets_processed = state.packets_processed;
        self.taken_packets = state.packets_processed;
        Ok(())
    }

    /// Drains the per-register dirty journals into a
    /// [`crate::replay::PipelineDelta`] — the changed-register spans
    /// since the last take — and re-bases them.
    ///
    /// Returns `None` when the delta cannot be trusted: a fault hook is
    /// installed or has run since the last take. Hooks mutate the
    /// register file directly ([`crate::fault::FaultHook::before_packet`]
    /// takes `&mut [Register]`), bypassing the journal, so the only
    /// sound answer is "do a full merge this round". The journals are
    /// re-based either way, so a later fault-free window deltas cleanly
    /// after one full rebuild.
    pub fn take_register_delta(&mut self) -> Option<crate::replay::PipelineDelta> {
        let tainted = self.hook_touched || self.fault_hook.is_some();
        self.hook_touched = false;
        let packets_base = self.taken_packets;
        self.taken_packets = self.packets_processed;
        let mut regs = Vec::new();
        for (i, r) in self.registers.iter_mut().enumerate() {
            let touched = r.journal.take();
            if !tainted && !touched.is_empty() {
                let cells = touched
                    .into_iter()
                    .map(|(idx, base)| (idx, base, r.cells[idx as usize]))
                    .collect();
                regs.push(crate::replay::RegisterDelta { register: i, cells });
            }
        }
        if tainted {
            return None;
        }
        Some(crate::replay::PipelineDelta {
            regs,
            packets_base,
            packets_cur: self.packets_processed,
        })
    }

    /// Drops pending journal entries and re-bases, without building the
    /// delta — what a coordinator does right after a full merge.
    pub fn discard_register_delta(&mut self) {
        let _ = self.take_register_delta();
    }

    /// Read-only table access.
    #[must_use]
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Actions (for reports).
    #[must_use]
    pub fn actions(&self) -> &[ActionDef] {
        &self.actions
    }

    /// Control tree (for analysis).
    #[must_use]
    pub fn control(&self) -> &Control {
        &self.control
    }

    /// Parses `frame` and runs it through the pipeline.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors ([`P4Error::RegisterOutOfBounds`],
    /// [`P4Error::StepBudgetExhausted`], …).
    pub fn process_frame(
        &mut self,
        frame: &[u8],
        ingress_port: u64,
        timestamp_ns: u64,
    ) -> P4Result<(Phv, PacketOutcome)> {
        let mut phv = parse_frame(frame, ingress_port, timestamp_ns);
        let outcome = self.process_phv(&mut phv)?;
        Ok((phv, outcome))
    }

    /// Runs an already-parsed PHV through the pipeline.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    pub fn process_phv(&mut self, phv: &mut Phv) -> P4Result<PacketOutcome> {
        let mut outcome = PacketOutcome::default();
        if let Some(mut hook) = self.fault_hook.take() {
            hook.before_packet(self.packets_processed, &mut self.registers);
            self.fault_hook = Some(hook);
            self.hook_touched = true;
        }
        let control = self.control.clone();
        self.exec_control(&control, phv, &mut outcome)?;
        while outcome.recirculate_requested {
            outcome.recirculate_requested = false;
            if outcome.recirculations >= self.target.max_recirculations {
                // Bounded like hardware: the packet proceeds without the
                // extra pass rather than looping forever.
                break;
            }
            outcome.recirculations += 1;
            self.exec_control(&control, phv, &mut outcome)?;
        }
        if phv.dropped() {
            outcome.dropped = true;
            outcome.egress = None;
        } else {
            let e = phv.get(fields::EGRESS_PORT);
            outcome.egress = (e != 0 || !outcome.tables_applied.is_empty()).then_some(e);
        }
        self.packets_processed += 1;
        Ok(outcome)
    }

    fn charge(&self, outcome: &mut PacketOutcome, cost: u64) -> P4Result<()> {
        outcome.steps += cost;
        if outcome.steps > self.target.step_budget {
            return Err(P4Error::StepBudgetExhausted {
                budget: self.target.step_budget,
            });
        }
        Ok(())
    }

    fn exec_control(
        &mut self,
        c: &Control,
        phv: &mut Phv,
        outcome: &mut PacketOutcome,
    ) -> P4Result<bool> {
        // Returns false when an Exit was hit.
        match c {
            Control::Nop => Ok(true),
            Control::Seq(children) => {
                for child in children {
                    if !self.exec_control(child, phv, outcome)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Control::ApplyTable(tid) => {
                self.charge(outcome, 1)?;
                let table = self.tables.get(*tid).ok_or(P4Error::UnknownId {
                    kind: "table",
                    id: *tid,
                })?;
                let forced_miss = self
                    .fault_hook
                    .as_ref()
                    .is_some_and(|h| h.force_miss(self.packets_processed, &table.def.name));
                let hit = if forced_miss {
                    None
                } else {
                    table.lookup(phv).cloned()
                };
                outcome.tables_applied.push((*tid, hit.is_some()));
                let invocation = match hit {
                    Some(e) => Some((e.action, e.action_data)),
                    None => table.def.default_action.clone(),
                };
                if let Some((aid, data)) = invocation {
                    self.exec_action(aid, &data, phv, outcome)?;
                }
                Ok(true)
            }
            Control::ApplyAction(aid) => {
                self.exec_action(*aid, &[], phv, outcome)?;
                Ok(true)
            }
            Control::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.charge(outcome, 1)?;
                let a = self.eval(&cond.a, &[], phv)?;
                let b = self.eval(&cond.b, &[], phv)?;
                if cond.eval(a, b) {
                    self.exec_control(then_branch, phv, outcome)
                } else if let Some(e) = else_branch {
                    self.exec_control(e, phv, outcome)
                } else {
                    Ok(true)
                }
            }
            Control::Exit => Ok(false),
            Control::Recirculate => {
                self.charge(outcome, 1)?;
                outcome.recirculate_requested = true;
                Ok(true)
            }
        }
    }

    fn exec_action(
        &mut self,
        aid: usize,
        data: &[u64],
        phv: &mut Phv,
        outcome: &mut PacketOutcome,
    ) -> P4Result<()> {
        let action = self
            .actions
            .get(aid)
            .ok_or(P4Error::UnknownId {
                kind: "action",
                id: aid,
            })?
            .clone();
        for p in &action.primitives {
            let cost = if matches!(p, Primitive::Msb { .. }) {
                u64::from(self.target.msb_cost)
            } else {
                1
            };
            self.charge(outcome, cost)?;
            self.exec_primitive(aid, p, data, phv, outcome)?;
        }
        Ok(())
    }

    fn eval(&self, o: &Operand, data: &[u64], phv: &Phv) -> P4Result<u64> {
        match o {
            Operand::Const(v) => Ok(*v),
            Operand::Field(f) => Ok(phv.get(*f)),
            Operand::Data(n) => data.get(*n).copied().ok_or(P4Error::ActionDataOutOfBounds {
                action: usize::MAX,
                slot: *n,
            }),
        }
    }

    fn reg_index(&self, register: usize, index: u64) -> P4Result<usize> {
        let reg = self.registers.get(register).ok_or(P4Error::UnknownId {
            kind: "register",
            id: register,
        })?;
        if (index as usize) < reg.cells.len() {
            Ok(index as usize)
        } else {
            Err(P4Error::RegisterOutOfBounds {
                register,
                index,
                size: reg.cells.len() as u64,
            })
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec_primitive(
        &mut self,
        aid: usize,
        p: &Primitive,
        data: &[u64],
        phv: &mut Phv,
        outcome: &mut PacketOutcome,
    ) -> P4Result<()> {
        let fix_slot = |e: P4Error| match e {
            P4Error::ActionDataOutOfBounds { slot, .. } => {
                P4Error::ActionDataOutOfBounds { action: aid, slot }
            }
            other => other,
        };
        macro_rules! ev {
            ($o:expr) => {
                self.eval($o, data, phv).map_err(fix_slot)?
            };
        }
        match p {
            Primitive::Set { dst, src } => {
                let v = ev!(src);
                phv.set(*dst, v);
            }
            Primitive::Add { dst, a, b } => {
                let v = ev!(a).wrapping_add(ev!(b));
                phv.set(*dst, v);
            }
            Primitive::Sub { dst, a, b } => {
                let v = ev!(a).wrapping_sub(ev!(b));
                phv.set(*dst, v);
            }
            Primitive::And { dst, a, b } => {
                let v = ev!(a) & ev!(b);
                phv.set(*dst, v);
            }
            Primitive::Or { dst, a, b } => {
                let v = ev!(a) | ev!(b);
                phv.set(*dst, v);
            }
            Primitive::Xor { dst, a, b } => {
                let v = ev!(a) ^ ev!(b);
                phv.set(*dst, v);
            }
            Primitive::Not { dst, src } => {
                let v = !ev!(src);
                phv.set(*dst, v);
            }
            Primitive::Shl { dst, src, amount } => {
                let s = ev!(src);
                let n = ev!(amount);
                phv.set(*dst, if n >= 64 { 0 } else { s << n });
            }
            Primitive::Shr { dst, src, amount } => {
                let s = ev!(src);
                let n = ev!(amount);
                phv.set(*dst, if n >= 64 { 0 } else { s >> n });
            }
            Primitive::Mul { dst, a, b } => {
                let v = ev!(a).wrapping_mul(ev!(b));
                phv.set(*dst, v);
            }
            Primitive::Min { dst, a, b } => {
                let v = ev!(a).min(ev!(b));
                phv.set(*dst, v);
            }
            Primitive::Max { dst, a, b } => {
                let v = ev!(a).max(ev!(b));
                phv.set(*dst, v);
            }
            Primitive::Msb { dst, src } => {
                let s = ev!(src);
                let v = if s == 0 { 0 } else { 63 - u64::from(s.leading_zeros()) };
                phv.set(*dst, v);
            }
            Primitive::Hash {
                dst,
                src,
                salt,
                width_log2,
            } => {
                let key = ev!(src);
                let w = (*width_log2).clamp(1, 63);
                let mask = (1u64 << w) - 1;
                let v = (key.wrapping_mul(*salt | 1) >> (64 - w - 1)) & mask;
                phv.set(*dst, v);
            }
            Primitive::RegRead {
                dst,
                register,
                index,
            } => {
                let i = self.reg_index(*register, ev!(index))?;
                let v = self.registers[*register].cells[i];
                phv.set(*dst, v);
            }
            Primitive::RegWrite {
                register,
                index,
                src,
            } => {
                let i = self.reg_index(*register, ev!(index))?;
                let v = ev!(src);
                self.registers[*register].write_cell(i, v);
            }
            Primitive::Digest { id, values } => {
                let mut vals = Vec::with_capacity(values.len());
                for v in values {
                    vals.push(ev!(v));
                }
                outcome.digests.push(DigestRecord { id: *id, values: vals });
            }
            Primitive::Forward { port } => {
                let p = ev!(port);
                phv.set(fields::EGRESS_PORT, p);
            }
            Primitive::Drop => {
                phv.set(fields::EGRESS_PORT, DROP_PORT);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{CmpOp, Cond};
    use crate::phv::FieldId;
    use crate::program::ProgramBuilder;
    use crate::table::{Entry, MatchKind, MatchValue, TableDef};

    const M1_TEST: FieldId = fields::scratch(1);
    const M2_TEST: FieldId = fields::scratch(2);

    /// A counting pipeline: one register, one table binding dst-IP /8 to
    /// a per-prefix counter cell, default action forwards.
    fn counting_pipeline() -> Pipeline {
        let mut b = ProgramBuilder::new();
        let reg = b.add_register("counters", 64, 16);
        let fwd = b.add_action(ActionDef::new(
            "forward",
            vec![Primitive::Forward {
                port: Operand::Const(1),
            }],
        ));
        let count = b.add_action(ActionDef::new(
            "count",
            vec![
                // counters[data0] += pkt_len
                Primitive::RegRead {
                    dst: fields::M0,
                    register: reg,
                    index: Operand::Data(0),
                },
                Primitive::Add {
                    dst: fields::M0,
                    a: Operand::Field(fields::M0),
                    b: Operand::Field(fields::PKT_LEN),
                },
                Primitive::RegWrite {
                    register: reg,
                    index: Operand::Data(0),
                    src: Operand::Field(fields::M0),
                },
                Primitive::Forward {
                    port: Operand::Const(1),
                },
            ],
        ));
        let t = b.add_table(TableDef {
            name: "bind".into(),
            keys: vec![(fields::IPV4_DST, MatchKind::Lpm { width: 32 })],
            max_entries: 8,
            allowed_actions: vec![fwd, count],
            default_action: Some((fwd, vec![])),
        });
        b.set_control(Control::ApplyTable(t));
        let mut pipe = b.build(TargetModel::bmv2()).unwrap();
        pipe.tables[t]
            .insert(
                t,
                Entry {
                    key: vec![MatchValue::Lpm {
                        value: 0x0a00_0000,
                        prefix_len: 8,
                    }],
                    priority: 0,
                    action: count,
                    action_data: vec![3],
                },
            )
            .unwrap();
        pipe
    }

    fn phv_to(dst: u64, len: u64) -> Phv {
        let mut phv = Phv::new();
        phv.set(fields::IPV4_DST, dst);
        phv.set(fields::PKT_LEN, len);
        phv
    }

    #[test]
    fn counts_matching_traffic() {
        let mut p = counting_pipeline();
        let mut phv = phv_to(0x0a01_0203, 100);
        let out = p.process_phv(&mut phv).unwrap();
        assert_eq!(out.egress, Some(1));
        assert!(!out.dropped);
        assert_eq!(out.tables_applied, vec![(0, true)]);
        assert_eq!(p.registers()[0].cells[3], 100);

        let mut phv = phv_to(0x0a0f_ffff, 60);
        p.process_phv(&mut phv).unwrap();
        assert_eq!(p.registers()[0].cells[3], 160);
    }

    #[test]
    fn state_export_restore_round_trips() {
        let mut live = counting_pipeline();
        for i in 0..5u64 {
            let mut phv = phv_to(0x0a01_0203, 100 + i);
            live.process_phv(&mut phv).unwrap();
        }
        let state = live.export_state();

        // A fresh build of the same program picks the state up exactly.
        let mut fresh = counting_pipeline();
        fresh.restore_state(&state).unwrap();
        assert_eq!(fresh.registers(), live.registers());
        assert_eq!(fresh.packets_processed(), live.packets_processed());

        // A mismatched register file is rejected without mutation.
        let mut b = ProgramBuilder::new();
        b.add_register("other_reg", 64, 4);
        let noop = b.add_action(ActionDef::new("noop", vec![]));
        b.set_control(Control::ApplyAction(noop));
        let mut wrong = b.build(TargetModel::bmv2()).unwrap();
        let before = wrong.registers().to_vec();
        assert!(wrong.restore_state(&state).is_err());
        assert_eq!(wrong.registers(), &before[..], "rejected restore is a no-op");
    }

    #[test]
    fn miss_runs_default_action() {
        let mut p = counting_pipeline();
        let mut phv = phv_to(0x0b00_0001, 100);
        let out = p.process_phv(&mut phv).unwrap();
        assert_eq!(out.egress, Some(1));
        assert_eq!(out.tables_applied, vec![(0, false)]);
        assert_eq!(p.registers()[0].cells[3], 0, "no counting on miss");
    }

    #[test]
    fn drop_primitive() {
        let mut b = ProgramBuilder::new();
        let drop = b.add_action(ActionDef::new("drop", vec![Primitive::Drop]));
        b.set_control(Control::ApplyAction(drop));
        let mut p = b.build(TargetModel::bmv2()).unwrap();
        let mut phv = Phv::new();
        let out = p.process_phv(&mut phv).unwrap();
        assert!(out.dropped);
        assert_eq!(out.egress, None);
    }

    #[test]
    fn if_branches_on_field() {
        let mut b = ProgramBuilder::new();
        let syn = b.add_action(ActionDef::new(
            "mark_syn",
            vec![Primitive::Set {
                dst: M1_TEST,
                src: Operand::Const(77),
            }],
        ));
        b.set_control(Control::If {
            cond: Cond::new(
                Operand::Field(fields::TCP_IS_SYN),
                CmpOp::Eq,
                Operand::Const(1),
            ),
            then_branch: Box::new(Control::ApplyAction(syn)),
            else_branch: None,
        });
        let mut p = b.build(TargetModel::bmv2()).unwrap();
        let mut phv = Phv::new();
        phv.set(fields::TCP_IS_SYN, 1);
        p.process_phv(&mut phv).unwrap();
        assert_eq!(phv.get(M1_TEST), 77);

        let mut phv2 = Phv::new();
        p.process_phv(&mut phv2).unwrap();
        assert_eq!(phv2.get(M1_TEST), 0);
    }

    #[test]
    fn exit_stops_processing() {
        let mut b = ProgramBuilder::new();
        let set = b.add_action(ActionDef::new(
            "set",
            vec![Primitive::Set {
                dst: M1_TEST,
                src: Operand::Const(1),
            }],
        ));
        b.set_control(Control::Seq(vec![
            Control::Exit,
            Control::ApplyAction(set),
        ]));
        let mut p = b.build(TargetModel::bmv2()).unwrap();
        let mut phv = Phv::new();
        p.process_phv(&mut phv).unwrap();
        assert_eq!(phv.get(M1_TEST), 0, "statement after Exit skipped");
    }

    #[test]
    fn register_width_masks_writes() {
        let mut b = ProgramBuilder::new();
        let reg = b.add_register("narrow", 8, 4);
        let w = b.add_action(ActionDef::new(
            "w",
            vec![Primitive::RegWrite {
                register: reg,
                index: Operand::Const(0),
                src: Operand::Const(0x1ff),
            }],
        ));
        b.set_control(Control::ApplyAction(w));
        let mut p = b.build(TargetModel::bmv2()).unwrap();
        let mut phv = Phv::new();
        p.process_phv(&mut phv).unwrap();
        assert_eq!(p.registers()[0].cells[0], 0xff, "masked to 8 bits");
    }

    #[test]
    fn register_oob_is_error() {
        let mut b = ProgramBuilder::new();
        let reg = b.add_register("r", 64, 2);
        let w = b.add_action(ActionDef::new(
            "w",
            vec![Primitive::RegWrite {
                register: reg,
                index: Operand::Const(5),
                src: Operand::Const(1),
            }],
        ));
        b.set_control(Control::ApplyAction(w));
        let mut p = b.build(TargetModel::bmv2()).unwrap();
        let mut phv = Phv::new();
        assert!(matches!(
            p.process_phv(&mut phv),
            Err(P4Error::RegisterOutOfBounds {
                index: 5,
                size: 2,
                ..
            })
        ));
    }

    #[test]
    fn digest_reaches_outcome() {
        let mut b = ProgramBuilder::new();
        let d = b.add_action(ActionDef::new(
            "alert",
            vec![Primitive::Digest {
                id: 42,
                values: vec![Operand::Const(7), Operand::Field(fields::PKT_LEN)],
            }],
        ));
        b.set_control(Control::ApplyAction(d));
        let mut p = b.build(TargetModel::bmv2()).unwrap();
        let mut phv = Phv::new();
        phv.set(fields::PKT_LEN, 99);
        let out = p.process_phv(&mut phv).unwrap();
        assert_eq!(out.digests.len(), 1);
        assert_eq!(out.digests[0].id, 42);
        assert_eq!(out.digests[0].values, vec![7, 99]);
    }

    #[test]
    fn msb_primitive_and_cost() {
        let mut b = ProgramBuilder::new();
        let m = b.add_action(ActionDef::new(
            "msb",
            vec![Primitive::Msb {
                dst: M1_TEST,
                src: Operand::Field(fields::PKT_LEN),
            }],
        ));
        b.set_control(Control::ApplyAction(m));
        let mut p = b.build(TargetModel::bmv2()).unwrap();
        let mut phv = Phv::new();
        phv.set(fields::PKT_LEN, 106);
        let out = p.process_phv(&mut phv).unwrap();
        assert_eq!(phv.get(M1_TEST), 6);
        assert_eq!(out.steps, u64::from(TargetModel::bmv2().msb_cost));

        let mut phv0 = Phv::new();
        p.process_phv(&mut phv0).unwrap();
        assert_eq!(phv0.get(M1_TEST), 0, "msb(0) = 0");
    }

    #[test]
    fn fault_hook_seu_flip_corrupts_register_before_packet() {
        use crate::fault::{ScheduledFaults, SeuEvent, SeuRecovery};
        let mut p = counting_pipeline();
        p.set_fault_hook(Some(Box::new(ScheduledFaults::new(
            vec![SeuEvent { register: "counters".into(), cell: 3, bit: 10, at_packet: 1 }],
            vec![],
            SeuRecovery::None,
        ))));
        // Packet 0: no fault yet, counts 100 into cell 3.
        p.process_phv(&mut phv_to(0x0a01_0203, 100)).unwrap();
        assert_eq!(p.registers()[0].cells[3], 100);
        // Packet 1: flip bit 10 first, then count 60 more.
        p.process_phv(&mut phv_to(0x0a01_0203, 60)).unwrap();
        assert_eq!(p.registers()[0].cells[3], (100 ^ (1 << 10)) + 60);
        // Cloning the pipeline clones the hook.
        let _ = p.clone();
    }

    #[test]
    fn fault_hook_forced_miss_runs_default_action() {
        use crate::fault::{MissWindow, ScheduledFaults, SeuRecovery};
        let mut p = counting_pipeline();
        p.set_fault_hook(Some(Box::new(ScheduledFaults::new(
            vec![],
            vec![MissWindow { table: "bind".into(), from_packet: 0, to_packet: 1 }],
            SeuRecovery::None,
        ))));
        // Packet 0 is inside the miss window: matching traffic is not
        // counted, the default action still forwards.
        let out = p.process_phv(&mut phv_to(0x0a01_0203, 100)).unwrap();
        assert_eq!(out.tables_applied, vec![(0, false)]);
        assert_eq!(out.egress, Some(1));
        assert_eq!(p.registers()[0].cells[3], 0);
        // Packet 1 is past the window: normal hit.
        let out = p.process_phv(&mut phv_to(0x0a01_0203, 100)).unwrap();
        assert_eq!(out.tables_applied, vec![(0, true)]);
        assert_eq!(p.registers()[0].cells[3], 100);
    }

    #[test]
    fn shift_saturation_past_width() {
        let mut b = ProgramBuilder::new();
        let a = b.add_action(ActionDef::new(
            "s",
            vec![
                Primitive::Shl {
                    dst: M1_TEST,
                    src: Operand::Const(1),
                    amount: Operand::Const(70),
                },
                Primitive::Shr {
                    dst: M2_TEST,
                    src: Operand::Const(u64::MAX),
                    amount: Operand::Const(64),
                },
            ],
        ));
        b.set_control(Control::ApplyAction(a));
        let mut p = b.build(TargetModel::bmv2()).unwrap();
        let mut phv = Phv::new();
        p.process_phv(&mut phv).unwrap();
        assert_eq!(phv.get(M1_TEST), 0);
        assert_eq!(phv.get(M2_TEST), 0);
    }

}
