//! Loop-free control flow: sequences, branches, table applications.
//!
//! A P4 control is a straight-line program over `apply` statements; the
//! simulator models it as a tree, so loops are unrepresentable. A table
//! can appear at most once on any root-to-leaf path (checked at build
//! time), mirroring the P4 rule that a table may be applied at most
//! once per packet.

use crate::action::Operand;
use serde::{Deserialize, Serialize};

/// Comparison operator for branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A branch condition `a op b` over operands (unsigned comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cond {
    /// Left operand.
    pub a: Operand,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub b: Operand,
}

impl Cond {
    /// Builds a condition.
    #[must_use]
    pub fn new(a: Operand, op: CmpOp, b: Operand) -> Self {
        Self { a, op, b }
    }

    /// Evaluates with already-resolved operand values.
    #[must_use]
    pub fn eval(&self, a: u64, b: u64) -> bool {
        match self.op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// One node of the control tree.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Control {
    /// Do nothing (the default; also what `Seq(vec![])` means).
    #[default]
    Nop,
    /// Execute children in order.
    Seq(Vec<Control>),
    /// Apply a match-action table.
    ApplyTable(usize),
    /// Invoke an action directly (no table, no action data).
    ApplyAction(usize),
    /// Two-way branch.
    If {
        /// The condition.
        cond: Cond,
        /// Taken when the condition holds.
        then_branch: Box<Control>,
        /// Taken otherwise (optional).
        else_branch: Option<Box<Control>>,
    },
    /// Stop processing this packet (remaining control skipped).
    Exit,
    /// Request another pipeline pass for this packet once the current
    /// pass completes (bmv2's `recirculate()`): PHV state persists
    /// across passes. Bounded by the target's `max_recirculations` —
    /// the costly operation the paper's one-step-per-packet median rule
    /// exists to avoid.
    Recirculate,
}

impl Control {
    /// Convenience: an empty control.
    #[must_use]
    pub fn empty() -> Self {
        Control::Seq(Vec::new())
    }

    /// All table ids referenced anywhere in the tree.
    #[must_use]
    pub fn tables(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit(&mut |c| {
            if let Control::ApplyTable(t) = c {
                out.push(*t);
            }
        });
        out
    }

    /// All directly applied action ids anywhere in the tree.
    #[must_use]
    pub fn direct_actions(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit(&mut |c| {
            if let Control::ApplyAction(a) = c {
                out.push(*a);
            }
        });
        out
    }

    fn visit(&self, f: &mut impl FnMut(&Control)) {
        f(self);
        match self {
            Control::Seq(children) => {
                for c in children {
                    c.visit(f);
                }
            }
            Control::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.visit(f);
                if let Some(e) = else_branch {
                    e.visit(f);
                }
            }
            _ => {}
        }
    }

    /// True if some root-to-leaf execution path applies the same table
    /// twice (illegal in P4).
    #[must_use]
    pub fn has_repeated_table_on_path(&self) -> bool {
        fn walk(c: &Control, seen: &mut Vec<usize>) -> bool {
            match c {
                Control::ApplyTable(t) => {
                    if seen.contains(t) {
                        return true;
                    }
                    seen.push(*t);
                    false
                }
                Control::Seq(children) => children.iter().any(|ch| walk(ch, seen)),
                Control::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    // Branches are alternatives: each explores its own
                    // copy; afterwards, conservatively consider the union
                    // of both branches' applications as applied.
                    let mut then_seen = seen.clone();
                    if walk(then_branch, &mut then_seen) {
                        return true;
                    }
                    let mut else_seen = seen.clone();
                    if let Some(e) = else_branch {
                        if walk(e, &mut else_seen) {
                            return true;
                        }
                    }
                    for t in else_seen {
                        if !then_seen.contains(&t) {
                            then_seen.push(t);
                        }
                    }
                    *seen = then_seen;
                    false
                }
                _ => false,
            }
        }
        let mut seen = Vec::new();
        walk(self, &mut seen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phv::fields;

    #[test]
    fn cond_eval_all_ops() {
        let mk = |op| Cond::new(Operand::Const(0), op, Operand::Const(0));
        assert!(mk(CmpOp::Eq).eval(3, 3));
        assert!(!mk(CmpOp::Eq).eval(3, 4));
        assert!(mk(CmpOp::Ne).eval(3, 4));
        assert!(mk(CmpOp::Lt).eval(3, 4));
        assert!(!mk(CmpOp::Lt).eval(4, 4));
        assert!(mk(CmpOp::Le).eval(4, 4));
        assert!(mk(CmpOp::Gt).eval(5, 4));
        assert!(mk(CmpOp::Ge).eval(4, 4));
    }

    #[test]
    fn table_collection() {
        let c = Control::Seq(vec![
            Control::ApplyTable(0),
            Control::If {
                cond: Cond::new(
                    Operand::Field(fields::IPV4_VALID),
                    CmpOp::Eq,
                    Operand::Const(1),
                ),
                then_branch: Box::new(Control::ApplyTable(1)),
                else_branch: Some(Box::new(Control::ApplyTable(2))),
            },
            Control::ApplyAction(5),
        ]);
        assert_eq!(c.tables(), vec![0, 1, 2]);
        assert_eq!(c.direct_actions(), vec![5]);
        assert!(!c.has_repeated_table_on_path());
    }

    #[test]
    fn repeated_table_detected() {
        let c = Control::Seq(vec![Control::ApplyTable(0), Control::ApplyTable(0)]);
        assert!(c.has_repeated_table_on_path());
    }

    #[test]
    fn same_table_in_exclusive_branches_ok() {
        let c = Control::If {
            cond: Cond::new(Operand::Const(1), CmpOp::Eq, Operand::Const(1)),
            then_branch: Box::new(Control::ApplyTable(3)),
            else_branch: Some(Box::new(Control::ApplyTable(3))),
        };
        assert!(!c.has_repeated_table_on_path());
    }

    #[test]
    fn table_after_branch_that_applied_it_detected() {
        let c = Control::Seq(vec![
            Control::If {
                cond: Cond::new(Operand::Const(1), CmpOp::Eq, Operand::Const(1)),
                then_branch: Box::new(Control::ApplyTable(3)),
                else_branch: None,
            },
            Control::ApplyTable(3),
        ]);
        assert!(c.has_repeated_table_on_path());
    }

    #[test]
    fn empty_control() {
        let c = Control::empty();
        assert!(c.tables().is_empty());
        assert!(!c.has_repeated_table_on_path());
    }
}
