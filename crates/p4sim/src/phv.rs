//! The Packet Header Vector: per-packet fields the pipeline reads and
//! writes.
//!
//! Real PHVs are width-typed containers packed by the compiler; here a
//! fixed array of 64-bit slots suffices, with the well-known header and
//! metadata fields given stable ids so programs, the parser and tests
//! agree on the layout. Scratch metadata slots `M0..M15` hold
//! intermediate values inside action chains, mirroring P4 user metadata.

use serde::{Deserialize, Serialize};

/// Index of a field in the PHV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FieldId(pub u16);

/// Well-known fields populated by the parser plus standard metadata.
pub mod fields {
    use super::FieldId;

    /// Ingress port (metadata).
    pub const INGRESS_PORT: FieldId = FieldId(0);
    /// Full frame length in bytes (metadata).
    pub const PKT_LEN: FieldId = FieldId(1);
    /// Simulation timestamp in nanoseconds (metadata).
    pub const TIMESTAMP_NS: FieldId = FieldId(2);

    /// Ethernet destination MAC (lower 48 bits).
    pub const ETH_DST: FieldId = FieldId(3);
    /// Ethernet source MAC (lower 48 bits).
    pub const ETH_SRC: FieldId = FieldId(4);
    /// EtherType.
    pub const ETH_TYPE: FieldId = FieldId(5);

    /// 1 if an IPv4 header was parsed.
    pub const IPV4_VALID: FieldId = FieldId(6);
    /// IPv4 source address.
    pub const IPV4_SRC: FieldId = FieldId(7);
    /// IPv4 destination address.
    pub const IPV4_DST: FieldId = FieldId(8);
    /// IPv4 protocol number.
    pub const IPV4_PROTO: FieldId = FieldId(9);
    /// IPv4 TTL.
    pub const IPV4_TTL: FieldId = FieldId(10);
    /// IPv4 total length.
    pub const IPV4_LEN: FieldId = FieldId(11);

    /// 1 if a TCP header was parsed.
    pub const TCP_VALID: FieldId = FieldId(12);
    /// TCP source port.
    pub const TCP_SPORT: FieldId = FieldId(13);
    /// TCP destination port.
    pub const TCP_DPORT: FieldId = FieldId(14);
    /// TCP flags byte.
    pub const TCP_FLAGS: FieldId = FieldId(15);
    /// 1 if the segment is a pure SYN (SYN set, ACK clear).
    pub const TCP_IS_SYN: FieldId = FieldId(16);

    /// 1 if a UDP header was parsed.
    pub const UDP_VALID: FieldId = FieldId(17);
    /// UDP source port.
    pub const UDP_SPORT: FieldId = FieldId(18);
    /// UDP destination port.
    pub const UDP_DPORT: FieldId = FieldId(19);

    /// First 8 payload bytes, big-endian (0 when absent) — the echo
    /// application's "value of interest" carried in the frame body.
    pub const PAYLOAD_VALUE: FieldId = FieldId(20);

    /// Egress port chosen by the pipeline (metadata; `DROP_PORT` =
    /// dropped).
    pub const EGRESS_PORT: FieldId = FieldId(21);

    /// First scratch metadata slot; `M0..M23` are `FieldId(22..46)`.
    pub const M0: FieldId = FieldId(22);

    /// Number of scratch slots.
    pub const SCRATCH_COUNT: u16 = 24;

    /// The `i`-th scratch metadata slot (`i < SCRATCH_COUNT`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= SCRATCH_COUNT`.
    #[must_use]
    pub const fn scratch(i: u16) -> FieldId {
        assert!(i < SCRATCH_COUNT);
        FieldId(M0.0 + i)
    }

    /// Total PHV slots.
    pub const FIELD_COUNT: usize = (M0.0 + SCRATCH_COUNT) as usize;
}

/// Sentinel egress value meaning "dropped".
pub const DROP_PORT: u64 = u64::MAX;

/// A packet's header vector: one 64-bit slot per field.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phv {
    slots: Vec<u64>,
}

impl Default for Phv {
    fn default() -> Self {
        Self::new()
    }
}

impl Phv {
    /// An all-zero PHV.
    #[must_use]
    pub fn new() -> Self {
        Self {
            slots: vec![0; fields::FIELD_COUNT],
        }
    }

    /// Reads a field (0 for ids beyond the layout, matching P4's
    /// invalid-header reads).
    #[must_use]
    pub fn get(&self, f: FieldId) -> u64 {
        self.slots.get(f.0 as usize).copied().unwrap_or(0)
    }

    /// Writes a field; writes to out-of-layout ids are ignored.
    pub fn set(&mut self, f: FieldId, v: u64) {
        if let Some(slot) = self.slots.get_mut(f.0 as usize) {
            *slot = v;
        }
    }

    /// True if the pipeline marked the packet dropped.
    #[must_use]
    pub fn dropped(&self) -> bool {
        self.get(fields::EGRESS_PORT) == DROP_PORT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut p = Phv::new();
        assert_eq!(p.get(fields::IPV4_DST), 0);
        p.set(fields::IPV4_DST, 0x0a000506);
        assert_eq!(p.get(fields::IPV4_DST), 0x0a000506);
    }

    #[test]
    fn out_of_layout_reads_zero() {
        let mut p = Phv::new();
        let bogus = FieldId(9999);
        assert_eq!(p.get(bogus), 0);
        p.set(bogus, 77); // ignored
        assert_eq!(p.get(bogus), 0);
    }

    #[test]
    fn scratch_slots_distinct() {
        let a = fields::scratch(0);
        let b = fields::scratch(23);
        assert_ne!(a, b);
        assert_eq!(a, fields::M0);
        let mut p = Phv::new();
        p.set(a, 1);
        p.set(b, 2);
        assert_eq!(p.get(a), 1);
        assert_eq!(p.get(b), 2);
    }

    #[test]
    fn drop_sentinel() {
        let mut p = Phv::new();
        assert!(!p.dropped());
        p.set(fields::EGRESS_PORT, DROP_PORT);
        assert!(p.dropped());
    }
}
