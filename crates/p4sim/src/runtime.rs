//! The control-plane runtime API.
//!
//! Controllers do not touch pipeline internals; they send
//! [`RuntimeRequest`]s — insert/modify/delete table entries (the paper's
//! binding-table updates), read registers (pulling tracked
//! distributions), write/reset registers. In the network simulator these
//! requests travel over a latency-modelled channel, which is how the
//! case study's "2–3 seconds to pinpoint, dominated by control/data
//! plane interaction" arises.

use crate::error::P4Error;
use crate::pipeline::Pipeline;
use crate::table::{Entry, MatchValue};
use serde::{Deserialize, Serialize};

/// A control-plane operation on a running pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RuntimeRequest {
    /// Insert a table entry.
    InsertEntry {
        /// Target table.
        table: usize,
        /// The entry.
        entry: Entry,
    },
    /// Modify the action/data of the entry with the given key.
    ModifyEntry {
        /// Target table.
        table: usize,
        /// Key of the entry to change.
        key: Vec<MatchValue>,
        /// New action id.
        action: usize,
        /// New action data.
        action_data: Vec<u64>,
    },
    /// Delete the entry with the given key.
    DeleteEntry {
        /// Target table.
        table: usize,
        /// Key of the entry to delete.
        key: Vec<MatchValue>,
    },
    /// Remove all entries of a table.
    ClearTable {
        /// Target table.
        table: usize,
    },
    /// Read one register cell.
    ReadRegister {
        /// Register id.
        register: usize,
        /// Cell index.
        index: u64,
    },
    /// Read `len` cells starting at `start` (how the controller pulls a
    /// whole tracked distribution; the paper notes reading thousands of
    /// registers takes milliseconds — the simulator charges latency per
    /// cell).
    ReadRegisterRange {
        /// Register id.
        register: usize,
        /// First cell.
        start: u64,
        /// Number of cells.
        len: u64,
    },
    /// Write one register cell.
    WriteRegister {
        /// Register id.
        register: usize,
        /// Cell index.
        index: u64,
        /// Value (masked to the register width).
        value: u64,
    },
    /// Zero every cell of a register.
    ResetRegister {
        /// Register id.
        register: usize,
    },
    /// Apply a sequence of requests as one control-plane operation.
    ///
    /// A multi-step reconfiguration (clear a binding table, install new
    /// bindings, bump the generation register) must never be observed
    /// half-applied: on a lossy or reordering control channel, sending
    /// the steps as separate messages lets some land and others vanish.
    /// A batch travels in a single message, so it arrives — and applies
    /// back-to-back, with no packets or other requests interleaved — or
    /// it doesn't arrive at all. Sub-requests run in order; the first
    /// failure stops the batch and is returned (already-applied
    /// sub-requests are not rolled back). The response is that of the
    /// last sub-request, so a batch may end in a read.
    Batch(Vec<RuntimeRequest>),
}

/// Reply to a [`RuntimeRequest`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuntimeResponse {
    /// Operation succeeded with no payload.
    Ok,
    /// A single register value.
    Value(u64),
    /// A range of register values.
    Values(Vec<u64>),
    /// Operation failed.
    Error(String),
}

impl RuntimeResponse {
    /// True for non-error responses.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        !matches!(self, RuntimeResponse::Error(_))
    }
}

impl Pipeline {
    /// Executes a control-plane request against this pipeline.
    pub fn runtime(&mut self, req: &RuntimeRequest) -> RuntimeResponse {
        match self.runtime_inner(req) {
            Ok(r) => r,
            Err(e) => RuntimeResponse::Error(e.to_string()),
        }
    }

    fn runtime_inner(&mut self, req: &RuntimeRequest) -> Result<RuntimeResponse, P4Error> {
        match req {
            RuntimeRequest::InsertEntry { table, entry } => {
                self.validate_entry(*table, entry.action, &entry.action_data)?;
                let t = self.tables.get_mut(*table).ok_or(P4Error::UnknownId {
                    kind: "table",
                    id: *table,
                })?;
                t.insert(*table, entry.clone())?;
                Ok(RuntimeResponse::Ok)
            }
            RuntimeRequest::ModifyEntry {
                table,
                key,
                action,
                action_data,
            } => {
                self.validate_entry(*table, *action, action_data)?;
                let t = self.tables.get_mut(*table).ok_or(P4Error::UnknownId {
                    kind: "table",
                    id: *table,
                })?;
                t.modify(*table, key, *action, action_data.clone())?;
                Ok(RuntimeResponse::Ok)
            }
            RuntimeRequest::DeleteEntry { table, key } => {
                let t = self.tables.get_mut(*table).ok_or(P4Error::UnknownId {
                    kind: "table",
                    id: *table,
                })?;
                t.remove(*table, key)?;
                Ok(RuntimeResponse::Ok)
            }
            RuntimeRequest::ClearTable { table } => {
                let t = self.tables.get_mut(*table).ok_or(P4Error::UnknownId {
                    kind: "table",
                    id: *table,
                })?;
                t.clear();
                Ok(RuntimeResponse::Ok)
            }
            RuntimeRequest::ReadRegister { register, index } => {
                let r = self.registers.get(*register).ok_or(P4Error::UnknownId {
                    kind: "register",
                    id: *register,
                })?;
                let cell =
                    r.cells
                        .get(*index as usize)
                        .ok_or(P4Error::RegisterOutOfBounds {
                            register: *register,
                            index: *index,
                            size: r.cells.len() as u64,
                        })?;
                Ok(RuntimeResponse::Value(*cell))
            }
            RuntimeRequest::ReadRegisterRange {
                register,
                start,
                len,
            } => {
                let r = self.registers.get(*register).ok_or(P4Error::UnknownId {
                    kind: "register",
                    id: *register,
                })?;
                let end = start.saturating_add(*len);
                if end > r.cells.len() as u64 {
                    return Err(P4Error::RegisterOutOfBounds {
                        register: *register,
                        index: end,
                        size: r.cells.len() as u64,
                    });
                }
                Ok(RuntimeResponse::Values(
                    r.cells[*start as usize..end as usize].to_vec(),
                ))
            }
            RuntimeRequest::WriteRegister {
                register,
                index,
                value,
            } => {
                let size = self
                    .registers
                    .get(*register)
                    .ok_or(P4Error::UnknownId {
                        kind: "register",
                        id: *register,
                    })?
                    .cells
                    .len() as u64;
                if *index >= size {
                    return Err(P4Error::RegisterOutOfBounds {
                        register: *register,
                        index: *index,
                        size,
                    });
                }
                self.registers[*register].write_cell(*index as usize, *value);
                Ok(RuntimeResponse::Ok)
            }
            RuntimeRequest::ResetRegister { register } => {
                let r = self.registers.get_mut(*register).ok_or(P4Error::UnknownId {
                    kind: "register",
                    id: *register,
                })?;
                // Journal the cells actually holding state so a reset
                // ships as (base → 0) entries rather than tainting the
                // whole delta path.
                for i in 0..r.cells.len() {
                    if r.cells[i] != 0 {
                        r.write_cell(i, 0);
                    }
                }
                Ok(RuntimeResponse::Ok)
            }
            RuntimeRequest::Batch(reqs) => {
                let mut last = RuntimeResponse::Ok;
                for r in reqs {
                    last = self.runtime_inner(r)?;
                }
                Ok(last)
            }
        }
    }

    fn validate_entry(&self, table: usize, action: usize, data: &[u64]) -> Result<(), P4Error> {
        let t = self.tables.get(table).ok_or(P4Error::UnknownId {
            kind: "table",
            id: table,
        })?;
        if !t.def.allowed_actions.contains(&action) {
            return Err(P4Error::Invalid {
                what: format!("action {action} not allowed in table {table}"),
            });
        }
        let a = self.actions.get(action).ok_or(P4Error::UnknownId {
            kind: "action",
            id: action,
        })?;
        let need = a.data_slots_required();
        if data.len() < need {
            return Err(P4Error::Invalid {
                what: format!("entry provides {} data slots, action needs {need}", data.len()),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionDef, Operand, Primitive};
    use crate::control::Control;
    use crate::phv::fields;
    use crate::program::ProgramBuilder;
    use crate::table::{MatchKind, TableDef};
    use crate::target::TargetModel;

    fn pipeline() -> (Pipeline, usize, usize) {
        let mut b = ProgramBuilder::new();
        let reg = b.add_register("r", 32, 8);
        let fwd = b.add_action(ActionDef::new(
            "fwd",
            vec![Primitive::Forward {
                port: Operand::Data(0),
            }],
        ));
        let t = b.add_table(TableDef {
            name: "t".into(),
            keys: vec![(fields::IPV4_DST, MatchKind::Exact)],
            max_entries: 4,
            allowed_actions: vec![fwd],
            default_action: None,
        });
        b.set_control(Control::ApplyTable(t));
        (b.build(TargetModel::bmv2()).unwrap(), t, reg)
    }

    #[test]
    fn batch_applies_in_order_and_is_replayable() {
        let (mut p, t, reg) = pipeline();
        // The drill-down shape: clear, rebind, bump generation, in one
        // atomic message. Ends in a read so the response is checkable.
        let batch = RuntimeRequest::Batch(vec![
            RuntimeRequest::ClearTable { table: t },
            RuntimeRequest::InsertEntry {
                table: t,
                entry: Entry {
                    key: vec![MatchValue::Exact(9)],
                    priority: 0,
                    action: 0,
                    action_data: vec![2],
                },
            },
            RuntimeRequest::WriteRegister {
                register: reg,
                index: 1,
                value: 5,
            },
            RuntimeRequest::ReadRegister {
                register: reg,
                index: 1,
            },
        ]);
        assert_eq!(p.runtime(&batch), RuntimeResponse::Value(5));
        // A duplicated delivery (retry after a lost ack) reapplies
        // cleanly because the batch starts from a table clear.
        assert_eq!(p.runtime(&batch), RuntimeResponse::Value(5));
    }

    #[test]
    fn batch_stops_at_first_error() {
        let (mut p, _, reg) = pipeline();
        let batch = RuntimeRequest::Batch(vec![
            RuntimeRequest::WriteRegister {
                register: reg,
                index: 0,
                value: 1,
            },
            RuntimeRequest::ReadRegister {
                register: reg,
                index: 999,
            },
            RuntimeRequest::WriteRegister {
                register: reg,
                index: 2,
                value: 7,
            },
        ]);
        assert!(!p.runtime(&batch).is_ok());
        // The pre-error write landed; the post-error write never ran.
        assert_eq!(
            p.runtime(&RuntimeRequest::ReadRegister {
                register: reg,
                index: 0
            }),
            RuntimeResponse::Value(1)
        );
        assert_eq!(
            p.runtime(&RuntimeRequest::ReadRegister {
                register: reg,
                index: 2
            }),
            RuntimeResponse::Value(0)
        );
    }

    #[test]
    fn insert_validates_action_membership() {
        let (mut p, t, _) = pipeline();
        let bad = RuntimeRequest::InsertEntry {
            table: t,
            entry: Entry {
                key: vec![MatchValue::Exact(1)],
                priority: 0,
                action: 99,
                action_data: vec![],
            },
        };
        assert!(!p.runtime(&bad).is_ok());
    }

    #[test]
    fn insert_validates_data_arity() {
        let (mut p, t, _) = pipeline();
        let bad = RuntimeRequest::InsertEntry {
            table: t,
            entry: Entry {
                key: vec![MatchValue::Exact(1)],
                priority: 0,
                action: 0,
                action_data: vec![], // fwd needs 1 slot
            },
        };
        assert!(!p.runtime(&bad).is_ok());
        let good = RuntimeRequest::InsertEntry {
            table: t,
            entry: Entry {
                key: vec![MatchValue::Exact(1)],
                priority: 0,
                action: 0,
                action_data: vec![7],
            },
        };
        assert_eq!(p.runtime(&good), RuntimeResponse::Ok);
    }

    #[test]
    fn register_read_write_reset() {
        let (mut p, _, reg) = pipeline();
        assert_eq!(
            p.runtime(&RuntimeRequest::WriteRegister {
                register: reg,
                index: 3,
                value: 0x1_0000_0001, // masked to 32 bits
            }),
            RuntimeResponse::Ok
        );
        assert_eq!(
            p.runtime(&RuntimeRequest::ReadRegister {
                register: reg,
                index: 3
            }),
            RuntimeResponse::Value(1)
        );
        assert_eq!(
            p.runtime(&RuntimeRequest::ReadRegisterRange {
                register: reg,
                start: 2,
                len: 3
            }),
            RuntimeResponse::Values(vec![0, 1, 0])
        );
        assert_eq!(
            p.runtime(&RuntimeRequest::ResetRegister { register: reg }),
            RuntimeResponse::Ok
        );
        assert_eq!(
            p.runtime(&RuntimeRequest::ReadRegister {
                register: reg,
                index: 3
            }),
            RuntimeResponse::Value(0)
        );
    }

    #[test]
    fn oob_reads_are_errors() {
        let (mut p, _, reg) = pipeline();
        assert!(!p
            .runtime(&RuntimeRequest::ReadRegister {
                register: reg,
                index: 100
            })
            .is_ok());
        assert!(!p
            .runtime(&RuntimeRequest::ReadRegisterRange {
                register: reg,
                start: 6,
                len: 4
            })
            .is_ok());
        assert!(!p
            .runtime(&RuntimeRequest::ReadRegister {
                register: 42,
                index: 0
            })
            .is_ok());
    }

    #[test]
    fn modify_delete_clear_flow() {
        let (mut p, t, _) = pipeline();
        let key = vec![MatchValue::Exact(5)];
        p.runtime(&RuntimeRequest::InsertEntry {
            table: t,
            entry: Entry {
                key: key.clone(),
                priority: 0,
                action: 0,
                action_data: vec![1],
            },
        });
        assert_eq!(
            p.runtime(&RuntimeRequest::ModifyEntry {
                table: t,
                key: key.clone(),
                action: 0,
                action_data: vec![2],
            }),
            RuntimeResponse::Ok
        );
        assert_eq!(p.tables()[t].entries()[0].action_data, vec![2]);
        assert_eq!(
            p.runtime(&RuntimeRequest::DeleteEntry {
                table: t,
                key: key.clone()
            }),
            RuntimeResponse::Ok
        );
        assert!(!p
            .runtime(&RuntimeRequest::DeleteEntry { table: t, key })
            .is_ok());
        assert_eq!(
            p.runtime(&RuntimeRequest::ClearTable { table: t }),
            RuntimeResponse::Ok
        );
    }
}
