//! Error type for program construction, validation and execution.

use std::fmt;

/// Errors from building, validating or running a pipeline program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum P4Error {
    /// Reference to a table/action/register/field that does not exist.
    UnknownId {
        /// What kind of object was referenced.
        kind: &'static str,
        /// The offending id.
        id: usize,
    },
    /// A primitive the selected target cannot execute.
    UnsupportedOnTarget {
        /// Description of the rejected operation.
        what: &'static str,
        /// Target name.
        target: &'static str,
    },
    /// Register index out of bounds at runtime.
    RegisterOutOfBounds {
        /// Register id.
        register: usize,
        /// Index accessed.
        index: u64,
        /// Register array size.
        size: u64,
    },
    /// The per-packet step budget was exhausted (would indicate a loop
    /// or an unreasonably deep program).
    StepBudgetExhausted {
        /// The configured budget.
        budget: u64,
    },
    /// A table entry's key shape does not match the table definition.
    KeyShapeMismatch {
        /// Table id.
        table: usize,
        /// Expected number of key components.
        expected: usize,
        /// Provided number.
        provided: usize,
    },
    /// Table is full (max_entries reached).
    TableFull {
        /// Table id.
        table: usize,
    },
    /// Entry not found for modify/delete.
    EntryNotFound {
        /// Table id.
        table: usize,
    },
    /// An action referenced action-data beyond what the entry provides.
    ActionDataOutOfBounds {
        /// Action id.
        action: usize,
        /// Slot index requested.
        slot: usize,
    },
    /// Program validation found a structural problem.
    Invalid {
        /// Description.
        what: String,
    },
    /// A shard worker thread panicked during sharded replay. The other
    /// shards completed (or failed) normally; this shard's register
    /// state is whatever the panic left behind and must be discarded.
    ShardPanicked {
        /// Shard index whose worker died.
        shard: usize,
        /// The captured panic message, if it was a string.
        message: String,
    },
}

/// Convenience alias.
pub type P4Result<T> = Result<T, P4Error>;

impl fmt::Display for P4Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            P4Error::UnknownId { kind, id } => write!(f, "unknown {kind} id {id}"),
            P4Error::UnsupportedOnTarget { what, target } => {
                write!(f, "{what} is not supported on target {target}")
            }
            P4Error::RegisterOutOfBounds {
                register,
                index,
                size,
            } => write!(
                f,
                "register {register}: index {index} out of bounds (size {size})"
            ),
            P4Error::StepBudgetExhausted { budget } => {
                write!(f, "per-packet step budget {budget} exhausted")
            }
            P4Error::KeyShapeMismatch {
                table,
                expected,
                provided,
            } => write!(
                f,
                "table {table}: entry key has {provided} components, expected {expected}"
            ),
            P4Error::TableFull { table } => write!(f, "table {table} is full"),
            P4Error::EntryNotFound { table } => write!(f, "no such entry in table {table}"),
            P4Error::ActionDataOutOfBounds { action, slot } => {
                write!(f, "action {action}: action-data slot {slot} not provided")
            }
            P4Error::Invalid { what } => write!(f, "invalid program: {what}"),
            P4Error::ShardPanicked { shard, message } => {
                write!(f, "shard {shard} worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for P4Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = P4Error::RegisterOutOfBounds {
            register: 3,
            index: 10,
            size: 8,
        };
        let s = e.to_string();
        assert!(s.contains("register 3") && s.contains("10") && s.contains("8"));
        assert!(P4Error::TableFull { table: 1 }.to_string().contains("full"));
    }
}
