//! The action instruction set — deliberately restricted to what P4
//! targets provide.
//!
//! There is **no division, no modulo, no square root** anywhere in
//! [`Primitive`]: the type system of the simulator makes the paper's
//! central constraint unrepresentable. Multiplication and
//! variable-distance shifts exist but are *validated against the
//! target* ([`crate::target::TargetModel`]): the bmv2 preset accepts
//! them, the Tofino-like preset rejects runtime multiplication and
//! non-constant shift distances, forcing programs onto the paper's
//! shift-based approximations.
//!
//! [`Primitive::Msb`] (most-significant-bit position) deserves a note:
//! the paper implements it "using a sequence of ifs, which is a costly
//! operation", or alternatively a TCAM longest-prefix match. It is kept
//! as one primitive so the interpreter is fast, but the resource
//! analyser charges it `TargetModel::msb_cost` sequential steps.

use crate::phv::FieldId;
use serde::{Deserialize, Serialize};

/// A value source for a primitive: a literal, a PHV field, or a slot of
/// the matched table entry's action data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operand {
    /// Compile-time constant.
    Const(u64),
    /// Read a PHV field.
    Field(FieldId),
    /// Read slot `n` of the matched entry's action data (how binding
    /// tables parameterise behaviour at runtime).
    Data(usize),
}

/// One data-plane instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Primitive {
    /// `dst = src`.
    Set {
        /// Destination field.
        dst: FieldId,
        /// Source operand.
        src: Operand,
    },
    /// `dst = a + b` (wrapping, like P4 `bit<W>` arithmetic).
    Add {
        /// Destination field.
        dst: FieldId,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = a - b` (wrapping).
    Sub {
        /// Destination field.
        dst: FieldId,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = a & b`.
    And {
        /// Destination field.
        dst: FieldId,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = a | b`.
    Or {
        /// Destination field.
        dst: FieldId,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = a ^ b`.
    Xor {
        /// Destination field.
        dst: FieldId,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = !src` (bitwise not).
    Not {
        /// Destination field.
        dst: FieldId,
        /// Source operand.
        src: Operand,
    },
    /// `dst = src << amount`. Non-constant `amount` is target-gated.
    Shl {
        /// Destination field.
        dst: FieldId,
        /// Source operand.
        src: Operand,
        /// Shift distance.
        amount: Operand,
    },
    /// `dst = src >> amount`. Non-constant `amount` is target-gated.
    Shr {
        /// Destination field.
        dst: FieldId,
        /// Source operand.
        src: Operand,
        /// Shift distance.
        amount: Operand,
    },
    /// `dst = a * b` (wrapping). Target-gated: not all hardware can
    /// multiply values unknown at compile time (paper Sec. 2).
    Mul {
        /// Destination field.
        dst: FieldId,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = min(a, b)`.
    Min {
        /// Destination field.
        dst: FieldId,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = max(a, b)`.
    Max {
        /// Destination field.
        dst: FieldId,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = position of the most significant set bit of src` (0 when
    /// `src == 0`). Models the paper's if-cascade / TCAM-LPM MSB scan;
    /// charged `msb_cost` sequential steps by the analyser.
    Msb {
        /// Destination field.
        dst: FieldId,
        /// Source operand.
        src: Operand,
    },
    /// `dst = multiply-shift hash of src into [0, 2^width_log2)` —
    /// models the CRC extern every P4 target provides (the salt plays
    /// the role of the polynomial). Allowed on all targets; the
    /// multiply inside is the extern's, not the ALU's.
    Hash {
        /// Destination field.
        dst: FieldId,
        /// Key operand.
        src: Operand,
        /// Hash-family member (the modelled CRC polynomial).
        salt: u64,
        /// Output width in bits.
        width_log2: u32,
    },
    /// `dst = register[index]`.
    RegRead {
        /// Destination field.
        dst: FieldId,
        /// Register id.
        register: usize,
        /// Cell index.
        index: Operand,
    },
    /// `register[index] = src` (masked to the register width).
    RegWrite {
        /// Register id.
        register: usize,
        /// Cell index.
        index: Operand,
        /// Value to store.
        src: Operand,
    },
    /// Emit a digest (controller notification) carrying the evaluated
    /// operands — P4's `digest()` extern, the paper's push-alert channel.
    Digest {
        /// Application-defined digest kind.
        id: u16,
        /// Values carried to the controller.
        values: Vec<Operand>,
    },
    /// Set the egress port.
    Forward {
        /// Port to send the packet out of.
        port: Operand,
    },
    /// Mark the packet dropped.
    Drop,
}

impl Primitive {
    /// The field this primitive writes, if any.
    #[must_use]
    pub fn dst_field(&self) -> Option<FieldId> {
        match self {
            Primitive::Set { dst, .. }
            | Primitive::Add { dst, .. }
            | Primitive::Sub { dst, .. }
            | Primitive::And { dst, .. }
            | Primitive::Or { dst, .. }
            | Primitive::Xor { dst, .. }
            | Primitive::Not { dst, .. }
            | Primitive::Shl { dst, .. }
            | Primitive::Shr { dst, .. }
            | Primitive::Mul { dst, .. }
            | Primitive::Min { dst, .. }
            | Primitive::Max { dst, .. }
            | Primitive::Msb { dst, .. }
            | Primitive::Hash { dst, .. }
            | Primitive::RegRead { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// The fields this primitive reads.
    #[must_use]
    pub fn src_fields(&self) -> Vec<FieldId> {
        let mut out = Vec::new();
        let mut push = |o: &Operand| {
            if let Operand::Field(f) = o {
                out.push(*f);
            }
        };
        match self {
            Primitive::Set { src, .. } | Primitive::Not { src, .. } => push(src),
            Primitive::Add { a, b, .. }
            | Primitive::Sub { a, b, .. }
            | Primitive::And { a, b, .. }
            | Primitive::Or { a, b, .. }
            | Primitive::Xor { a, b, .. }
            | Primitive::Mul { a, b, .. }
            | Primitive::Min { a, b, .. }
            | Primitive::Max { a, b, .. } => {
                push(a);
                push(b);
            }
            Primitive::Shl { src, amount, .. } | Primitive::Shr { src, amount, .. } => {
                push(src);
                push(amount);
            }
            Primitive::Msb { src, .. } | Primitive::Hash { src, .. } => push(src),
            Primitive::RegRead { index, .. } => push(index),
            Primitive::RegWrite { index, src, .. } => {
                push(index);
                push(src);
            }
            Primitive::Digest { values, .. } => {
                for v in values {
                    push(v);
                }
            }
            Primitive::Forward { port } => push(port),
            Primitive::Drop => {}
        }
        out
    }

    /// The register this primitive accesses, with `true` for writes.
    #[must_use]
    pub fn register_access(&self) -> Option<(usize, bool)> {
        match self {
            Primitive::RegRead { register, .. } => Some((*register, false)),
            Primitive::RegWrite { register, .. } => Some((*register, true)),
            _ => None,
        }
    }

    /// Highest action-data slot referenced, if any.
    #[must_use]
    pub fn max_data_slot(&self) -> Option<usize> {
        let mut max: Option<usize> = None;
        let mut see = |o: &Operand| {
            if let Operand::Data(n) = o {
                max = Some(max.map_or(*n, |m| m.max(*n)));
            }
        };
        match self {
            Primitive::Set { src, .. }
            | Primitive::Not { src, .. }
            | Primitive::Msb { src, .. }
            | Primitive::Hash { src, .. } => {
                see(src);
            }
            Primitive::Add { a, b, .. }
            | Primitive::Sub { a, b, .. }
            | Primitive::And { a, b, .. }
            | Primitive::Or { a, b, .. }
            | Primitive::Xor { a, b, .. }
            | Primitive::Mul { a, b, .. }
            | Primitive::Min { a, b, .. }
            | Primitive::Max { a, b, .. } => {
                see(a);
                see(b);
            }
            Primitive::Shl { src, amount, .. } | Primitive::Shr { src, amount, .. } => {
                see(src);
                see(amount);
            }
            Primitive::RegRead { index, .. } => see(index),
            Primitive::RegWrite { index, src, .. } => {
                see(index);
                see(src);
            }
            Primitive::Digest { values, .. } => {
                for v in values {
                    see(v);
                }
            }
            Primitive::Forward { port } => see(port),
            Primitive::Drop => {}
        }
        max
    }
}

/// A named sequence of primitives, invokable from tables or directly
/// from the control.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionDef {
    /// Human-readable name for reports.
    pub name: String,
    /// The instruction sequence.
    pub primitives: Vec<Primitive>,
}

impl ActionDef {
    /// Creates an action.
    #[must_use]
    pub fn new(name: impl Into<String>, primitives: Vec<Primitive>) -> Self {
        Self {
            name: name.into(),
            primitives,
        }
    }

    /// Number of action-data slots entries invoking this action must
    /// provide.
    #[must_use]
    pub fn data_slots_required(&self) -> usize {
        self.primitives
            .iter()
            .filter_map(Primitive::max_data_slot)
            .map(|m| m + 1)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phv::fields;

    #[test]
    fn dst_and_src_fields() {
        let p = Primitive::Add {
            dst: fields::M0,
            a: Operand::Field(fields::PKT_LEN),
            b: Operand::Const(1),
        };
        assert_eq!(p.dst_field(), Some(fields::M0));
        assert_eq!(p.src_fields(), vec![fields::PKT_LEN]);
    }

    #[test]
    fn digest_reads_all_fields() {
        let p = Primitive::Digest {
            id: 1,
            values: vec![
                Operand::Field(fields::IPV4_DST),
                Operand::Const(7),
                Operand::Field(fields::PKT_LEN),
            ],
        };
        assert_eq!(p.dst_field(), None);
        assert_eq!(p.src_fields(), vec![fields::IPV4_DST, fields::PKT_LEN]);
    }

    #[test]
    fn register_access_classified() {
        let r = Primitive::RegRead {
            dst: fields::M0,
            register: 4,
            index: Operand::Const(0),
        };
        let w = Primitive::RegWrite {
            register: 5,
            index: Operand::Const(0),
            src: Operand::Const(1),
        };
        assert_eq!(r.register_access(), Some((4, false)));
        assert_eq!(w.register_access(), Some((5, true)));
        assert_eq!(Primitive::Drop.register_access(), None);
    }

    #[test]
    fn data_slot_requirements() {
        let a = ActionDef::new(
            "bind",
            vec![
                Primitive::RegWrite {
                    register: 0,
                    index: Operand::Data(2),
                    src: Operand::Data(0),
                },
                Primitive::Forward {
                    port: Operand::Data(1),
                },
            ],
        );
        assert_eq!(a.data_slots_required(), 3);
        let b = ActionDef::new("noop", vec![Primitive::Drop]);
        assert_eq!(b.data_slots_required(), 0);
    }
}
