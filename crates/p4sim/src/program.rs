//! Program assembly and validation.
//!
//! [`ProgramBuilder`] collects registers, actions, tables and the
//! control tree, then [`ProgramBuilder::build`] validates the program
//! against a [`TargetModel`] and produces a runnable
//! [`Pipeline`]. Validation is where the paper's target constraints
//! bite: a program using runtime multiplication builds fine for bmv2 and
//! is rejected for the Tofino-like target.

use crate::action::{ActionDef, Operand, Primitive};
use crate::control::Control;
use crate::error::{P4Error, P4Result};
use crate::pipeline::{Pipeline, RegMerge, Register};
use crate::table::{Table, TableDef};
use crate::target::TargetModel;

/// Incrementally assembles a pipeline program.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    registers: Vec<Register>,
    actions: Vec<ActionDef>,
    tables: Vec<TableDef>,
    control: Control,
}

impl ProgramBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self {
            registers: Vec::new(),
            actions: Vec::new(),
            tables: Vec::new(),
            control: Control::empty(),
        }
    }

    /// Declares a register array of `size` cells of `width_bits` each;
    /// returns its id. The merge policy defaults to [`RegMerge::Sum`];
    /// override with [`Self::set_register_merge`].
    pub fn add_register(&mut self, name: impl Into<String>, width_bits: u32, size: usize) -> usize {
        self.registers.push(Register {
            name: name.into(),
            width_bits: width_bits.min(64),
            cells: vec![0; size],
            merge: RegMerge::Sum,
            journal: stat4_core::delta::DirtyJournal::new(),
        });
        self.registers.len() - 1
    }

    /// Declares how register `id`'s per-shard state merges into a
    /// whole-switch view (and, therefore, what algebra the `S4L015`
    /// merge-soundness check verifies its update function against).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not name a declared register.
    pub fn set_register_merge(&mut self, id: usize, merge: RegMerge) {
        self.registers[id].merge = merge;
    }

    /// Declares an action; returns its id.
    pub fn add_action(&mut self, action: ActionDef) -> usize {
        self.actions.push(action);
        self.actions.len() - 1
    }

    /// Declares a table; returns its id.
    pub fn add_table(&mut self, def: TableDef) -> usize {
        self.tables.push(def);
        self.tables.len() - 1
    }

    /// Sets the control tree.
    pub fn set_control(&mut self, control: Control) {
        self.control = control;
    }

    /// Number of actions declared so far.
    #[must_use]
    pub fn action_count(&self) -> usize {
        self.actions.len()
    }

    /// Validates against `target` and produces the runnable pipeline.
    ///
    /// # Errors
    ///
    /// - [`P4Error::UnknownId`] for dangling register/action/table
    ///   references;
    /// - [`P4Error::UnsupportedOnTarget`] for primitives the target
    ///   cannot execute;
    /// - [`P4Error::Invalid`] for structural problems (repeated table on
    ///   a path, default action data arity).
    pub fn build(self, target: TargetModel) -> P4Result<Pipeline> {
        // --- reference checks ---------------------------------------
        for a in &self.actions {
            for p in &a.primitives {
                if let Some((reg, _)) = p.register_access() {
                    if reg >= self.registers.len() {
                        return Err(P4Error::UnknownId {
                            kind: "register",
                            id: reg,
                        });
                    }
                }
                check_target(p, &target)?;
            }
        }
        for t in self.control.tables() {
            if t >= self.tables.len() {
                return Err(P4Error::UnknownId {
                    kind: "table",
                    id: t,
                });
            }
        }
        for a in self.control.direct_actions() {
            if a >= self.actions.len() {
                return Err(P4Error::UnknownId {
                    kind: "action",
                    id: a,
                });
            }
        }
        for (tid, t) in self.tables.iter().enumerate() {
            for &a in &t.allowed_actions {
                if a >= self.actions.len() {
                    return Err(P4Error::UnknownId {
                        kind: "action",
                        id: a,
                    });
                }
            }
            if let Some((a, data)) = &t.default_action {
                if *a >= self.actions.len() {
                    return Err(P4Error::UnknownId {
                        kind: "action",
                        id: *a,
                    });
                }
                let need = self.actions[*a].data_slots_required();
                if data.len() < need {
                    return Err(P4Error::Invalid {
                        what: format!(
                            "table {tid} default action needs {need} data slots, has {}",
                            data.len()
                        ),
                    });
                }
            }
        }

        // --- structural checks ---------------------------------------
        if self.control.has_repeated_table_on_path() {
            return Err(P4Error::Invalid {
                what: "a table is applied more than once on some execution path".into(),
            });
        }

        // Direct actions must not read action data (there is no entry).
        for a in self.control.direct_actions() {
            if self.actions[a].data_slots_required() > 0 {
                return Err(P4Error::Invalid {
                    what: format!(
                        "action {a} ({}) reads action data but is applied without a table",
                        self.actions[a].name
                    ),
                });
            }
        }

        Ok(Pipeline::from_parts(
            target,
            self.registers,
            self.actions,
            self.tables.into_iter().map(Table::new).collect(),
            self.control,
        ))
    }
}

fn is_runtime(o: &Operand) -> bool {
    !matches!(o, Operand::Const(_))
}

fn check_target(p: &Primitive, target: &TargetModel) -> P4Result<()> {
    match p {
        Primitive::Mul { a, b, .. } => {
            let runtime_operands = usize::from(is_runtime(a)) + usize::from(is_runtime(b));
            if runtime_operands == 2 && !target.allow_runtime_mul {
                return Err(P4Error::UnsupportedOnTarget {
                    what: "multiplication of two runtime values",
                    target: target.name,
                });
            }
            if runtime_operands >= 1 && !target.allow_runtime_mul && !target.allow_const_mul {
                return Err(P4Error::UnsupportedOnTarget {
                    what: "multiplication",
                    target: target.name,
                });
            }
            Ok(())
        }
        Primitive::Shl { amount, .. } | Primitive::Shr { amount, .. } => {
            if is_runtime(amount) && !target.allow_dynamic_shift {
                return Err(P4Error::UnsupportedOnTarget {
                    what: "shift by a runtime distance",
                    target: target.name,
                });
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phv::fields;
    use crate::table::MatchKind;

    fn mul_action(a: Operand, b: Operand) -> ActionDef {
        ActionDef::new(
            "mul",
            vec![Primitive::Mul {
                dst: fields::M0,
                a,
                b,
            }],
        )
    }

    #[test]
    fn runtime_mul_rejected_on_hardware() {
        let mut b = ProgramBuilder::new();
        let a = b.add_action(mul_action(
            Operand::Field(fields::PKT_LEN),
            Operand::Field(fields::PKT_LEN),
        ));
        b.set_control(Control::ApplyAction(a));
        assert!(matches!(
            b.build(TargetModel::tofino_like()),
            Err(P4Error::UnsupportedOnTarget { .. })
        ));
    }

    #[test]
    fn runtime_mul_fine_on_bmv2() {
        let mut b = ProgramBuilder::new();
        let a = b.add_action(mul_action(
            Operand::Field(fields::PKT_LEN),
            Operand::Field(fields::PKT_LEN),
        ));
        b.set_control(Control::ApplyAction(a));
        assert!(b.build(TargetModel::bmv2()).is_ok());
    }

    #[test]
    fn const_mul_allowed_on_hardware() {
        let mut b = ProgramBuilder::new();
        let a = b.add_action(mul_action(
            Operand::Field(fields::PKT_LEN),
            Operand::Const(9),
        ));
        b.set_control(Control::ApplyAction(a));
        assert!(b.build(TargetModel::tofino_like()).is_ok());
    }

    #[test]
    fn dynamic_shift_gated() {
        let mk = || {
            let mut b = ProgramBuilder::new();
            let a = b.add_action(ActionDef::new(
                "sh",
                vec![Primitive::Shr {
                    dst: fields::M0,
                    src: Operand::Field(fields::PKT_LEN),
                    amount: Operand::Field(fields::IPV4_TTL),
                }],
            ));
            b.set_control(Control::ApplyAction(a));
            b
        };
        assert!(mk().build(TargetModel::bmv2()).is_ok());
        assert!(matches!(
            mk().build(TargetModel::tofino_like()),
            Err(P4Error::UnsupportedOnTarget { .. })
        ));
    }

    #[test]
    fn dangling_register_rejected() {
        let mut b = ProgramBuilder::new();
        let a = b.add_action(ActionDef::new(
            "r",
            vec![Primitive::RegRead {
                dst: fields::M0,
                register: 3,
                index: Operand::Const(0),
            }],
        ));
        b.set_control(Control::ApplyAction(a));
        assert!(matches!(
            b.build(TargetModel::bmv2()),
            Err(P4Error::UnknownId {
                kind: "register",
                id: 3
            })
        ));
    }

    #[test]
    fn dangling_table_rejected() {
        let mut b = ProgramBuilder::new();
        b.set_control(Control::ApplyTable(0));
        assert!(matches!(
            b.build(TargetModel::bmv2()),
            Err(P4Error::UnknownId { kind: "table", .. })
        ));
    }

    #[test]
    fn repeated_table_rejected() {
        let mut b = ProgramBuilder::new();
        let noop = b.add_action(ActionDef::new("n", vec![]));
        let t = b.add_table(TableDef {
            name: "t".into(),
            keys: vec![(fields::PKT_LEN, MatchKind::Exact)],
            max_entries: 1,
            allowed_actions: vec![noop],
            default_action: None,
        });
        b.set_control(Control::Seq(vec![
            Control::ApplyTable(t),
            Control::ApplyTable(t),
        ]));
        assert!(matches!(
            b.build(TargetModel::bmv2()),
            Err(P4Error::Invalid { .. })
        ));
    }

    #[test]
    fn direct_action_with_data_rejected() {
        let mut b = ProgramBuilder::new();
        let a = b.add_action(ActionDef::new(
            "needs_data",
            vec![Primitive::Forward {
                port: Operand::Data(0),
            }],
        ));
        b.set_control(Control::ApplyAction(a));
        assert!(matches!(
            b.build(TargetModel::bmv2()),
            Err(P4Error::Invalid { .. })
        ));
    }

    #[test]
    fn default_action_arity_checked() {
        let mut b = ProgramBuilder::new();
        let a = b.add_action(ActionDef::new(
            "fwd",
            vec![Primitive::Forward {
                port: Operand::Data(0),
            }],
        ));
        let t = b.add_table(TableDef {
            name: "t".into(),
            keys: vec![(fields::PKT_LEN, MatchKind::Exact)],
            max_entries: 1,
            allowed_actions: vec![a],
            default_action: Some((a, vec![])), // missing the slot
        });
        b.set_control(Control::ApplyTable(t));
        assert!(matches!(
            b.build(TargetModel::bmv2()),
            Err(P4Error::Invalid { .. })
        ));
    }
}
