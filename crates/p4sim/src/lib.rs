//! # p4sim
//!
//! A P4-like match-action pipeline simulator — the substrate on which
//! the Stat4 reproduction runs its data-plane programs, standing in for
//! the paper's bmv2 behavioural model.
//!
//! The point of this crate is not to simulate a particular ASIC but to
//! *enforce the restrictions that shaped the paper's algorithms*:
//!
//! - **No division, no modulo, no square root.** These operations simply
//!   do not exist in the action instruction set ([`action::Primitive`]);
//!   programs that need them must build approximations from shifts, as
//!   the paper does.
//! - **No loops.** Control flow ([`control::Control`]) is a tree of
//!   table applications and branches; every packet traverses it once,
//!   and the interpreter additionally enforces a hard per-packet step
//!   budget.
//! - **Runtime multiplication and variable-distance shifts are
//!   target-gated** ([`target::TargetModel`]): the bmv2 preset allows
//!   them, the Tofino-like preset rejects them at validation time, which
//!   is why `stat4-core`'s shift-approximated squaring exists.
//! - **State lives in registers** ([`pipeline::Pipeline`]) of fixed
//!   width and size, plus match-action tables whose entries only the
//!   control plane may change ([`runtime::RuntimeRequest`]) — exactly
//!   the paper's binding-table mechanism.
//!
//! A static analyser ([`resources`]) reports the quantities the paper's
//! Sec. 4 discusses: memory footprint, match dependencies between the
//! rules that can hit the same packet, and the longest sequential
//! dependency chain inside the program's actions. A full compile-time
//! verifier ([`analysis`]) goes further: it builds the table dependency
//! graph, allocates tables to PISA stages under the target's per-stage
//! limits, and runs a value-range analysis proving the statistics
//! arithmetic cannot overflow the configured widths — the machinery
//! behind the `stat4-lint` tool.
//!
//! ## Layering
//!
//! ```text
//! packet bytes ──parser──▶ PHV fields ──control──▶ tables ──actions──▶
//!      registers / digests / forward / drop
//! ```
//!
//! Programs are built with [`program::ProgramBuilder`], validated
//! against a target, and executed packet by packet. Digests (the P4
//! mechanism for pushing alerts to the controller) are collected in each
//! packet's [`pipeline::PacketOutcome`].

#![forbid(unsafe_code)]

pub mod analysis;
pub mod action;
pub mod control;
pub mod error;
pub mod fault;
pub mod metrics;
pub mod parser;
pub mod phv;
pub mod pipeline;
pub mod program;
pub mod replay;
pub mod resources;
pub mod runtime;
pub mod table;
pub mod target;

pub use action::{ActionDef, Operand, Primitive};
pub use analysis::{
    check_agreement, check_equivalence, check_merge_soundness, vet_rebind, Diagnostic, EquivReport,
    InputDomain, LintCode, MergeReport, RebindReport, Severity, SymbolicOptions, VerifyReport,
    Witness, {verify, verify_against},
};
pub use control::{Cond, Control};
pub use error::{P4Error, P4Result};
pub use fault::{FaultHook, MissWindow, ScheduledFaults, SeuEvent, SeuRecovery};
pub use metrics::PipelineMetrics;
pub use parser::parse_frame;
pub use phv::{FieldId, Phv};
pub use pipeline::{PacketOutcome, Pipeline, PipelineState, RegMerge};
pub use program::ProgramBuilder;
pub use replay::{
    apply_register_delta, merge_registers, EpochReport, PipelineDelta, RegisterDelta,
    ShardedPipeline,
};
pub use resources::ResourceReport;
pub use runtime::{RuntimeRequest, RuntimeResponse};
pub use table::{Entry, MatchKind, MatchValue, TableDef};
pub use target::TargetModel;
