//! Compile-time verification of built pipelines.
//!
//! The paper's programs are written *for* a PISA target: no division,
//! no runtime multiplication, a handful of stages, one stateful-ALU
//! access per register per packet. The interpreter enforces some of
//! this dynamically; this module proves the rest **before a single
//! packet runs**:
//!
//! 1. [`tdg`] builds the table dependency graph — one node per control
//!    unit, one edge per reason two units cannot share a stage.
//! 2. [`stages`] allocates units to pipeline stages under the target's
//!    per-stage limits and checks the register discipline.
//! 3. [`range`] runs an abstract interpretation over every action and
//!    branch, proving that the statistics arithmetic (`N·x`, `Xsum`,
//!    `Xsumsq`, `2·σ`) cannot overflow the configured register and PHV
//!    widths — or reporting the offending primitive chain when it can.
//!
//! [`verify`] runs all of it against the pipeline's own target;
//! [`verify_against`] re-checks the same program against a *different*
//! target, which is how a bmv2-built prototype is vetted for hardware
//! (and how the known-bad fixtures in `tests/` are seeded: programs
//! that build fine on bmv2 and lint dirty on Tofino-like metal).
//!
//! The `stat4-lint` binary in the `stat4-p4` crate drives this module
//! over every built-in program.

pub mod diag;
pub mod range;
pub mod stages;
pub mod symbolic;
pub mod tdg;

pub use diag::{json_string, Diagnostic, LintCode, Severity};
pub use range::{analyze_ranges, Interval, RangeSummary};
pub use stages::{allocate, StageAllocation, StageUse};
pub use symbolic::{
    check_agreement, check_equivalence, check_merge_soundness, enumerate_paths, replay_divergence,
    run_witness, vet_rebind, Counterexample, EquivReport, InputDomain, MergeCounterexample,
    MergeReport, RebindReport, SymbolicOptions, Witness,
};
pub use tdg::{DepKind, NodeKind, TableDepGraph, TdgEdge, TdgNode};

use crate::action::{Operand, Primitive};
use crate::pipeline::Pipeline;
use crate::target::TargetModel;
use std::fmt;

/// Everything the verifier found out about one program/target pair.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Name of the target the program was verified against.
    pub target: String,
    /// All findings, errors first.
    pub diagnostics: Vec<Diagnostic>,
    /// The stage allocation.
    pub allocation: StageAllocation,
    /// Control units in the dependency graph.
    pub node_count: usize,
    /// Dependency edges in the graph.
    pub edge_count: usize,
    /// What the range analysis could prove.
    pub range: RangeSummary,
    /// Longest sequential dependency chain over any execution path
    /// (`Msb` charged at the target's cost).
    pub worst_chain_steps: u64,
    /// The target's per-packet step budget the chain is checked against.
    pub step_budget: u64,
}

impl VerifyReport {
    /// Number of error-severity findings.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of info-severity findings.
    #[must_use]
    pub fn infos(&self) -> usize {
        self.count(Severity::Info)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// Whether the program is clean: no errors, and no warnings either
    /// when `deny_warnings` is set. Info findings never fail a lint.
    #[must_use]
    pub fn passes(&self, deny_warnings: bool) -> bool {
        self.errors() == 0 && (!deny_warnings || self.warnings() == 0)
    }

    /// Renders the report as a JSON object (no external deps).
    #[must_use]
    pub fn to_json(&self) -> String {
        let diags: Vec<String> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        format!(
            concat!(
                "{{\"target\":{},\"nodes\":{},\"edges\":{},",
                "\"depth\":{},\"fits\":{},",
                "\"errors\":{},\"warnings\":{},\"infos\":{},",
                "\"worst_chain_steps\":{},\"step_budget\":{},",
                "\"range\":{{\"register_writes\":{},\"proven_fits\":{},",
                "\"modular_accumulators\":{},\"unproven\":{}}},",
                "\"diagnostics\":[{}]}}"
            ),
            json_string(&self.target),
            self.node_count,
            self.edge_count,
            self.allocation.depth,
            self.allocation.fits,
            self.errors(),
            self.warnings(),
            self.infos(),
            self.worst_chain_steps,
            self.step_budget,
            self.range.register_writes,
            self.range.proven_fits,
            self.range.modular_accumulators,
            self.range.unproven,
            diags.join(",")
        )
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verify against `{}`: {} units, {} dependencies, {} stages ({})",
            self.target,
            self.node_count,
            self.edge_count,
            self.allocation.depth,
            if self.allocation.fits {
                "fits"
            } else {
                "DOES NOT FIT"
            }
        )?;
        writeln!(
            f,
            "  worst chain: {} steps (budget {})",
            self.worst_chain_steps, self.step_budget
        )?;
        writeln!(
            f,
            "  stores: {} proven / {} modular / {} unproven of {}",
            self.range.proven_fits,
            self.range.modular_accumulators,
            self.range.unproven,
            self.range.register_writes
        )?;
        write!(
            f,
            "  findings: {} error(s), {} warning(s), {} note(s)",
            self.errors(),
            self.warnings(),
            self.infos()
        )?;
        for d in &self.diagnostics {
            write!(f, "\n  {d}")?;
        }
        Ok(())
    }
}

fn is_runtime(o: &Operand) -> bool {
    !matches!(o, Operand::Const(_))
}

/// Re-checks the build-time target gates (the same rules
/// `ProgramBuilder::build` enforces) so a program built for one target
/// can be linted against another.
fn target_legality(p: &Pipeline, target: &TargetModel, diags: &mut Vec<Diagnostic>) {
    for action in p.actions() {
        for (i, prim) in action.primitives.iter().enumerate() {
            let ctx = format!("action `{}`, primitive #{i}", action.name);
            match prim {
                Primitive::Mul { a, b, .. } => {
                    let runtime = usize::from(is_runtime(a)) + usize::from(is_runtime(b));
                    if runtime == 2 && !target.allow_runtime_mul {
                        diags.push(Diagnostic::new(
                            LintCode::RuntimeMul,
                            Severity::Error,
                            ctx,
                            format!(
                                "multiplication of two runtime values is unsupported on `{}`; use the unrolled shift-add fragment",
                                target.name
                            ),
                        ));
                    } else if runtime >= 1
                        && !target.allow_runtime_mul
                        && !target.allow_const_mul
                    {
                        diags.push(Diagnostic::new(
                            LintCode::RuntimeMul,
                            Severity::Error,
                            ctx,
                            format!("multiplication is unsupported on `{}`", target.name),
                        ));
                    }
                }
                Primitive::Shl { amount, .. } | Primitive::Shr { amount, .. }
                    if is_runtime(amount) && !target.allow_dynamic_shift =>
                {
                    diags.push(Diagnostic::new(
                        LintCode::DynamicShift,
                        Severity::Error,
                        ctx,
                        format!(
                            "shift by a runtime distance is unsupported on `{}`; shifters take the distance at configuration time",
                            target.name
                        ),
                    ));
                }
                _ => {}
            }
        }
    }
}

/// Checks that every register leaves room for the target's SEU-recovery
/// guard bits: the saturating recovery path (see [`crate::fault`])
/// detects a bit flip by the value exceeding the register's width mask,
/// which is only possible when `width_bits + seu_headroom_bits` still
/// fits the 64-bit cell. Targets with `seu_headroom_bits == 0` demand
/// no hardening and are never flagged.
fn seu_headroom(p: &Pipeline, target: &TargetModel, diags: &mut Vec<Diagnostic>) {
    if target.seu_headroom_bits == 0 {
        return;
    }
    for reg in p.registers() {
        if reg.width_bits + target.seu_headroom_bits > 64 {
            diags.push(Diagnostic::new(
                LintCode::SeuHeadroom,
                Severity::Warning,
                format!("register `{}`", reg.name),
                format!(
                    "declared width {} bits leaves no room for the {} guard bit(s) `{}` reserves for SEU-recovery saturation; an out-of-width flip wraps silently (cap the width at {} bits or drop the hardening requirement)",
                    reg.width_bits,
                    target.seu_headroom_bits,
                    target.name,
                    64 - target.seu_headroom_bits
                ),
            ));
        }
    }
}

/// Verifies a built pipeline against its own target.
#[must_use]
pub fn verify(p: &Pipeline) -> VerifyReport {
    verify_against(p, &p.target().clone())
}

/// Verifies a built pipeline against an arbitrary target — the
/// porting question ("would this bmv2 prototype fit hardware?") and the
/// mechanism behind every known-bad lint fixture.
#[must_use]
pub fn verify_against(p: &Pipeline, target: &TargetModel) -> VerifyReport {
    let mut diags = Vec::new();
    target_legality(p, target, &mut diags);
    seu_headroom(p, target, &mut diags);

    let tdg = TableDepGraph::build(p);
    let allocation = allocate(p, &tdg, target, &mut diags);
    let range = analyze_ranges(p, &mut diags);

    let worst_chain_steps = crate::resources::worst_path_steps(p, target);
    if worst_chain_steps > target.step_budget {
        diags.push(Diagnostic::new(
            LintCode::StepBudget,
            Severity::Warning,
            format!("target `{}`", target.name),
            format!(
                "worst-case sequential chain is {worst_chain_steps} steps but the target budgets {} per packet",
                target.step_budget
            ),
        ));
    }

    // Errors first, then warnings, then notes; stable within a class.
    diags.sort_by_key(|d| std::cmp::Reverse(d.severity));

    VerifyReport {
        target: target.name.to_string(),
        diagnostics: diags,
        node_count: tdg.nodes.len(),
        edge_count: tdg.edges.len(),
        allocation,
        range,
        worst_chain_steps,
        step_budget: target.step_budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionDef;
    use crate::control::Control;
    use crate::phv::fields;
    use crate::program::ProgramBuilder;

    fn runtime_mul_pipeline() -> Pipeline {
        let mut b = ProgramBuilder::new();
        let a = b.add_action(ActionDef::new(
            "sq",
            vec![Primitive::Mul {
                dst: fields::M0,
                a: Operand::Field(fields::PKT_LEN),
                b: Operand::Field(fields::PKT_LEN),
            }],
        ));
        b.set_control(Control::ApplyAction(a));
        b.build(TargetModel::bmv2()).unwrap()
    }

    #[test]
    fn clean_program_passes_deny_warnings() {
        let mut b = ProgramBuilder::new();
        let r = b.add_register("ctr", 64, 4);
        let a = b.add_action(ActionDef::new(
            "bump",
            vec![
                Primitive::RegRead {
                    dst: fields::M0,
                    register: r,
                    index: Operand::Const(2),
                },
                Primitive::Add {
                    dst: fields::M0,
                    a: Operand::Field(fields::M0),
                    b: Operand::Const(1),
                },
                Primitive::RegWrite {
                    register: r,
                    index: Operand::Const(2),
                    src: Operand::Field(fields::M0),
                },
            ],
        ));
        b.set_control(Control::ApplyAction(a));
        let p = b.build(TargetModel::tofino_like()).unwrap();
        let report = verify(&p);
        assert!(report.passes(true), "{report}");
        assert_eq!(report.errors(), 0);
        assert_eq!(report.node_count, 1);
    }

    #[test]
    fn runtime_mul_flagged_against_hardware_only() {
        let p = runtime_mul_pipeline();
        let hw = verify_against(&p, &TargetModel::tofino_like());
        assert!(!hw.passes(false));
        assert!(hw
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::RuntimeMul && d.severity == Severity::Error));
        let sw = verify(&p);
        assert!(sw
            .diagnostics
            .iter()
            .all(|d| d.code != LintCode::RuntimeMul));
    }

    #[test]
    fn dynamic_shift_flagged_against_hardware() {
        let mut b = ProgramBuilder::new();
        let a = b.add_action(ActionDef::new(
            "sh",
            vec![Primitive::Shr {
                dst: fields::M0,
                src: Operand::Field(fields::PKT_LEN),
                amount: Operand::Field(fields::IPV4_TTL),
            }],
        ));
        b.set_control(Control::ApplyAction(a));
        let p = b.build(TargetModel::bmv2()).unwrap();
        let report = verify_against(&p, &TargetModel::tofino_like());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::DynamicShift && d.severity == Severity::Error));
    }

    #[test]
    fn step_budget_is_a_warning_not_an_error() {
        let mut b = ProgramBuilder::new();
        let a = b.add_action(ActionDef::new(
            "chain",
            vec![
                Primitive::Set {
                    dst: fields::M0,
                    src: Operand::Const(1),
                },
                Primitive::Add {
                    dst: fields::M0,
                    a: Operand::Field(fields::M0),
                    b: Operand::Const(1),
                },
                Primitive::Add {
                    dst: fields::M0,
                    a: Operand::Field(fields::M0),
                    b: Operand::Const(1),
                },
            ],
        ));
        b.set_control(Control::ApplyAction(a));
        let p = b.build(TargetModel::bmv2()).unwrap();
        let tight = TargetModel {
            step_budget: 2,
            ..TargetModel::bmv2()
        };
        let report = verify_against(&p, &tight);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::StepBudget && d.severity == Severity::Warning));
        assert!(report.passes(false), "warnings alone do not fail");
        assert!(!report.passes(true), "but --deny warnings does");
    }

    #[test]
    fn diagnostics_sorted_errors_first() {
        // Runtime mul (error vs hardware) + unproven store (info).
        let mut b = ProgramBuilder::new();
        let r = b.add_register("narrow", 16, 1);
        let a = b.add_action(ActionDef::new(
            "mixed",
            vec![
                Primitive::Mul {
                    dst: fields::M0,
                    a: Operand::Field(fields::PKT_LEN),
                    b: Operand::Field(fields::PKT_LEN),
                },
                Primitive::RegWrite {
                    register: r,
                    index: Operand::Const(0),
                    src: Operand::Field(fields::PKT_LEN),
                },
            ],
        ));
        b.set_control(Control::ApplyAction(a));
        let p = b.build(TargetModel::bmv2()).unwrap();
        let report = verify_against(&p, &TargetModel::tofino_like());
        assert!(report.diagnostics.len() >= 2);
        for pair in report.diagnostics.windows(2) {
            assert!(pair[0].severity >= pair[1].severity);
        }
        assert_eq!(report.diagnostics[0].severity, Severity::Error);
    }

    #[test]
    fn report_renders_text_and_json() {
        let p = runtime_mul_pipeline();
        let report = verify_against(&p, &TargetModel::tofino_like());
        let text = report.to_string();
        assert!(text.contains("verify against `tofino-like`"));
        assert!(text.contains("S4L001"));
        let json = report.to_json();
        assert!(json.contains("\"target\":\"tofino-like\""));
        assert!(json.contains("\"code\":\"S4L001\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
