//! Diagnostics: stable lint codes, severities, human and JSON output.
//!
//! Every finding the static verifier can produce carries a [`LintCode`]
//! that is stable across releases (tests and CI pin against them), a
//! [`Severity`] chosen at emission time (the same code can be an error
//! when the violation is *certain* and a note when it is merely not
//! disproven), a human-readable message, and — for the value-range
//! analysis — the chain of primitives that produced the offending
//! value.
//!
//! Severity policy:
//!
//! - [`Severity::Error`] — the program cannot run correctly on the
//!   analysed target: target-illegal primitives, stage overflow, a
//!   register touched twice on one packet path of a single-access
//!   target, arithmetic that *provably* truncates or overflows.
//! - [`Severity::Warning`] — the program runs but a worst-case bound is
//!   violated (e.g. the longest dependency chain exceeds the target's
//!   step budget). `--deny warnings` promotes these to failures.
//! - [`Severity::Info`] — the analysis could not *prove* a bound
//!   (action data installed by the controller at runtime, a possible
//!   but not certain wrap). Recorded and countable, never fatal.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How serious a finding is (see the module docs for the policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Not disproven, recorded for audit; never fatal.
    Info,
    /// Worst-case bound violated; fatal under `--deny warnings`.
    Warning,
    /// The program cannot run correctly on the analysed target.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable lint codes. The numeric part never changes meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LintCode {
    /// `S4L001` — `Mul` of two runtime values on a target without a
    /// runtime multiplier (the paper's division/multiply discipline).
    RuntimeMul,
    /// `S4L002` — shift by a runtime distance on a target with
    /// constant-only shifters.
    DynamicShift,
    /// `S4L003` — the stage allocation needs more stages than the
    /// target provides.
    StageOverflow,
    /// `S4L004` — one register is touched at more than one point of a
    /// packet path (or twice inside one action beyond a single
    /// read-modify-write), which a PISA stateful ALU cannot do.
    RegisterMultiAccess,
    /// `S4L005` — a value provably wider than its destination register
    /// is stored (silent truncation), or a product provably exceeds
    /// the 64-bit PHV.
    WidthTruncation,
    /// `S4L006` — a register store could not be *proven* to fit the
    /// register width (emitted as info with the primitive chain).
    WidthUnproven,
    /// `S4L007` — the worst-case sequential dependency chain exceeds
    /// the target's per-packet step budget.
    StepBudget,
    /// `S4L008` — a register index can (or provably does) fall outside
    /// the register's cell range.
    RegisterIndexRange,
    /// `S4L009` — a single table/action needs more per-stage resources
    /// (e.g. distinct registers) than any one stage offers, so no
    /// allocation exists.
    StageResourceUnallocatable,
    /// `S4L010` — a multiplication's result interval can exceed the
    /// 64-bit PHV word (possible wrap; certain wraps use `S4L005`).
    MulOverflow,
    /// `S4L011` — a left shift can push set bits past the 64-bit PHV
    /// word (possible wrap; certain wraps use `S4L005`).
    ShiftOverflow,
    /// `S4L012` — a register's declared width leaves no headroom for
    /// the SEU-recovery saturation path on a target that reserves
    /// guard bits (`TargetModel::seu_headroom_bits`): an out-of-width
    /// bit flip cannot be detected, so corruption wraps silently
    /// instead of saturating.
    SeuHeadroom,
    /// `S4L013` — two builds of the same statistic (e.g. bmv2 vs
    /// tofino-like) diverge on a concrete input: the symbolic
    /// differential check found a packet + initial register state on
    /// which the pipelines produce different observable outcomes
    /// (egress, drop, digests or final registers).
    TargetDivergence,
    /// `S4L014` — symbolic path enumeration hit the configured path
    /// budget and was truncated; the verdict only covers the explored
    /// paths (emitted as a warning with the bound, never a silent cap).
    PathBudget,
    /// `S4L015` — a register's per-packet update function does not
    /// commute with its declared merge policy (exact-sum, saturating
    /// sum or max), so sharded replay's cellwise merge is unsound for
    /// that register.
    MergeUnsound,
    /// `S4L016` — a runtime rebind transaction
    /// (`RuntimeRequest::Batch` over binding tables) would leave the
    /// program illegal: the batch fails to apply, the post-rebind
    /// program fails static verification, or a vetting input trips a
    /// runtime fault (e.g. a register index out of range).
    UnsafeRebind,
}

impl LintCode {
    /// The stable code string (`S4Lnnn`).
    #[must_use]
    pub const fn code(self) -> &'static str {
        match self {
            LintCode::RuntimeMul => "S4L001",
            LintCode::DynamicShift => "S4L002",
            LintCode::StageOverflow => "S4L003",
            LintCode::RegisterMultiAccess => "S4L004",
            LintCode::WidthTruncation => "S4L005",
            LintCode::WidthUnproven => "S4L006",
            LintCode::StepBudget => "S4L007",
            LintCode::RegisterIndexRange => "S4L008",
            LintCode::StageResourceUnallocatable => "S4L009",
            LintCode::MulOverflow => "S4L010",
            LintCode::ShiftOverflow => "S4L011",
            LintCode::SeuHeadroom => "S4L012",
            LintCode::TargetDivergence => "S4L013",
            LintCode::PathBudget => "S4L014",
            LintCode::MergeUnsound => "S4L015",
            LintCode::UnsafeRebind => "S4L016",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding of the static verifier.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable lint code.
    pub code: LintCode,
    /// Severity chosen at emission (see module docs).
    pub severity: Severity,
    /// Where the finding is anchored, e.g.
    /// `` action `track_payload` (table `binding`), primitive #3 ``.
    pub context: String,
    /// What is wrong and why.
    pub message: String,
    /// For range findings: the primitives that produced the offending
    /// value, oldest first (bounded; long chains keep the tail).
    pub chain: Vec<String>,
}

impl Diagnostic {
    /// Builds a diagnostic without a primitive chain.
    #[must_use]
    pub fn new(
        code: LintCode,
        severity: Severity,
        context: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            code,
            severity,
            context: context.into(),
            message: message.into(),
            chain: Vec::new(),
        }
    }

    /// Attaches the producing primitive chain.
    #[must_use]
    pub fn with_chain(mut self, chain: Vec<String>) -> Self {
        self.chain = chain;
        self
    }

    /// Renders the diagnostic as a JSON object (no external deps).
    #[must_use]
    pub fn to_json(&self) -> String {
        let chain: Vec<String> = self.chain.iter().map(|c| json_string(c)).collect();
        format!(
            "{{\"code\":{},\"severity\":{},\"context\":{},\"message\":{},\"chain\":[{}]}}",
            json_string(self.code.code()),
            json_string(&self.severity.to_string()),
            json_string(&self.context),
            json_string(&self.message),
            chain.join(",")
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}: {} [{}]",
            self.code, self.severity, self.message, self.context
        )?;
        if !self.chain.is_empty() {
            write!(f, "\n    via {}", self.chain.join(" -> "))?;
        }
        Ok(())
    }
}

/// Escapes a string as a JSON string literal.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(LintCode::RuntimeMul.code(), "S4L001");
        assert_eq!(LintCode::StageOverflow.code(), "S4L003");
        assert_eq!(LintCode::WidthTruncation.code(), "S4L005");
        assert_eq!(LintCode::ShiftOverflow.code(), "S4L011");
        assert_eq!(LintCode::TargetDivergence.code(), "S4L013");
        assert_eq!(LintCode::PathBudget.code(), "S4L014");
        assert_eq!(LintCode::MergeUnsound.code(), "S4L015");
        assert_eq!(LintCode::UnsafeRebind.code(), "S4L016");
    }

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn display_and_json_render() {
        let d = Diagnostic::new(
            LintCode::WidthTruncation,
            Severity::Error,
            "action `a`, primitive #1",
            "value in [1099511627776, 1099511627776] cannot fit 16 bits",
        )
        .with_chain(vec!["Shl -> s0".into(), "RegWrite r".into()]);
        let text = d.to_string();
        assert!(text.contains("S4L005 error"));
        assert!(text.contains("via Shl"));
        let json = d.to_json();
        assert!(json.contains("\"code\":\"S4L005\""));
        assert!(json.contains("\"severity\":\"error\""));
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
