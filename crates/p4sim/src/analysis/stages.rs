//! PISA stage allocation.
//!
//! Consumes the [`TableDepGraph`] and places every control unit into a
//! pipeline stage under the target's per-stage limits
//! ([`TargetModel::tables_per_stage`], [`TargetModel::registers_per_stage`]):
//! a unit goes to the earliest stage after all of its dependency
//! predecessors, bumped later while the stage is full. Direct (keyless)
//! actions occupy a stage's VLIW slots but no match-table slot, so only
//! table nodes count against `tables_per_stage`. Registers count in the
//! stage where their first accessor lands.
//!
//! The allocator also enforces the PISA register discipline — **at most
//! one read-modify-write point per register per packet path** — on
//! targets with [`TargetModel::single_register_access`] (it is reported
//! as a note on software targets, where re-reading a register is merely
//! slow, not impossible).

use super::diag::{Diagnostic, LintCode, Severity};
use super::tdg::{paths, Item, NodeKind, TableDepGraph};
use crate::action::Operand;
use crate::pipeline::Pipeline;
use crate::target::TargetModel;
use std::collections::{BTreeMap, BTreeSet};

/// What one stage hosts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageUse {
    /// Table ids matched in this stage.
    pub tables: Vec<usize>,
    /// Direct action ids executed in this stage.
    pub actions: Vec<usize>,
    /// Registers whose stateful ALU lives in this stage.
    pub registers: BTreeSet<usize>,
}

/// The allocator's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageAllocation {
    /// Stage of each TDG node (1-based; index = node id).
    pub node_stage: Vec<u32>,
    /// Per-stage contents (index 0 = stage 1).
    pub stages: Vec<StageUse>,
    /// Pipeline depth in stages (0 for an empty program).
    pub depth: u32,
    /// Whether the depth fits the target's stage count and every unit
    /// was placeable under the per-stage limits.
    pub fits: bool,
}

/// Places the graph's units into stages and reports violations.
#[must_use]
pub fn allocate(
    p: &Pipeline,
    tdg: &TableDepGraph,
    target: &TargetModel,
    diags: &mut Vec<Diagnostic>,
) -> StageAllocation {
    let n = tdg.nodes.len();
    let mut node_stage = vec![0u32; n];
    let mut stages: Vec<StageUse> = Vec::new();
    let mut fits = true;

    // The bump loop always terminates: some later stage is empty.
    let stage_cap = u32::try_from(n).unwrap_or(u32::MAX).saturating_add(1);

    for node in &tdg.nodes {
        let mut s = 1u32;
        for e in tdg.preds(node.id) {
            s = s.max(node_stage[e.from].saturating_add(1));
        }
        let is_table = matches!(node.kind, NodeKind::Table { .. });
        let needed_regs = u32::try_from(node.registers.len()).unwrap_or(u32::MAX);
        if needed_regs > target.registers_per_stage {
            diags.push(Diagnostic::new(
                LintCode::StageResourceUnallocatable,
                Severity::Error,
                node.kind.label(),
                format!(
                    "unit touches {} distinct registers but the target offers {} per stage — no stage can host it",
                    node.registers.len(),
                    target.registers_per_stage
                ),
            ));
            fits = false;
        } else {
            loop {
                let use_at = stages.get(s as usize - 1);
                let tables_full = is_table
                    && use_at.is_some_and(|u| {
                        u32::try_from(u.tables.len()).unwrap_or(u32::MAX) >= target.tables_per_stage
                    });
                let regs_full = use_at.is_some_and(|u| {
                    let new = node.registers.difference(&u.registers).count();
                    u32::try_from(u.registers.len() + new).unwrap_or(u32::MAX)
                        > target.registers_per_stage
                });
                if (tables_full || regs_full) && s < stage_cap {
                    s += 1;
                } else {
                    break;
                }
            }
        }
        while stages.len() < s as usize {
            stages.push(StageUse::default());
        }
        let slot = &mut stages[s as usize - 1];
        match node.kind {
            NodeKind::Table { table, .. } => slot.tables.push(table),
            NodeKind::Action { action, .. } => slot.actions.push(action),
        }
        slot.registers.extend(node.registers.iter().copied());
        node_stage[node.id] = s;
    }

    let depth = u32::try_from(stages.len()).unwrap_or(u32::MAX);
    if depth > target.max_stages {
        diags.push(Diagnostic::new(
            LintCode::StageOverflow,
            Severity::Error,
            format!("target `{}`", target.name),
            format!(
                "stage allocation needs {depth} stages but the target provides {}",
                target.max_stages
            ),
        ));
        fits = false;
    }

    register_discipline(p, target, diags);

    StageAllocation {
        node_stage,
        stages,
        depth,
        fits,
    }
}

/// Registers an item of a path touches, via its actions.
fn item_registers(p: &Pipeline, item: Item) -> BTreeSet<usize> {
    let actions: Vec<usize> = match item {
        Item::Table(t) => super::tdg::table_actions(p, t),
        Item::Action(a) => vec![a],
    };
    let mut out = BTreeSet::new();
    for a in actions {
        if let Some(action) = p.actions().get(a) {
            for prim in &action.primitives {
                if let Some((r, _)) = prim.register_access() {
                    out.insert(r);
                }
            }
        }
    }
    out
}

/// Checks the one-RMW-point-per-register rule, both inside each action
/// (at most one read and one write, at the same index) and across the
/// units of every packet path.
fn register_discipline(p: &Pipeline, target: &TargetModel, diags: &mut Vec<Diagnostic>) {
    let severity = if target.single_register_access {
        Severity::Error
    } else {
        Severity::Info
    };
    let reg_name = |r: usize| {
        p.registers()
            .get(r)
            .map_or_else(|| format!("#{r}"), |reg| reg.name.clone())
    };

    // Intra-action: group accesses per register.
    for action in p.actions() {
        let mut per_reg: BTreeMap<usize, (Vec<&Operand>, Vec<&Operand>)> = BTreeMap::new();
        for prim in &action.primitives {
            if let Some((r, is_write)) = prim.register_access() {
                let entry = per_reg.entry(r).or_default();
                let index = match prim {
                    crate::action::Primitive::RegRead { index, .. }
                    | crate::action::Primitive::RegWrite { index, .. } => index,
                    _ => continue,
                };
                if is_write {
                    entry.1.push(index);
                } else {
                    entry.0.push(index);
                }
            }
        }
        for (r, (reads, writes)) in per_reg {
            let rmw_ok = reads.len() <= 1
                && writes.len() <= 1
                && match (reads.first(), writes.first()) {
                    (Some(ri), Some(wi)) => ri == wi,
                    _ => true,
                };
            if !rmw_ok {
                diags.push(Diagnostic::new(
                    LintCode::RegisterMultiAccess,
                    severity,
                    format!("action `{}`", action.name),
                    format!(
                        "register `{}` is accessed {} time(s) for read and {} for write in one action; a stateful ALU performs one read-modify-write at one index",
                        reg_name(r),
                        reads.len(),
                        writes.len()
                    ),
                ));
            }
        }
    }

    // Inter-unit: one RMW point per register per packet path.
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for path in paths(p.control()) {
        let mut seen: BTreeMap<usize, usize> = BTreeMap::new();
        for item in path {
            for r in item_registers(p, item) {
                *seen.entry(r).or_insert(0) += 1;
            }
        }
        for (r, count) in seen {
            if count > 1 && flagged.insert(r) {
                diags.push(Diagnostic::new(
                    LintCode::RegisterMultiAccess,
                    severity,
                    format!("register `{}`", reg_name(r)),
                    format!(
                        "touched by {count} tables/actions on one packet path; a PISA register lives in one stage and supports one access per packet"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionDef, Primitive};
    use crate::control::Control;
    use crate::phv::fields;
    use crate::program::ProgramBuilder;
    use crate::table::{MatchKind, TableDef};

    fn chain_program(n: usize) -> Pipeline {
        // n tables, each matching on the field the previous one writes.
        let mut b = ProgramBuilder::new();
        let mut tabs = Vec::new();
        for i in 0..n {
            let w = b.add_action(ActionDef::new(
                format!("w{i}"),
                vec![Primitive::Set {
                    dst: fields::scratch(u16::try_from(i + 1).unwrap() % 20),
                    src: Operand::Const(1),
                }],
            ));
            tabs.push(b.add_table(TableDef {
                name: format!("t{i}"),
                keys: vec![(
                    fields::scratch(u16::try_from(i).unwrap() % 20),
                    MatchKind::Exact,
                )],
                max_entries: 1,
                allowed_actions: vec![w],
                default_action: None,
            }));
        }
        b.set_control(Control::Seq(tabs.into_iter().map(Control::ApplyTable).collect()));
        b.build(TargetModel::bmv2()).unwrap()
    }

    #[test]
    fn dependent_chain_uses_one_stage_per_table() {
        let p = chain_program(5);
        let tdg = TableDepGraph::build(&p);
        let mut diags = Vec::new();
        let alloc = allocate(&p, &tdg, &TargetModel::bmv2(), &mut diags);
        assert_eq!(alloc.depth, 5);
        assert!(alloc.fits);
        assert!(diags.is_empty());
    }

    #[test]
    fn chain_deeper_than_target_overflows() {
        let p = chain_program(13);
        let tdg = TableDepGraph::build(&p);
        let mut diags = Vec::new();
        let alloc = allocate(&p, &tdg, &TargetModel::tofino_like(), &mut diags);
        assert_eq!(alloc.depth, 13);
        assert!(!alloc.fits);
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::StageOverflow && d.severity == Severity::Error));
    }

    #[test]
    fn independent_tables_bump_when_stage_full() {
        // 3 independent tables under a 2-tables-per-stage cap: depth 2.
        let mut b = ProgramBuilder::new();
        let n = b.add_action(ActionDef::new("n", vec![]));
        let mut tabs = Vec::new();
        for i in 0..3u16 {
            tabs.push(b.add_table(TableDef {
                name: format!("t{i}"),
                keys: vec![(fields::scratch(i), MatchKind::Exact)],
                max_entries: 1,
                allowed_actions: vec![n],
                default_action: None,
            }));
        }
        b.set_control(Control::Seq(tabs.into_iter().map(Control::ApplyTable).collect()));
        let p = b.build(TargetModel::bmv2()).unwrap();
        let tdg = TableDepGraph::build(&p);
        let target = TargetModel {
            tables_per_stage: 2,
            ..TargetModel::tofino_like()
        };
        let mut diags = Vec::new();
        let alloc = allocate(&p, &tdg, &target, &mut diags);
        assert_eq!(alloc.depth, 2);
        assert_eq!(alloc.stages[0].tables.len(), 2);
        assert_eq!(alloc.stages[1].tables.len(), 1);
        assert!(alloc.fits);
    }

    #[test]
    fn double_register_access_flagged_on_hardware_only() {
        let mut b = ProgramBuilder::new();
        let r = b.add_register("shared", 32, 4);
        let mk = |name: &str| {
            ActionDef::new(
                name,
                vec![
                    Primitive::RegRead {
                        dst: fields::M0,
                        register: r,
                        index: Operand::Const(0),
                    },
                    Primitive::RegWrite {
                        register: r,
                        index: Operand::Const(0),
                        src: Operand::Field(fields::M0),
                    },
                ],
            )
        };
        let a1 = b.add_action(mk("first"));
        let a2 = b.add_action(mk("second"));
        b.set_control(Control::Seq(vec![
            Control::ApplyAction(a1),
            Control::ApplyAction(a2),
        ]));
        let p = b.build(TargetModel::bmv2()).unwrap();
        let tdg = TableDepGraph::build(&p);

        let mut hw = Vec::new();
        let _ = allocate(&p, &tdg, &TargetModel::tofino_like(), &mut hw);
        assert!(hw
            .iter()
            .any(|d| d.code == LintCode::RegisterMultiAccess && d.severity == Severity::Error));

        let mut sw = Vec::new();
        let _ = allocate(&p, &tdg, &TargetModel::bmv2(), &mut sw);
        assert!(sw
            .iter()
            .all(|d| d.code != LintCode::RegisterMultiAccess || d.severity == Severity::Info));
    }

    #[test]
    fn single_unit_exceeding_register_cap_is_unallocatable() {
        let mut b = ProgramBuilder::new();
        let mut prims = Vec::new();
        for i in 0..3u16 {
            let r = b.add_register(format!("r{i}"), 32, 2);
            prims.push(Primitive::RegWrite {
                register: r,
                index: Operand::Const(0),
                src: Operand::Const(1),
            });
        }
        let a = b.add_action(ActionDef::new("wide", prims));
        b.set_control(Control::ApplyAction(a));
        let p = b.build(TargetModel::bmv2()).unwrap();
        let tdg = TableDepGraph::build(&p);
        let target = TargetModel {
            registers_per_stage: 2,
            ..TargetModel::tofino_like()
        };
        let mut diags = Vec::new();
        let alloc = allocate(&p, &tdg, &target, &mut diags);
        assert!(!alloc.fits);
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::StageResourceUnallocatable));
    }
}
