//! Path-sensitive symbolic execution over the action IR, and the three
//! verdicts built on top of it.
//!
//! The concrete interpreter ([`crate::pipeline`]) answers "what does
//! this program do to *this* packet"; this module answers "what does it
//! do to *every* packet", up to a path budget, by running the same
//! control tree over a bounded 64-bit bit-vector expression domain.
//! Every PHV field starts as an opaque [`SymExpr::Input`], every
//! register cell as an opaque [`SymExpr::RegInit`], and each primitive
//! builds expressions with *exactly* the interpreter's semantics
//! (wrapping add/sub/mul, shifts saturating to zero at 64, the
//! multiply-shift hash, `msb(0) = 0`).
//!
//! Three checks consume the executor:
//!
//! - **`S4L013` target divergence** ([`check_equivalence`]): two builds
//!   of the same statistic (bmv2 vs Tofino-like) are differentially
//!   tested on a witness corpus assembled from both programs' path
//!   conditions plus boundary and pseudo-random inputs; the first
//!   diverging witness is reported as a concrete counterexample packet.
//! - **`S4L015` merge unsoundness** ([`check_merge_soundness`]): for
//!   each register, the per-packet update `U` must commute with the
//!   declared [`crate::RegMerge`] policy `⊕` — the inductive step of
//!   "sharded replay equals the reference switch" is
//!   `U(o1 ⊕ o2) == U(o1) ⊕ o2`, checked on concrete origin pairs.
//! - **`S4L016` unsafe rebind** ([`vet_rebind`]): a control-plane
//!   transaction is applied to a *shadow* clone, the post-rebind
//!   program is re-verified statically, and its paths are enumerated
//!   looking for newly reachable faults (a binding whose base address
//!   indexes past a register is found by constant folding alone).
//!
//! # Soundness caveats
//!
//! Path enumeration is exact for branch conditions but treats each
//! table entry as an independent "could match" branch, ignoring
//! priority shadowing between overlapping entries; derived witnesses
//! are therefore *candidates*, and every verdict is validated by
//! replaying the witness through the concrete interpreter before it is
//! reported. Divergence search is refutation-complete only over the
//! finite witness corpus (path-derived + boundary + sampled), not over
//! the full 2^64 input space. Exceeding the path budget is itself a
//! diagnostic (`S4L014`), never a silent cap.

use crate::action::{Operand, Primitive};
use crate::analysis::diag::{json_string, Diagnostic, LintCode, Severity};
use crate::analysis::verify_against;
use crate::control::{CmpOp, Control};
use crate::error::P4Error;
use crate::phv::{fields, FieldId, Phv, DROP_PORT};
use crate::pipeline::{DigestRecord, Pipeline};
use crate::runtime::{RuntimeRequest, RuntimeResponse};
use crate::table::MatchValue;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

// ---------------------------------------------------------------------
// Expression domain
// ---------------------------------------------------------------------

type E = Rc<SymExpr>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Mul,
    Min,
    Max,
}

/// A 64-bit symbolic value. Shared subterms are `Rc`-linked so the
/// expression graph stays a DAG even when paths fork.
#[derive(Debug)]
enum SymExpr {
    /// Compile-time constant.
    Const(u64),
    /// The initial value of a PHV field (the packet input).
    Input(FieldId),
    /// The pre-packet value of `register[index]`.
    RegInit { register: usize, index: E },
    /// A binary ALU operation with interpreter semantics.
    Bin { op: BinOp, a: E, b: E },
    /// Bitwise not.
    Not(E),
    /// Most-significant-bit position (`msb(0) = 0`).
    Msb(E),
    /// The multiply-shift hash extern.
    Hash { src: E, salt: u64, width_log2: u32 },
    /// `if c { t } else { f }` — register read-after-write aliasing.
    Ite { c: SymCond, t: E, f: E },
}

/// A comparison between two symbolic values.
#[derive(Debug, Clone)]
struct SymCond {
    a: E,
    op: CmpOp,
    b: E,
}

fn c64(v: u64) -> E {
    Rc::new(SymExpr::Const(v))
}

fn as_const(e: &E) -> Option<u64> {
    if let SymExpr::Const(v) = &**e {
        Some(*v)
    } else {
        None
    }
}

fn bin_apply(op: BinOp, a: u64, b: u64) -> u64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            if b >= 64 {
                0
            } else {
                a << b
            }
        }
        BinOp::Shr => {
            if b >= 64 {
                0
            } else {
                a >> b
            }
        }
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
    }
}

fn bin(op: BinOp, a: E, b: E) -> E {
    if let (Some(x), Some(y)) = (as_const(&a), as_const(&b)) {
        return c64(bin_apply(op, x, y));
    }
    Rc::new(SymExpr::Bin { op, a, b })
}

fn not_e(e: E) -> E {
    match as_const(&e) {
        Some(v) => c64(!v),
        None => Rc::new(SymExpr::Not(e)),
    }
}

fn msb_val(s: u64) -> u64 {
    if s == 0 {
        0
    } else {
        63 - u64::from(s.leading_zeros())
    }
}

fn msb_e(e: E) -> E {
    match as_const(&e) {
        Some(v) => c64(msb_val(v)),
        None => Rc::new(SymExpr::Msb(e)),
    }
}

fn hash_val(key: u64, salt: u64, width_log2: u32) -> u64 {
    let w = width_log2.clamp(1, 63);
    let mask = (1u64 << w) - 1;
    (key.wrapping_mul(salt | 1) >> (64 - w - 1)) & mask
}

fn hash_e(src: E, salt: u64, width_log2: u32) -> E {
    match as_const(&src) {
        Some(v) => c64(hash_val(v, salt, width_log2)),
        None => Rc::new(SymExpr::Hash {
            src,
            salt,
            width_log2,
        }),
    }
}

fn cmp_apply(op: CmpOp, a: u64, b: u64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

fn ite(c: SymCond, t: E, f: E) -> E {
    if let (Some(x), Some(y)) = (as_const(&c.a), as_const(&c.b)) {
        return if cmp_apply(c.op, x, y) { t } else { f };
    }
    if Rc::ptr_eq(&t, &f) {
        return t;
    }
    Rc::new(SymExpr::Ite { c, t, f })
}

// ---------------------------------------------------------------------
// Concrete evaluation of symbolic terms
// ---------------------------------------------------------------------

/// A concrete assignment to every input: PHV fields and initial
/// register cells.
struct SymEnv {
    fields: Vec<u64>,
    regs: Vec<Vec<u64>>,
}

impl SymEnv {
    fn new(p: &Pipeline, w: &Witness) -> Self {
        let phv = phv_from_witness(w);
        let applied = apply_witness(p, w);
        Self {
            fields: (0..fields::FIELD_COUNT)
                .map(|i| phv.get(FieldId(u16::try_from(i).unwrap_or(u16::MAX))))
                .collect(),
            regs: applied
                .registers()
                .iter()
                .map(|r| r.cells.clone())
                .collect(),
        }
    }
}

type Memo = HashMap<*const SymExpr, u64>;

fn eval_expr(e: &E, env: &SymEnv, memo: &mut Memo) -> Result<u64, P4Error> {
    let key = Rc::as_ptr(e);
    if let Some(v) = memo.get(&key) {
        return Ok(*v);
    }
    let v = match &**e {
        SymExpr::Const(v) => *v,
        SymExpr::Input(f) => env.fields.get(f.0 as usize).copied().unwrap_or(0),
        SymExpr::RegInit { register, index } => {
            let i = eval_expr(index, env, memo)?;
            let cells = env.regs.get(*register).ok_or(P4Error::UnknownId {
                kind: "register",
                id: *register,
            })?;
            usize::try_from(i)
                .ok()
                .and_then(|i| cells.get(i).copied())
                .ok_or(P4Error::RegisterOutOfBounds {
                    register: *register,
                    index: i,
                    size: cells.len() as u64,
                })?
        }
        SymExpr::Bin { op, a, b } => {
            bin_apply(*op, eval_expr(a, env, memo)?, eval_expr(b, env, memo)?)
        }
        SymExpr::Not(x) => !eval_expr(x, env, memo)?,
        SymExpr::Msb(x) => msb_val(eval_expr(x, env, memo)?),
        SymExpr::Hash {
            src,
            salt,
            width_log2,
        } => hash_val(eval_expr(src, env, memo)?, *salt, *width_log2),
        SymExpr::Ite { c, t, f } => {
            let ca = eval_expr(&c.a, env, memo)?;
            let cb = eval_expr(&c.b, env, memo)?;
            if cmp_apply(c.op, ca, cb) {
                eval_expr(t, env, memo)?
            } else {
                eval_expr(f, env, memo)?
            }
        }
    };
    memo.insert(key, v);
    Ok(v)
}

// ---------------------------------------------------------------------
// Witnesses and input domains
// ---------------------------------------------------------------------

/// A concrete input: PHV field assignments plus initial register state
/// (by register *name*, since ids differ between independent builds).
/// Unlisted fields are zero; unlisted registers keep all-zero cells.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Witness {
    /// `(field, value)` pairs, sorted by field for stable identity.
    pub fields: Vec<(FieldId, u64)>,
    /// `(register name, full cell contents)`, sorted by name.
    pub registers: Vec<(String, Vec<u64>)>,
}

impl Witness {
    fn normalize(&mut self) {
        self.fields.sort_unstable_by_key(|&(f, _)| f);
        self.fields.dedup_by_key(|&mut (f, _)| f);
        self.registers.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Renders the witness as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let fs: Vec<String> = self
            .fields
            .iter()
            .map(|(f, v)| format!("[{},{v}]", f.0))
            .collect();
        let rs: Vec<String> = self
            .registers
            .iter()
            .map(|(n, cells)| {
                let c: Vec<String> = cells.iter().map(u64::to_string).collect();
                format!("{{\"name\":{},\"cells\":[{}]}}", json_string(n), c.join(","))
            })
            .collect();
        format!(
            "{{\"fields\":[{}],\"registers\":[{}]}}",
            fs.join(","),
            rs.join(",")
        )
    }
}

/// Builds the PHV a witness describes.
#[must_use]
pub fn phv_from_witness(w: &Witness) -> Phv {
    let mut phv = Phv::new();
    for &(f, v) in &w.fields {
        phv.set(f, v);
    }
    phv
}

/// Clones `p`, removes any fault hook, and installs the witness's
/// register state (matched by name; extra cells are ignored, and values
/// are masked to the register's declared width).
#[must_use]
pub fn apply_witness(p: &Pipeline, w: &Witness) -> Pipeline {
    let mut q = p.clone();
    q.set_fault_hook(None);
    for (name, cells) in &w.registers {
        if let Some(reg) = q.registers.iter_mut().find(|r| &r.name == name) {
            let mask = reg.mask();
            for (dst, src) in reg.cells.iter_mut().zip(cells) {
                *dst = src & mask;
            }
        }
    }
    q
}

/// The value ranges differential search draws witnesses from. Bounding
/// a field (e.g. `PAYLOAD_VALUE ≤ 255`) is how callers encode the
/// preconditions under which two builds are *supposed* to agree — a
/// 16-bit unrolled multiplier is only equivalent to the exact one while
/// its operands fit 16 bits.
#[derive(Debug, Clone, Default)]
pub struct InputDomain {
    /// `(field, max value)` — witnesses assign each listed field a
    /// value in `[0, max]`.
    pub fields: Vec<(FieldId, u64)>,
    /// When set, random witnesses also fill every register cell with a
    /// value in `[0, limit]` (otherwise registers start all-zero).
    pub register_limit: Option<u64>,
}

impl InputDomain {
    /// Collects every PHV field the given programs read — primitive
    /// sources, branch-condition operands, and table keys — each
    /// unbounded (`max = u64::MAX`).
    #[must_use]
    pub fn infer(pipes: &[&Pipeline]) -> Self {
        let mut seen = HashSet::new();
        for p in pipes {
            for a in p.actions() {
                for prim in &a.primitives {
                    for f in prim.src_fields() {
                        seen.insert(f);
                    }
                }
            }
            for t in p.tables() {
                for (f, _) in &t.def.keys {
                    seen.insert(*f);
                }
            }
            collect_cond_fields(p.control(), &mut seen);
        }
        let mut fields: Vec<(FieldId, u64)> =
            seen.into_iter().map(|f| (f, u64::MAX)).collect();
        fields.sort_unstable_by_key(|&(f, _)| f);
        Self {
            fields,
            register_limit: None,
        }
    }

    /// Caps one field's witness values (inserting the field if the
    /// inference missed it).
    #[must_use]
    pub fn with_field_max(mut self, f: FieldId, max: u64) -> Self {
        if let Some(e) = self.fields.iter_mut().find(|(g, _)| *g == f) {
            e.1 = max;
        } else {
            self.fields.push((f, max));
            self.fields.sort_unstable_by_key(|&(g, _)| g);
        }
        self
    }

    /// Caps every field's witness values at `max`.
    #[must_use]
    pub fn with_all_fields_max(mut self, max: u64) -> Self {
        for e in &mut self.fields {
            e.1 = e.1.min(max);
        }
        self
    }

    /// Enables randomized initial register state bounded by `limit`.
    #[must_use]
    pub fn with_register_limit(mut self, limit: u64) -> Self {
        self.register_limit = Some(limit);
        self
    }

    fn max_of(&self, f: FieldId) -> u64 {
        self.fields
            .iter()
            .find(|(g, _)| *g == f)
            .map_or(u64::MAX, |(_, m)| *m)
    }
}

fn collect_cond_fields(c: &Control, seen: &mut HashSet<FieldId>) {
    match c {
        Control::Seq(children) => {
            for ch in children {
                collect_cond_fields(ch, seen);
            }
        }
        Control::If {
            cond,
            then_branch,
            else_branch,
        } => {
            for o in [&cond.a, &cond.b] {
                if let Operand::Field(f) = o {
                    seen.insert(*f);
                }
            }
            collect_cond_fields(then_branch, seen);
            if let Some(e) = else_branch {
                collect_cond_fields(e, seen);
            }
        }
        _ => {}
    }
}

fn boundary_values(max: u64) -> Vec<u64> {
    let mut out = vec![0, 1, 2, 3, max, max >> 1, (max >> 1).saturating_add(1)];
    for k in [4u32, 7, 8, 15, 16, 31, 32, 63] {
        let p = 1u64 << k;
        for v in [p - 1, p, p + 1] {
            if v <= max {
                out.push(v);
            }
        }
    }
    out.retain(|v| *v <= max);
    out.sort_unstable();
    out.dedup();
    out
}

/// A tiny deterministic PRNG (splitmix64) — no external dependency.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, max_inclusive: u64) -> u64 {
        if max_inclusive == u64::MAX {
            self.next()
        } else {
            self.next() % (max_inclusive + 1)
        }
    }
}

fn boundary_witnesses(domain: &InputDomain) -> Vec<Witness> {
    let mut out = vec![Witness::default()];
    for &(f, max) in &domain.fields {
        for v in boundary_values(max) {
            let mut w = Witness {
                fields: vec![(f, v)],
                registers: Vec::new(),
            };
            w.normalize();
            out.push(w);
        }
    }
    let mut all_max = Witness {
        fields: domain.fields.clone(),
        registers: Vec::new(),
    };
    all_max.normalize();
    out.push(all_max);
    out
}

/// `(name, cell count, width mask)` triples for random register fills.
fn register_shapes(p: &Pipeline) -> Vec<(String, usize, u64)> {
    p.registers()
        .iter()
        .map(|r| (r.name.clone(), r.cells.len(), r.mask()))
        .collect()
}

fn random_witnesses(
    domain: &InputDomain,
    shapes: &[(String, usize, u64)],
    samples: usize,
    seed: u64,
) -> Vec<Witness> {
    let mut rng = SplitMix64(seed ^ 0x5717_a7a1_ca5e_0bad);
    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut w = Witness::default();
        for &(f, max) in &domain.fields {
            w.fields.push((f, rng.below(max)));
        }
        if let Some(limit) = domain.register_limit {
            for (name, cells, mask) in shapes {
                let vals = (0..*cells)
                    .map(|_| rng.below(limit.min(*mask)))
                    .collect();
                w.registers.push((name.clone(), vals));
            }
        }
        w.normalize();
        out.push(w);
    }
    out
}

// ---------------------------------------------------------------------
// Path conditions and symbolic state
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PathCond {
    Branch { cond: SymCond, taken: bool },
    Table { keys: Vec<E>, chosen: Option<usize>, table: usize },
}

#[derive(Clone)]
struct SymState {
    fields: Vec<E>,
    /// Per register, the `(index, width-masked value)` writes in
    /// program order.
    writes: Vec<Vec<(E, E)>>,
    conds: Vec<PathCond>,
    digests: Vec<(u16, Vec<E>)>,
    tables_applied: Vec<(usize, bool)>,
    steps: u64,
    recirculations: u32,
    recirc_requested: bool,
    pass_done: bool,
    err: Option<P4Error>,
}

impl SymState {
    fn initial(p: &Pipeline) -> Self {
        Self {
            fields: (0..fields::FIELD_COUNT)
                .map(|i| Rc::new(SymExpr::Input(FieldId(u16::try_from(i).unwrap_or(u16::MAX)))))
                .collect(),
            writes: vec![Vec::new(); p.registers().len()],
            conds: Vec::new(),
            digests: Vec::new(),
            tables_applied: Vec::new(),
            steps: 0,
            recirculations: 0,
            recirc_requested: false,
            pass_done: false,
            err: None,
        }
    }

    fn live(&self) -> bool {
        self.err.is_none() && !self.pass_done
    }

    fn charge(&mut self, p: &Pipeline, cost: u64) -> Result<(), P4Error> {
        self.steps += cost;
        if self.steps > p.target().step_budget {
            return Err(P4Error::StepBudgetExhausted {
                budget: p.target().step_budget,
            });
        }
        Ok(())
    }

    fn get_field(&self, f: FieldId) -> E {
        self.fields
            .get(f.0 as usize)
            .cloned()
            .unwrap_or_else(|| c64(0))
    }

    fn set_field(&mut self, f: FieldId, e: E) {
        if let Some(slot) = self.fields.get_mut(f.0 as usize) {
            *slot = e;
        }
    }

    fn operand_expr(&self, o: &Operand, data: &[u64], aid: usize) -> Result<E, P4Error> {
        match o {
            Operand::Const(v) => Ok(c64(*v)),
            Operand::Field(f) => Ok(self.get_field(*f)),
            Operand::Data(n) => data
                .get(*n)
                .map(|v| c64(*v))
                .ok_or(P4Error::ActionDataOutOfBounds {
                    action: aid,
                    slot: *n,
                }),
        }
    }

    /// The current symbolic value of `register[idx]`: the initial cell
    /// masked behind a select chain over every write so far.
    fn reg_select(&self, register: usize, idx: &E) -> E {
        let mut acc = Rc::new(SymExpr::RegInit {
            register,
            index: idx.clone(),
        });
        for (wi, wv) in &self.writes[register] {
            acc = ite(
                SymCond {
                    a: idx.clone(),
                    op: CmpOp::Eq,
                    b: wi.clone(),
                },
                wv.clone(),
                acc,
            );
        }
        acc
    }
}

// ---------------------------------------------------------------------
// The executor
// ---------------------------------------------------------------------

struct Exec<'a> {
    p: &'a Pipeline,
    /// `Some` = guided (concolic) mode: every branch and table lookup
    /// is resolved concretely against this environment, producing the
    /// single path the interpreter would take. `None` = enumerate.
    env: Option<&'a SymEnv>,
    budget: usize,
    path_count: usize,
    truncated: bool,
    memo: Memo,
}

impl<'a> Exec<'a> {
    fn new(p: &'a Pipeline, env: Option<&'a SymEnv>, budget: usize) -> Self {
        Self {
            p,
            env,
            budget: budget.max(1),
            path_count: 1,
            truncated: false,
            memo: Memo::new(),
        }
    }

    fn geval(&mut self, e: &E) -> Result<u64, P4Error> {
        let env = self.env.expect("geval requires guided mode");
        eval_expr(e, env, &mut self.memo)
    }

    /// Runs the full packet lifecycle (passes + recirculation, exactly
    /// mirroring `Pipeline::process_phv`) and returns every terminal
    /// path state.
    fn run(&mut self) -> Vec<SymState> {
        let control = self.p.control();
        let mut pending = vec![SymState::initial(self.p)];
        let mut done = Vec::new();
        while !pending.is_empty() {
            for s in &mut pending {
                s.pass_done = false;
            }
            let after = self.pass(control, pending);
            pending = Vec::new();
            for mut s in after {
                if s.err.is_none() && s.recirc_requested {
                    s.recirc_requested = false;
                    if s.recirculations >= self.p.target().max_recirculations {
                        // Bounded like hardware: the packet proceeds
                        // without the extra pass.
                        done.push(s);
                    } else {
                        s.recirculations += 1;
                        pending.push(s);
                    }
                } else {
                    done.push(s);
                }
            }
        }
        done
    }

    /// Can one more path be forked? Consumes budget on success.
    fn fork_allowed(&mut self) -> bool {
        if self.path_count < self.budget {
            self.path_count += 1;
            true
        } else {
            self.truncated = true;
            false
        }
    }

    #[allow(clippy::too_many_lines)]
    fn pass(&mut self, c: &Control, states: Vec<SymState>) -> Vec<SymState> {
        match c {
            Control::Nop => states,
            Control::Seq(children) => children
                .iter()
                .fold(states, |acc, child| self.pass(child, acc)),
            Control::Exit => states
                .into_iter()
                .map(|mut s| {
                    if s.live() {
                        s.pass_done = true;
                    }
                    s
                })
                .collect(),
            Control::Recirculate => states
                .into_iter()
                .map(|mut s| {
                    if s.live() {
                        match s.charge(self.p, 1) {
                            Ok(()) => s.recirc_requested = true,
                            Err(e) => s.err = Some(e),
                        }
                    }
                    s
                })
                .collect(),
            Control::ApplyAction(aid) => states
                .into_iter()
                .map(|s| self.apply_action(s, *aid, &[]))
                .collect(),
            Control::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let mut out = Vec::new();
                for mut s in states {
                    if !s.live() {
                        out.push(s);
                        continue;
                    }
                    if let Err(e) = s.charge(self.p, 1) {
                        s.err = Some(e);
                        out.push(s);
                        continue;
                    }
                    // Branch-condition operands are evaluated with no
                    // action data, as in the interpreter.
                    let ea = s.operand_expr(&cond.a, &[], usize::MAX);
                    let eb = s.operand_expr(&cond.b, &[], usize::MAX);
                    let (ea, eb) = match (ea, eb) {
                        (Ok(a), Ok(b)) => (a, b),
                        (Err(e), _) | (_, Err(e)) => {
                            s.err = Some(e);
                            out.push(s);
                            continue;
                        }
                    };
                    let sym = SymCond {
                        a: ea.clone(),
                        op: cond.op,
                        b: eb.clone(),
                    };
                    let decided = if let (Some(x), Some(y)) = (as_const(&ea), as_const(&eb)) {
                        Some(cmp_apply(cond.op, x, y))
                    } else if self.env.is_some() {
                        match (self.geval(&ea), self.geval(&eb)) {
                            (Ok(x), Ok(y)) => Some(cmp_apply(cond.op, x, y)),
                            (Err(e), _) | (_, Err(e)) => {
                                s.err = Some(e);
                                out.push(s);
                                continue;
                            }
                        }
                    } else {
                        None
                    };
                    match decided {
                        Some(true) => {
                            s.conds.push(PathCond::Branch {
                                cond: sym,
                                taken: true,
                            });
                            out.extend(self.pass(then_branch, vec![s]));
                        }
                        Some(false) => {
                            s.conds.push(PathCond::Branch {
                                cond: sym,
                                taken: false,
                            });
                            match else_branch {
                                Some(e) => out.extend(self.pass(e, vec![s])),
                                None => out.push(s),
                            }
                        }
                        None => {
                            let take_else = self.fork_allowed();
                            let mut t = s.clone();
                            t.conds.push(PathCond::Branch {
                                cond: sym.clone(),
                                taken: true,
                            });
                            out.extend(self.pass(then_branch, vec![t]));
                            if take_else {
                                s.conds.push(PathCond::Branch {
                                    cond: sym,
                                    taken: false,
                                });
                                match else_branch {
                                    Some(e) => out.extend(self.pass(e, vec![s])),
                                    None => out.push(s),
                                }
                            }
                        }
                    }
                }
                out
            }
            Control::ApplyTable(tid) => {
                let mut out = Vec::new();
                for s in states {
                    out.extend(self.apply_table(s, *tid));
                }
                out
            }
        }
    }

    fn apply_table(&mut self, mut s: SymState, tid: usize) -> Vec<SymState> {
        if !s.live() {
            return vec![s];
        }
        if let Err(e) = s.charge(self.p, 1) {
            s.err = Some(e);
            return vec![s];
        }
        let Some(table) = self.p.tables().get(tid) else {
            s.err = Some(P4Error::UnknownId {
                kind: "table",
                id: tid,
            });
            return vec![s];
        };
        let keys: Vec<E> = table
            .def
            .keys
            .iter()
            .map(|(f, _)| s.get_field(*f))
            .collect();

        // Resolve the lookup concretely when every key is known (all
        // constants, or guided mode).
        let concrete: Option<Result<Vec<u64>, P4Error>> = if keys.iter().all(|k| as_const(k).is_some())
        {
            Some(Ok(keys.iter().map(|k| as_const(k).unwrap_or(0)).collect()))
        } else if self.env.is_some() {
            let mut vals = Vec::with_capacity(keys.len());
            let mut err = None;
            for k in &keys {
                match self.geval(k) {
                    Ok(v) => vals.push(v),
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
            Some(err.map_or(Ok(vals), Err))
        } else {
            None
        };

        if let Some(res) = concrete {
            let vals = match res {
                Ok(v) => v,
                Err(e) => {
                    s.err = Some(e);
                    return vec![s];
                }
            };
            let mut probe = Phv::new();
            for ((f, _), v) in table.def.keys.iter().zip(&vals) {
                probe.set(*f, *v);
            }
            let hit = table.lookup(&probe);
            let chosen = hit.and_then(|h| {
                table
                    .entries()
                    .iter()
                    .position(|e| std::ptr::eq(e, h))
            });
            let invocation = match hit {
                Some(e) => Some((e.action, e.action_data.clone())),
                None => table.def.default_action.clone(),
            };
            s.conds.push(PathCond::Table {
                keys,
                chosen,
                table: tid,
            });
            s.tables_applied.push((tid, hit.is_some()));
            return vec![match invocation {
                Some((aid, data)) => self.apply_action(s, aid, &data),
                None => s,
            }];
        }

        // Enumerate: one branch per entry ("this entry could match")
        // plus the miss branch. Priority shadowing between overlapping
        // entries is deliberately ignored — witnesses are re-validated
        // concretely before any verdict is derived from them.
        type Branch = (Option<usize>, Option<(usize, Vec<u64>)>);
        let mut branches: Vec<Branch> = Vec::new();
        for (i, e) in table.entries().iter().enumerate() {
            branches.push((Some(i), Some((e.action, e.action_data.clone()))));
        }
        branches.push((None, table.def.default_action.clone()));

        let mut out = Vec::new();
        let mut first = true;
        for (chosen, invocation) in branches {
            if !first && !self.fork_allowed() {
                break;
            }
            first = false;
            let mut b = s.clone();
            b.conds.push(PathCond::Table {
                keys: keys.clone(),
                chosen,
                table: tid,
            });
            b.tables_applied.push((tid, chosen.is_some()));
            out.push(match invocation {
                Some((aid, data)) => self.apply_action(b, aid, &data),
                None => b,
            });
        }
        out
    }

    fn apply_action(&mut self, mut s: SymState, aid: usize, data: &[u64]) -> SymState {
        if !s.live() {
            return s;
        }
        let Some(action) = self.p.actions().get(aid) else {
            s.err = Some(P4Error::UnknownId {
                kind: "action",
                id: aid,
            });
            return s;
        };
        let action = action.clone();
        for prim in &action.primitives {
            let cost = if matches!(prim, Primitive::Msb { .. }) {
                u64::from(self.p.target().msb_cost)
            } else {
                1
            };
            if let Err(e) = s.charge(self.p, cost) {
                s.err = Some(e);
                return s;
            }
            if let Err(e) = self.exec_primitive(&mut s, aid, prim, data) {
                s.err = Some(e);
                return s;
            }
        }
        s
    }

    /// Bounds-checks a register index where possible: always in guided
    /// mode (mirroring the interpreter's eager check), and for
    /// constant-folded indices even while enumerating — which is what
    /// catches a rebind whose base address points past the register
    /// without needing any witness at all.
    fn check_reg_index(&mut self, register: usize, idx: &E) -> Result<(), P4Error> {
        let size = self.p.registers()[register].cells.len() as u64;
        let concrete = match as_const(idx) {
            Some(v) => Some(v),
            None if self.env.is_some() => Some(self.geval(idx)?),
            None => None,
        };
        if let Some(i) = concrete {
            if i >= size {
                return Err(P4Error::RegisterOutOfBounds {
                    register,
                    index: i,
                    size,
                });
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn exec_primitive(
        &mut self,
        s: &mut SymState,
        aid: usize,
        p: &Primitive,
        data: &[u64],
    ) -> Result<(), P4Error> {
        macro_rules! ev {
            ($o:expr) => {
                s.operand_expr($o, data, aid)?
            };
        }
        match p {
            Primitive::Set { dst, src } => {
                let v = ev!(src);
                s.set_field(*dst, v);
            }
            Primitive::Add { dst, a, b } => {
                let v = bin(BinOp::Add, ev!(a), ev!(b));
                s.set_field(*dst, v);
            }
            Primitive::Sub { dst, a, b } => {
                let v = bin(BinOp::Sub, ev!(a), ev!(b));
                s.set_field(*dst, v);
            }
            Primitive::And { dst, a, b } => {
                let v = bin(BinOp::And, ev!(a), ev!(b));
                s.set_field(*dst, v);
            }
            Primitive::Or { dst, a, b } => {
                let v = bin(BinOp::Or, ev!(a), ev!(b));
                s.set_field(*dst, v);
            }
            Primitive::Xor { dst, a, b } => {
                let v = bin(BinOp::Xor, ev!(a), ev!(b));
                s.set_field(*dst, v);
            }
            Primitive::Not { dst, src } => {
                let v = not_e(ev!(src));
                s.set_field(*dst, v);
            }
            Primitive::Shl { dst, src, amount } => {
                let v = bin(BinOp::Shl, ev!(src), ev!(amount));
                s.set_field(*dst, v);
            }
            Primitive::Shr { dst, src, amount } => {
                let v = bin(BinOp::Shr, ev!(src), ev!(amount));
                s.set_field(*dst, v);
            }
            Primitive::Mul { dst, a, b } => {
                let v = bin(BinOp::Mul, ev!(a), ev!(b));
                s.set_field(*dst, v);
            }
            Primitive::Min { dst, a, b } => {
                let v = bin(BinOp::Min, ev!(a), ev!(b));
                s.set_field(*dst, v);
            }
            Primitive::Max { dst, a, b } => {
                let v = bin(BinOp::Max, ev!(a), ev!(b));
                s.set_field(*dst, v);
            }
            Primitive::Msb { dst, src } => {
                let v = msb_e(ev!(src));
                s.set_field(*dst, v);
            }
            Primitive::Hash {
                dst,
                src,
                salt,
                width_log2,
            } => {
                let v = hash_e(ev!(src), *salt, *width_log2);
                s.set_field(*dst, v);
            }
            Primitive::RegRead {
                dst,
                register,
                index,
            } => {
                let idx = ev!(index);
                self.check_reg_index(*register, &idx)?;
                let v = s.reg_select(*register, &idx);
                s.set_field(*dst, v);
            }
            Primitive::RegWrite {
                register,
                index,
                src,
            } => {
                // Interpreter order: resolve (and bounds-check) the
                // index first, then the value.
                let idx = ev!(index);
                self.check_reg_index(*register, &idx)?;
                let v = ev!(src);
                let mask = self.p.registers()[*register].mask();
                let masked = bin(BinOp::And, v, c64(mask));
                s.writes[*register].push((idx, masked));
            }
            Primitive::Digest { id, values } => {
                let mut vals = Vec::with_capacity(values.len());
                for v in values {
                    vals.push(ev!(v));
                }
                s.digests.push((*id, vals));
            }
            Primitive::Forward { port } => {
                let v = ev!(port);
                s.set_field(fields::EGRESS_PORT, v);
            }
            Primitive::Drop => {
                s.set_field(fields::EGRESS_PORT, c64(DROP_PORT));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Path-derived witnesses
// ---------------------------------------------------------------------

fn negate(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Ge => CmpOp::Lt,
    }
}

/// `a op b  ⇔  b mirror(op) a`.
fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq | CmpOp::Ne => op,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// A value satisfying `v op c`, when one exists.
fn solve_target(op: CmpOp, c: u64) -> Option<u64> {
    match op {
        CmpOp::Eq | CmpOp::Le | CmpOp::Ge => Some(c),
        CmpOp::Ne => Some(c.wrapping_add(1)),
        CmpOp::Lt => c.checked_sub(1),
        CmpOp::Gt => c.checked_add(1),
    }
}

/// Greedily assembles a concrete input that steers execution toward one
/// enumerated path: solves `variable op constant` path conditions for
/// raw inputs (PHV fields, constant-indexed register cells) and copies
/// match values out of chosen table entries. First assignment wins;
/// unsolvable conditions are skipped — the result is a *candidate*
/// witness, always validated by concrete replay.
fn derive_witness(p: &Pipeline, s: &SymState, domain: &InputDomain) -> Witness {
    // Field assignments carry a specificity: exact/branch-derived values
    // are final, while LPM-derived values can be overridden by a later,
    // longer prefix on the same field. Two nested LPM constraints (a /8
    // route entry and a /24 drilldown binding keyed on the same address)
    // are both satisfied by the longer prefix's value; keeping the first
    // (shorter) one would make the replay miss the more specific entry.
    const EXACT: u32 = u32::MAX;
    let mut field_vals: HashMap<FieldId, (u64, u32)> = HashMap::new();
    let mut reg_vals: HashMap<(usize, u64), u64> = HashMap::new();
    for cond in &s.conds {
        match cond {
            PathCond::Branch { cond, taken } => {
                let (var, op, c) = if let Some(c) = as_const(&cond.b) {
                    (&cond.a, cond.op, c)
                } else if let Some(c) = as_const(&cond.a) {
                    (&cond.b, mirror(cond.op), c)
                } else {
                    continue;
                };
                let eff = if *taken { op } else { negate(op) };
                let Some(v) = solve_target(eff, c) else {
                    continue;
                };
                match &**var {
                    SymExpr::Input(f) => {
                        field_vals
                            .entry(*f)
                            .or_insert_with(|| (v.min(domain.max_of(*f)), EXACT));
                    }
                    SymExpr::RegInit { register, index } => {
                        if let Some(i) = as_const(index) {
                            if let Some(reg) = p.registers().get(*register) {
                                reg_vals
                                    .entry((*register, i))
                                    .or_insert_with(|| v & reg.mask());
                            }
                        }
                    }
                    _ => {}
                }
            }
            PathCond::Table {
                keys,
                chosen: Some(i),
                table,
            } => {
                let Some(entry) = p
                    .tables()
                    .get(*table)
                    .and_then(|t| t.entries().get(*i))
                else {
                    continue;
                };
                for (key_expr, mv) in keys.iter().zip(&entry.key) {
                    let SymExpr::Input(f) = &**key_expr else {
                        continue;
                    };
                    let (v, spec) = match mv {
                        MatchValue::Exact(v) => (*v, EXACT),
                        MatchValue::Lpm { value, prefix_len } => (*value, u32::from(*prefix_len)),
                        MatchValue::Ternary { value, mask } => (value & mask, EXACT),
                        MatchValue::Range { lo, .. } => (*lo, EXACT),
                        MatchValue::Any => continue,
                    };
                    let slot = field_vals.entry(*f).or_insert((v, spec));
                    if spec > slot.1 {
                        *slot = (v, spec);
                    }
                }
            }
            PathCond::Table { .. } => {}
        }
    }
    let mut w = Witness {
        fields: field_vals.into_iter().map(|(f, (v, _))| (f, v)).collect(),
        registers: Vec::new(),
    };
    let mut per_reg: HashMap<usize, Vec<(u64, u64)>> = HashMap::new();
    for ((r, i), v) in reg_vals {
        per_reg.entry(r).or_default().push((i, v));
    }
    for (r, assigns) in per_reg {
        let reg = &p.registers()[r];
        let mut cells = vec![0u64; reg.cells.len()];
        for (i, v) in assigns {
            if let Some(c) = usize::try_from(i).ok().and_then(|i| cells.get_mut(i)) {
                *c = v;
            }
        }
        w.registers.push((reg.name.clone(), cells));
    }
    w.normalize();
    w
}

// ---------------------------------------------------------------------
// Concrete replay and comparison
// ---------------------------------------------------------------------

/// Everything externally observable about one packet: forwarding
/// outcome, digests, and post-packet register state (by name).
/// Recirculation counts and step totals are deliberately excluded —
/// targets may legitimately differ on those.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observed {
    /// Egress port, if forwarded.
    pub egress: Option<u64>,
    /// True if dropped.
    pub dropped: bool,
    /// Digests pushed to the controller.
    pub digests: Vec<DigestRecord>,
    /// `(register name, post-packet cells)`.
    pub registers: Vec<(String, Vec<u64>)>,
}

/// Replays a witness through a clone of `p` (fault hook removed) and
/// returns what an external observer would see.
///
/// # Errors
///
/// Propagates interpreter faults ([`P4Error::RegisterOutOfBounds`],
/// [`P4Error::StepBudgetExhausted`], …).
pub fn run_witness(p: &Pipeline, w: &Witness) -> Result<Observed, P4Error> {
    let mut q = apply_witness(p, w);
    let mut phv = phv_from_witness(w);
    let out = q.process_phv(&mut phv)?;
    Ok(Observed {
        egress: out.egress,
        dropped: out.dropped,
        digests: out.digests,
        registers: q
            .registers()
            .iter()
            .map(|r| (r.name.clone(), r.cells.clone()))
            .collect(),
    })
}

fn error_kind(e: &P4Error) -> &'static str {
    match e {
        P4Error::UnknownId { .. } => "unknown-id",
        P4Error::UnsupportedOnTarget { .. } => "unsupported-on-target",
        P4Error::RegisterOutOfBounds { .. } => "register-out-of-bounds",
        P4Error::StepBudgetExhausted { .. } => "step-budget-exhausted",
        P4Error::KeyShapeMismatch { .. } => "key-shape-mismatch",
        P4Error::TableFull { .. } => "table-full",
        P4Error::EntryNotFound { .. } => "entry-not-found",
        P4Error::ActionDataOutOfBounds { .. } => "action-data-out-of-bounds",
        P4Error::Invalid { .. } => "invalid",
        P4Error::ShardPanicked { .. } => "shard-panicked",
    }
}

fn divergence_detail(
    ra: &Result<Observed, P4Error>,
    rb: &Result<Observed, P4Error>,
) -> Option<String> {
    match (ra, rb) {
        (Err(x), Err(y)) => (error_kind(x) != error_kind(y))
            .then(|| format!("error kinds differ: `{x}` vs `{y}`")),
        (Err(x), Ok(_)) => Some(format!("first build faults (`{x}`), second completes")),
        (Ok(_), Err(y)) => Some(format!("second build faults (`{y}`), first completes")),
        (Ok(x), Ok(y)) => {
            if x.dropped != y.dropped {
                return Some(format!("dropped differs: {} vs {}", x.dropped, y.dropped));
            }
            if x.egress != y.egress {
                return Some(format!("egress differs: {:?} vs {:?}", x.egress, y.egress));
            }
            if x.digests != y.digests {
                return Some(format!(
                    "digests differ: {:?} vs {:?}",
                    x.digests, y.digests
                ));
            }
            for (n, cx) in &x.registers {
                let Some((_, cy)) = y.registers.iter().find(|(m, _)| m == n) else {
                    continue; // compare common registers only
                };
                if cx != cy {
                    return Some(format!("register `{n}` differs: {cx:?} vs {cy:?}"));
                }
            }
            None
        }
    }
}

/// Replays `w` through both builds and describes the first observable
/// difference, if any — how a reported counterexample is reproduced.
#[must_use]
pub fn replay_divergence(a: &Pipeline, b: &Pipeline, w: &Witness) -> Option<String> {
    divergence_detail(&run_witness(a, w), &run_witness(b, w))
}

// ---------------------------------------------------------------------
// Options and reports
// ---------------------------------------------------------------------

/// Tuning knobs for the symbolic checks.
#[derive(Debug, Clone)]
pub struct SymbolicOptions {
    /// Maximum number of enumerated paths per program; exceeding it
    /// emits `S4L014`, never a silent cap.
    pub path_budget: usize,
    /// Pseudo-random witnesses added to the corpus.
    pub samples: usize,
    /// PRNG seed for the random corpus (deterministic by default).
    pub seed: u64,
    /// Input domain; inferred from the programs when `None`.
    pub domain: Option<InputDomain>,
    /// Origin values per register cell in the merge-soundness check.
    pub merge_origins: usize,
    /// Witness cap for the merge-soundness check (each witness costs
    /// `origins²` concrete replays per written cell).
    pub merge_witnesses: usize,
}

impl Default for SymbolicOptions {
    fn default() -> Self {
        Self {
            path_budget: 4096,
            samples: 64,
            seed: 0x5744_7431_0151_0c4e,
            domain: None,
            merge_origins: 6,
            merge_witnesses: 24,
        }
    }
}

fn count_sev(diags: &[Diagnostic], s: Severity) -> usize {
    diags.iter().filter(|d| d.severity == s).count()
}

fn passes_diags(diags: &[Diagnostic], deny_warnings: bool) -> bool {
    count_sev(diags, Severity::Error) == 0
        && (!deny_warnings || count_sev(diags, Severity::Warning) == 0)
}

fn diags_json(diags: &[Diagnostic]) -> String {
    let v: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    v.join(",")
}

/// A concrete input on which two builds disagree.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The diverging input.
    pub witness: Witness,
    /// What differed.
    pub detail: String,
}

/// Result of a differential equivalence check.
#[derive(Debug, Clone)]
pub struct EquivReport {
    /// Paths enumerated in the first build.
    pub paths_a: usize,
    /// Paths enumerated in the second build.
    pub paths_b: usize,
    /// True when either enumeration hit the path budget.
    pub truncated: bool,
    /// Distinct witnesses replayed through both builds.
    pub witnesses: usize,
    /// The first diverging input, if any.
    pub counterexample: Option<Counterexample>,
    /// `S4L013` / `S4L014` findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl EquivReport {
    /// True when no divergence was found.
    #[must_use]
    pub fn equivalent(&self) -> bool {
        self.counterexample.is_none()
    }

    /// Lint outcome under the standard severity policy.
    #[must_use]
    pub fn passes(&self, deny_warnings: bool) -> bool {
        passes_diags(&self.diagnostics, deny_warnings)
    }

    /// Renders the report as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let ce = self.counterexample.as_ref().map_or_else(
            || "null".to_string(),
            |c| {
                format!(
                    "{{\"witness\":{},\"detail\":{}}}",
                    c.witness.to_json(),
                    json_string(&c.detail)
                )
            },
        );
        format!(
            "{{\"paths_a\":{},\"paths_b\":{},\"truncated\":{},\"witnesses\":{},\"equivalent\":{},\"counterexample\":{},\"diagnostics\":[{}]}}",
            self.paths_a,
            self.paths_b,
            self.truncated,
            self.witnesses,
            self.equivalent(),
            ce,
            diags_json(&self.diagnostics)
        )
    }
}

/// Differentially verifies that two builds of the same program are
/// observably equivalent: enumerates both programs' paths, assembles a
/// witness corpus (path-derived + boundary + sampled, deduplicated),
/// and replays every witness through both concrete interpreters. The
/// first divergence becomes an `S4L013` error carrying a concrete
/// counterexample packet; budget truncation becomes `S4L014`.
#[must_use]
pub fn check_equivalence(a: &Pipeline, b: &Pipeline, opts: &SymbolicOptions) -> EquivReport {
    let mut ex_a = Exec::new(a, None, opts.path_budget);
    let states_a = ex_a.run();
    let mut ex_b = Exec::new(b, None, opts.path_budget);
    let states_b = ex_b.run();
    let truncated = ex_a.truncated || ex_b.truncated;

    let domain = opts
        .domain
        .clone()
        .unwrap_or_else(|| InputDomain::infer(&[a, b]));
    let b_names: HashSet<&str> = b.registers().iter().map(|r| r.name.as_str()).collect();
    let common_shapes: Vec<(String, usize, u64)> = register_shapes(a)
        .into_iter()
        .filter(|(n, _, _)| b_names.contains(n.as_str()))
        .collect();

    let mut seen: HashSet<Witness> = HashSet::new();
    let mut corpus: Vec<Witness> = Vec::new();
    {
        let mut add = |w: Witness| {
            if seen.insert(w.clone()) {
                corpus.push(w);
            }
        };
        for s in &states_a {
            add(derive_witness(a, s, &domain));
        }
        for s in &states_b {
            add(derive_witness(b, s, &domain));
        }
        for w in boundary_witnesses(&domain) {
            add(w);
        }
        if let Some(limit) = domain.register_limit {
            let mut w = Witness::default();
            for (n, cells, mask) in &common_shapes {
                w.registers
                    .push((n.clone(), vec![limit.min(*mask); *cells]));
            }
            w.normalize();
            add(w);
        }
        for w in random_witnesses(&domain, &common_shapes, opts.samples, opts.seed) {
            add(w);
        }
    }

    let mut diagnostics = Vec::new();
    let mut counterexample = None;
    for w in &corpus {
        let ra = run_witness(a, w);
        let rb = run_witness(b, w);
        if let Some(detail) = divergence_detail(&ra, &rb) {
            diagnostics.push(Diagnostic::new(
                LintCode::TargetDivergence,
                Severity::Error,
                format!(
                    "targets `{}` vs `{}`",
                    a.target().name,
                    b.target().name
                ),
                format!(
                    "the two builds diverge on a concrete packet: {detail} (witness {})",
                    w.to_json()
                ),
            ));
            counterexample = Some(Counterexample {
                witness: w.clone(),
                detail,
            });
            break;
        }
    }
    if truncated {
        diagnostics.push(Diagnostic::new(
            LintCode::PathBudget,
            Severity::Warning,
            format!(
                "targets `{}` vs `{}`",
                a.target().name,
                b.target().name
            ),
            format!(
                "path enumeration truncated at {} paths; the equivalence verdict covers the enumerated prefix plus the sampled corpus only",
                opts.path_budget
            ),
        ));
    }
    EquivReport {
        paths_a: states_a.len(),
        paths_b: states_b.len(),
        truncated,
        witnesses: corpus.len(),
        counterexample,
        diagnostics,
    }
}

/// One violation of `U(o1 ⊕ o2) == U(o1) ⊕ o2`.
#[derive(Debug, Clone)]
pub struct MergeCounterexample {
    /// Register name.
    pub register: String,
    /// Cell the violation was observed on.
    pub cell: usize,
    /// First shard's pre-packet cell value.
    pub origin_a: u64,
    /// Second shard's contribution.
    pub origin_b: u64,
    /// `U(o1 ⊕ o2)` — the reference switch's view.
    pub merged_then_processed: u64,
    /// `U(o1) ⊕ o2` — the sharded-replay view.
    pub processed_then_merged: u64,
    /// The packet driving the update.
    pub witness: Witness,
}

/// Result of the merge-soundness check.
#[derive(Debug, Clone)]
pub struct MergeReport {
    /// Registers checked (mergeable policies only).
    pub checked: usize,
    /// Registers exempt under [`crate::RegMerge::None`].
    pub exempt: Vec<String>,
    /// Witnesses that drove updates.
    pub witnesses: usize,
    /// Concrete origin pairs evaluated.
    pub origin_pairs: usize,
    /// First violation per offending register.
    pub counterexamples: Vec<MergeCounterexample>,
    /// `S4L015` findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl MergeReport {
    /// Lint outcome under the standard severity policy.
    #[must_use]
    pub fn passes(&self, deny_warnings: bool) -> bool {
        passes_diags(&self.diagnostics, deny_warnings)
    }

    /// Renders the report as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let ex: Vec<String> = self.exempt.iter().map(|n| json_string(n)).collect();
        let ces: Vec<String> = self
            .counterexamples
            .iter()
            .map(|c| {
                format!(
                    "{{\"register\":{},\"cell\":{},\"origin_a\":{},\"origin_b\":{},\"merged_then_processed\":{},\"processed_then_merged\":{},\"witness\":{}}}",
                    json_string(&c.register),
                    c.cell,
                    c.origin_a,
                    c.origin_b,
                    c.merged_then_processed,
                    c.processed_then_merged,
                    c.witness.to_json()
                )
            })
            .collect();
        format!(
            "{{\"checked\":{},\"exempt\":[{}],\"witnesses\":{},\"origin_pairs\":{},\"counterexamples\":[{}],\"diagnostics\":[{}]}}",
            self.checked,
            ex.join(","),
            self.witnesses,
            self.origin_pairs,
            ces.join(","),
            diags_json(&self.diagnostics)
        )
    }
}

fn merge_policy_name(m: crate::pipeline::RegMerge) -> &'static str {
    match m {
        crate::pipeline::RegMerge::Sum => "sum",
        crate::pipeline::RegMerge::SatSum => "saturating-sum",
        crate::pipeline::RegMerge::Max => "max",
        crate::pipeline::RegMerge::None => "none",
    }
}

/// Runs one packet against a clone whose `registers[reg].cells[cell]`
/// starts at `origin` (masked), returning the cell's post-packet value.
fn cell_after(
    p: &Pipeline,
    w: &Witness,
    reg: usize,
    cell: usize,
    origin: u64,
) -> Result<u64, P4Error> {
    let mut q = apply_witness(p, w);
    let mask = q.registers()[reg].mask();
    q.registers[reg].cells[cell] = origin & mask;
    let mut phv = phv_from_witness(w);
    q.process_phv(&mut phv)?;
    Ok(q.registers()[reg].cells[cell])
}

fn thin_witnesses(v: Vec<Witness>, cap: usize) -> Vec<Witness> {
    if v.len() <= cap {
        return v;
    }
    let n = v.len();
    let mut out = Vec::with_capacity(cap);
    let mut last = usize::MAX;
    for i in 0..cap {
        let idx = i * n / cap;
        if idx != last {
            out.push(v[idx].clone());
            last = idx;
        }
    }
    out
}

/// Statically checks each register's per-packet update function against
/// its declared merge policy: for every cell a witness writes,
/// `U(o1 ⊕ o2)` must equal `U(o1) ⊕ o2` over concrete origin pairs —
/// the inductive step that makes sharded replay bit-identical to the
/// reference switch. A violation is an `S4L015` error.
///
/// Caveat: origins vary one cell at a time; auxiliary registers are
/// held at the witness's values, so cross-register update coupling
/// (e.g. a seeded-once flag guarding an accumulator) is only exercised
/// as far as the witness corpus drives it.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn check_merge_soundness(p: &Pipeline, opts: &SymbolicOptions) -> MergeReport {
    let domain = opts
        .domain
        .clone()
        .unwrap_or_else(|| InputDomain::infer(&[p]));
    let cap = opts.merge_witnesses.max(1);
    // Path-derived witnesses come first: they are the ones that steer
    // execution into table hits and guarded branches, i.e. into the
    // actions that actually update registers. Boundary and random
    // witnesses fill the remaining budget. (Budget truncation here
    // only limits coverage; it is not an S4L014 finding — the
    // equivalence check owns that verdict.)
    let mut seen: HashSet<Witness> = HashSet::new();
    let mut path_ws: Vec<Witness> = Vec::new();
    let mut ex = Exec::new(p, None, opts.path_budget);
    for s in ex.run() {
        let w = derive_witness(p, &s, &domain);
        if seen.insert(w.clone()) {
            path_ws.push(w);
        }
    }
    let mut corpus = thin_witnesses(path_ws, cap);
    let mut rest = boundary_witnesses(&domain);
    rest.extend(random_witnesses(
        &domain,
        &register_shapes(p),
        opts.samples,
        opts.seed,
    ));
    rest.retain(|w| !seen.contains(w));
    let room = cap.saturating_sub(corpus.len()).max(4);
    corpus.extend(thin_witnesses(rest, room));

    // Guided runs discover which cells each witness actually writes.
    let mut touched: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    for (wi, w) in corpus.iter().enumerate() {
        let env = SymEnv::new(p, w);
        let mut ex = Exec::new(p, Some(&env), 1);
        let states = ex.run();
        let Some(s) = states.first() else { continue };
        if s.err.is_some() {
            continue;
        }
        let mut memo = Memo::new();
        for (r, writes) in s.writes.iter().enumerate() {
            for (ie, _) in writes {
                let Ok(i) = eval_expr(ie, &env, &mut memo) else {
                    continue;
                };
                let Ok(cell) = usize::try_from(i) else {
                    continue;
                };
                let e = touched.entry((r, cell)).or_default();
                if e.len() < 3 {
                    e.push(wi);
                }
            }
        }
    }

    let mut checked = 0;
    let mut exempt = Vec::new();
    let mut origin_pairs = 0;
    let mut counterexamples = Vec::new();
    let mut diagnostics = Vec::new();
    for (r, reg) in p.registers().iter().enumerate() {
        let merge = reg.merge;
        if merge == crate::pipeline::RegMerge::None {
            exempt.push(reg.name.clone());
            continue;
        }
        checked += 1;
        let mask = reg.mask();
        let mut origins: Vec<u64> = vec![
            0,
            1,
            2,
            3,
            mask,
            mask >> 1,
            1u64 << (reg.width_bits / 2).min(63),
        ];
        for o in &mut origins {
            *o &= mask;
        }
        origins.sort_unstable();
        origins.dedup();
        origins.truncate(opts.merge_origins.max(2));
        let mut violated = false;
        for ((tr, cell), wits) in &touched {
            if *tr != r || violated {
                continue;
            }
            for &wi in wits {
                if violated {
                    break;
                }
                let w = &corpus[wi];
                for &o1 in &origins {
                    if violated {
                        break;
                    }
                    for &o2 in &origins {
                        let lhs = cell_after(p, w, r, *cell, merge.combine(o1, o2, mask));
                        let rhs = cell_after(p, w, r, *cell, o1)
                            .map(|u| merge.combine(u, o2, mask));
                        let (Ok(lhs), Ok(rhs)) = (lhs, rhs) else {
                            continue;
                        };
                        origin_pairs += 1;
                        if lhs != rhs {
                            diagnostics.push(Diagnostic::new(
                                LintCode::MergeUnsound,
                                Severity::Error,
                                format!("register `{}`", reg.name),
                                format!(
                                    "per-packet update does not commute with the declared `{}` merge: U(o1⊕o2)={lhs} but U(o1)⊕o2={rhs} for origins o1={o1}, o2={o2} on cell {cell} — sharded replay would drift from the reference switch; declare `RegMerge::None` (and reconcile at a higher level) or make the update merge-linear",
                                    merge_policy_name(merge)
                                ),
                            ));
                            counterexamples.push(MergeCounterexample {
                                register: reg.name.clone(),
                                cell: *cell,
                                origin_a: o1,
                                origin_b: o2,
                                merged_then_processed: lhs,
                                processed_then_merged: rhs,
                                witness: w.clone(),
                            });
                            violated = true;
                            break;
                        }
                    }
                }
            }
        }
    }
    exempt.sort();
    MergeReport {
        checked,
        exempt,
        witnesses: corpus.len(),
        origin_pairs,
        counterexamples,
        diagnostics,
    }
}

/// Result of vetting one rebind transaction.
#[derive(Debug, Clone)]
pub struct RebindReport {
    /// Paths enumerated in the post-rebind program.
    pub paths: usize,
    /// True when enumeration hit the path budget.
    pub truncated: bool,
    /// Concrete witnesses swept.
    pub witnesses: usize,
    /// `S4L016` / `S4L014` findings.
    pub diagnostics: Vec<Diagnostic>,
    /// The vetted post-rebind pipeline, present only when the
    /// transaction is safe (no error findings) — callers use it as the
    /// next shadow model.
    pub vetted: Option<Pipeline>,
}

impl RebindReport {
    /// True when the transaction may be applied.
    #[must_use]
    pub fn passes(&self) -> bool {
        count_sev(&self.diagnostics, Severity::Error) == 0
    }

    /// Renders the report as a JSON object (the vetted pipeline is
    /// omitted).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"paths\":{},\"truncated\":{},\"witnesses\":{},\"passes\":{},\"diagnostics\":[{}]}}",
            self.paths,
            self.truncated,
            self.witnesses,
            self.passes(),
            diags_json(&self.diagnostics)
        )
    }
}

/// Statically vets a control-plane transaction before it reaches the
/// switch: applies `req` to a clone of `p`, re-runs the full static
/// verifier on the post-rebind program, enumerates its paths looking
/// for newly reachable faults, and sweeps a concrete witness corpus.
/// Faults reproduced by a concrete packet are `S4L016` errors;
/// symbolic-only faults (possibly shadowed by table priorities) are
/// warnings. On success, [`RebindReport::vetted`] carries the
/// post-rebind pipeline for use as the next shadow model.
#[must_use]
pub fn vet_rebind(p: &Pipeline, req: &RuntimeRequest, opts: &SymbolicOptions) -> RebindReport {
    let ctx = "rebind transaction".to_string();
    let mut diags = Vec::new();
    let mut cand = p.clone();
    cand.set_fault_hook(None);
    if let RuntimeResponse::Error(msg) = cand.runtime(req) {
        diags.push(Diagnostic::new(
            LintCode::UnsafeRebind,
            Severity::Error,
            ctx,
            format!("rejected by the runtime before static analysis: {msg}"),
        ));
        return RebindReport {
            paths: 0,
            truncated: false,
            witnesses: 0,
            diagnostics: diags,
            vetted: None,
        };
    }

    let vr = verify_against(&cand, &cand.target().clone());
    for d in &vr.diagnostics {
        if d.severity == Severity::Error {
            diags.push(Diagnostic::new(
                LintCode::UnsafeRebind,
                Severity::Error,
                d.context.clone(),
                format!(
                    "post-rebind program fails static verification [{}]: {}",
                    d.code.code(),
                    d.message
                ),
            ));
        }
    }

    let mut ex = Exec::new(&cand, None, opts.path_budget);
    let states = ex.run();
    let paths = states.len();
    let domain = opts
        .domain
        .clone()
        .unwrap_or_else(|| InputDomain::infer(&[&cand]));
    let mut reported: HashSet<&'static str> = HashSet::new();
    for s in &states {
        let Some(e) = &s.err else { continue };
        if !reported.insert(error_kind(e)) {
            continue;
        }
        let w = derive_witness(&cand, s, &domain);
        match run_witness(&cand, &w) {
            Err(ce) => diags.push(Diagnostic::new(
                LintCode::UnsafeRebind,
                Severity::Error,
                ctx.clone(),
                format!(
                    "post-rebind program faults on a concrete packet: {ce} (witness {})",
                    w.to_json()
                ),
            )),
            Ok(_) => diags.push(Diagnostic::new(
                LintCode::UnsafeRebind,
                Severity::Warning,
                ctx.clone(),
                format!(
                    "a symbolic path reaches `{e}` but no concrete witness reproduced it (possibly shadowed by table priorities)"
                ),
            )),
        }
    }
    if ex.truncated {
        diags.push(Diagnostic::new(
            LintCode::PathBudget,
            Severity::Warning,
            ctx.clone(),
            format!(
                "path enumeration truncated at {} paths; the rebind gate vetted only the enumerated prefix",
                opts.path_budget
            ),
        ));
    }

    let mut corpus = boundary_witnesses(&domain);
    corpus.extend(random_witnesses(
        &domain,
        &register_shapes(&cand),
        opts.samples,
        opts.seed,
    ));
    let witnesses = corpus.len();
    for w in &corpus {
        if let Err(e) = run_witness(&cand, w) {
            if reported.insert(error_kind(&e)) {
                diags.push(Diagnostic::new(
                    LintCode::UnsafeRebind,
                    Severity::Error,
                    ctx.clone(),
                    format!(
                        "post-rebind program faults on a concrete packet: {e} (witness {})",
                        w.to_json()
                    ),
                ));
            }
        }
    }
    diags.sort_by_key(|d| std::cmp::Reverse(d.severity));
    let ok = count_sev(&diags, Severity::Error) == 0;
    RebindReport {
        paths,
        truncated: ex.truncated,
        witnesses,
        diagnostics: diags,
        vetted: ok.then_some(cand),
    }
}

/// Checks that guided symbolic execution agrees with the concrete
/// interpreter on one witness: same error kind (or none), same final
/// PHV fields, register state, digests, recirculation count, and
/// applied-table trace. Powers the differential property test.
///
/// # Errors
///
/// Returns a description of the first disagreement.
#[allow(clippy::missing_panics_doc)] // single-path invariant checked above the unwrap
pub fn check_agreement(p: &Pipeline, w: &Witness) -> Result<(), String> {
    let mut q = apply_witness(p, w);
    let mut phv = phv_from_witness(w);
    let concrete = q.process_phv(&mut phv);

    let env = SymEnv::new(p, w);
    let mut ex = Exec::new(p, Some(&env), 1);
    let mut states = ex.run();
    if states.len() != 1 {
        return Err(format!(
            "guided execution produced {} paths, expected exactly 1",
            states.len()
        ));
    }
    let s = states.pop().expect("length checked");

    match (&concrete, &s.err) {
        (Err(ce), Some(se)) => {
            return if error_kind(ce) == error_kind(se) {
                Ok(())
            } else {
                Err(format!(
                    "error kinds differ: concrete `{ce}` vs symbolic `{se}`"
                ))
            };
        }
        (Err(ce), None) => {
            return Err(format!("concrete run faults (`{ce}`) but symbolic completes"));
        }
        (Ok(_), Some(se)) => {
            return Err(format!("symbolic run faults (`{se}`) but concrete completes"));
        }
        (Ok(_), None) => {}
    }
    let out = concrete.as_ref().expect("checked above");

    let mut memo = Memo::new();
    for (i, fe) in s.fields.iter().enumerate() {
        let f = FieldId(u16::try_from(i).unwrap_or(u16::MAX));
        let sym = eval_expr(fe, &env, &mut memo).map_err(|e| format!("field {i} eval: {e}"))?;
        let conc = phv.get(f);
        if sym != conc {
            return Err(format!(
                "field {i} differs: symbolic {sym} vs concrete {conc}"
            ));
        }
    }

    let mut regs = env.regs.clone();
    for (r, writes) in s.writes.iter().enumerate() {
        for (ie, ve) in writes {
            let i = eval_expr(ie, &env, &mut memo).map_err(|e| format!("write idx eval: {e}"))?;
            let v = eval_expr(ve, &env, &mut memo).map_err(|e| format!("write val eval: {e}"))?;
            match usize::try_from(i).ok().and_then(|i| regs[r].get_mut(i)) {
                Some(cell) => *cell = v,
                None => return Err(format!("symbolic write out of bounds: reg {r} idx {i}")),
            }
        }
    }
    for (r, reg) in q.registers().iter().enumerate() {
        if regs[r] != reg.cells {
            return Err(format!(
                "register `{}` differs: symbolic {:?} vs concrete {:?}",
                reg.name, regs[r], reg.cells
            ));
        }
    }

    if s.digests.len() != out.digests.len() {
        return Err(format!(
            "digest count differs: symbolic {} vs concrete {}",
            s.digests.len(),
            out.digests.len()
        ));
    }
    for ((id, vals), d) in s.digests.iter().zip(&out.digests) {
        if *id != d.id {
            return Err(format!("digest id differs: {} vs {}", id, d.id));
        }
        let evs: Result<Vec<u64>, P4Error> =
            vals.iter().map(|e| eval_expr(e, &env, &mut memo)).collect();
        let evs = evs.map_err(|e| format!("digest eval: {e}"))?;
        if evs != d.values {
            return Err(format!(
                "digest values differ: {:?} vs {:?}",
                evs, d.values
            ));
        }
    }
    if s.recirculations != out.recirculations {
        return Err(format!(
            "recirculations differ: symbolic {} vs concrete {}",
            s.recirculations, out.recirculations
        ));
    }
    if s.tables_applied != out.tables_applied {
        return Err(format!(
            "applied-table trace differs: {:?} vs {:?}",
            s.tables_applied, out.tables_applied
        ));
    }
    Ok(())
}

/// Enumerates `p`'s paths and reports `(path count, truncated)` — the
/// cheap introspection entry point used by tooling.
#[must_use]
pub fn enumerate_paths(p: &Pipeline, opts: &SymbolicOptions) -> (usize, bool) {
    let mut ex = Exec::new(p, None, opts.path_budget);
    let states = ex.run();
    (states.len(), ex.truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionDef;
    use crate::control::Cond;
    use crate::pipeline::RegMerge;
    use crate::program::ProgramBuilder;
    use crate::table::{Entry, MatchKind, TableDef};
    use crate::target::TargetModel;

    fn witness(fields: Vec<(FieldId, u64)>) -> Witness {
        let mut w = Witness {
            fields,
            registers: Vec::new(),
        };
        w.normalize();
        w
    }

    /// Identity vs low-8-bit truncation: observably equal only below
    /// 256.
    fn truncating_pair() -> (Pipeline, Pipeline) {
        let exact = {
            let mut b = ProgramBuilder::new();
            let a = b.add_action(ActionDef::new(
                "copy",
                vec![
                    Primitive::Set {
                        dst: fields::M0,
                        src: Operand::Field(fields::PKT_LEN),
                    },
                    Primitive::Digest {
                        id: 1,
                        values: vec![Operand::Field(fields::M0)],
                    },
                ],
            ));
            b.set_control(Control::ApplyAction(a));
            b.build(TargetModel::bmv2()).unwrap()
        };
        let truncating = {
            let mut b = ProgramBuilder::new();
            let a = b.add_action(ActionDef::new(
                "copy8",
                vec![
                    Primitive::And {
                        dst: fields::M0,
                        a: Operand::Field(fields::PKT_LEN),
                        b: Operand::Const(0xff),
                    },
                    Primitive::Digest {
                        id: 1,
                        values: vec![Operand::Field(fields::M0)],
                    },
                ],
            ));
            b.set_control(Control::ApplyAction(a));
            b.build(TargetModel::tofino_like()).unwrap()
        };
        (exact, truncating)
    }

    fn counting_pipeline() -> Pipeline {
        let mut b = ProgramBuilder::new();
        let reg = b.add_register("counters", 64, 16);
        let fwd = b.add_action(ActionDef::new(
            "forward",
            vec![Primitive::Forward {
                port: Operand::Const(1),
            }],
        ));
        let count = b.add_action(ActionDef::new(
            "count",
            vec![
                Primitive::RegRead {
                    dst: fields::M0,
                    register: reg,
                    index: Operand::Data(0),
                },
                Primitive::Add {
                    dst: fields::M0,
                    a: Operand::Field(fields::M0),
                    b: Operand::Field(fields::PKT_LEN),
                },
                Primitive::RegWrite {
                    register: reg,
                    index: Operand::Data(0),
                    src: Operand::Field(fields::M0),
                },
                Primitive::Forward {
                    port: Operand::Const(1),
                },
            ],
        ));
        let t = b.add_table(TableDef {
            name: "bind".into(),
            keys: vec![(fields::IPV4_DST, MatchKind::Lpm { width: 32 })],
            max_entries: 8,
            allowed_actions: vec![fwd, count],
            default_action: Some((fwd, vec![])),
        });
        b.set_control(Control::ApplyTable(t));
        let mut p = b.build(TargetModel::bmv2()).unwrap();
        let resp = p.runtime(&RuntimeRequest::InsertEntry {
            table: t,
            entry: Entry {
                key: vec![MatchValue::Lpm {
                    value: 0x0a00_0000,
                    prefix_len: 8,
                }],
                priority: 0,
                action: count,
                action_data: vec![3],
            },
        });
        assert!(resp.is_ok());
        p
    }

    #[test]
    fn identical_builds_are_equivalent() {
        let a = counting_pipeline();
        let b = counting_pipeline();
        let opts = SymbolicOptions {
            samples: 16,
            ..SymbolicOptions::default()
        };
        let report = check_equivalence(&a, &b, &opts);
        assert!(report.equivalent(), "{}", report.to_json());
        assert!(report.passes(true));
        assert!(report.paths_a >= 2, "hit and miss paths at minimum");
        assert!(!report.truncated);
    }

    #[test]
    fn truncating_build_diverges_with_concrete_counterexample() {
        let (exact, truncating) = truncating_pair();
        let report = check_equivalence(&exact, &truncating, &SymbolicOptions::default());
        assert!(!report.equivalent());
        let ce = report.counterexample.as_ref().unwrap();
        // The counterexample must reproduce through the interpreter.
        let detail = replay_divergence(&exact, &truncating, &ce.witness);
        assert!(detail.is_some(), "counterexample failed to reproduce");
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::TargetDivergence && d.severity == Severity::Error));
    }

    #[test]
    fn bounded_domain_restores_equivalence() {
        let (exact, truncating) = truncating_pair();
        let domain = InputDomain::infer(&[&exact, &truncating])
            .with_field_max(fields::PKT_LEN, 0xff);
        let opts = SymbolicOptions {
            domain: Some(domain),
            ..SymbolicOptions::default()
        };
        let report = check_equivalence(&exact, &truncating, &opts);
        assert!(report.equivalent(), "{}", report.to_json());
    }

    #[test]
    fn path_budget_truncation_is_a_warning() {
        let mut b = ProgramBuilder::new();
        let mut seq = Vec::new();
        for i in 0..4u16 {
            seq.push(Control::If {
                cond: Cond::new(
                    Operand::Field(fields::scratch(i)),
                    CmpOp::Eq,
                    Operand::Const(0),
                ),
                then_branch: Box::new(Control::Nop),
                else_branch: None,
            });
        }
        b.set_control(Control::Seq(seq));
        let p = b.build(TargetModel::bmv2()).unwrap();
        let opts = SymbolicOptions {
            path_budget: 3,
            samples: 4,
            ..SymbolicOptions::default()
        };
        let (paths, truncated) = enumerate_paths(&p, &opts);
        assert!(truncated);
        assert!(paths <= 3);
        let report = check_equivalence(&p, &p, &opts);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::PathBudget && d.severity == Severity::Warning));
        assert!(report.passes(false) && !report.passes(true));
    }

    #[test]
    fn counter_update_is_sum_merge_sound() {
        let p = counting_pipeline();
        let report = check_merge_soundness(&p, &SymbolicOptions::default());
        assert_eq!(report.checked, 1);
        assert!(report.counterexamples.is_empty(), "{}", report.to_json());
        assert!(report.origin_pairs > 0, "the counter cell must be exercised");
    }

    /// EWMA-style update `acc = acc - (acc >> 2) + x`: not linear in
    /// the origin, so sum-merging shards drifts.
    fn ewma_pipeline(merge: RegMerge) -> Pipeline {
        let mut b = ProgramBuilder::new();
        let reg = b.add_register("acc", 64, 1);
        b.set_register_merge(reg, merge);
        let a = b.add_action(ActionDef::new(
            "ewma",
            vec![
                Primitive::RegRead {
                    dst: fields::M0,
                    register: reg,
                    index: Operand::Const(0),
                },
                Primitive::Shr {
                    dst: fields::scratch(1),
                    src: Operand::Field(fields::M0),
                    amount: Operand::Const(2),
                },
                Primitive::Sub {
                    dst: fields::M0,
                    a: Operand::Field(fields::M0),
                    b: Operand::Field(fields::scratch(1)),
                },
                Primitive::Add {
                    dst: fields::M0,
                    a: Operand::Field(fields::M0),
                    b: Operand::Field(fields::PKT_LEN),
                },
                Primitive::RegWrite {
                    register: reg,
                    index: Operand::Const(0),
                    src: Operand::Field(fields::M0),
                },
            ],
        ));
        b.set_control(Control::ApplyAction(a));
        b.build(TargetModel::bmv2()).unwrap()
    }

    #[test]
    fn ewma_under_sum_merge_is_unsound() {
        let report = check_merge_soundness(&ewma_pipeline(RegMerge::Sum), &SymbolicOptions::default());
        assert!(!report.counterexamples.is_empty());
        let ce = &report.counterexamples[0];
        assert_eq!(ce.register, "acc");
        assert_ne!(ce.merged_then_processed, ce.processed_then_merged);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::MergeUnsound && d.severity == Severity::Error));
    }

    #[test]
    fn ewma_under_none_merge_is_exempt() {
        let report =
            check_merge_soundness(&ewma_pipeline(RegMerge::None), &SymbolicOptions::default());
        assert_eq!(report.checked, 0);
        assert_eq!(report.exempt, vec!["acc".to_string()]);
        assert!(report.passes(true));
    }

    #[test]
    fn safe_rebind_is_vetted() {
        let p = counting_pipeline();
        let req = RuntimeRequest::InsertEntry {
            table: 0,
            entry: Entry {
                key: vec![MatchValue::Lpm {
                    value: 0x0b00_0000,
                    prefix_len: 8,
                }],
                priority: 0,
                action: 1,
                action_data: vec![5],
            },
        };
        let report = vet_rebind(&p, &req, &SymbolicOptions::default());
        assert!(report.passes(), "{}", report.to_json());
        let vetted = report.vetted.as_ref().unwrap();
        assert_eq!(vetted.tables()[0].entries().len(), 2);
    }

    #[test]
    fn out_of_bounds_rebind_is_rejected_statically() {
        let p = counting_pipeline();
        // Slot 999 indexes far past the 16-cell counter register: the
        // chosen-entry path const-folds the index and faults without
        // needing a witness, and the derived packet confirms it.
        let req = RuntimeRequest::InsertEntry {
            table: 0,
            entry: Entry {
                key: vec![MatchValue::Lpm {
                    value: 0x0c00_0000,
                    prefix_len: 8,
                }],
                priority: 0,
                action: 1,
                action_data: vec![999],
            },
        };
        let report = vet_rebind(&p, &req, &SymbolicOptions::default());
        assert!(!report.passes(), "{}", report.to_json());
        assert!(report.vetted.is_none());
        assert!(report.diagnostics.iter().any(|d| {
            d.code == LintCode::UnsafeRebind
                && d.severity == Severity::Error
                && d.message.contains("out of bounds")
        }));
    }

    #[test]
    fn guided_execution_agrees_with_interpreter() {
        let p = counting_pipeline();
        let cases = vec![
            witness(vec![]),
            witness(vec![(fields::IPV4_DST, 0x0a01_0203), (fields::PKT_LEN, 100)]),
            witness(vec![(fields::IPV4_DST, 0x0b00_0001), (fields::PKT_LEN, 7)]),
            Witness {
                fields: vec![(fields::IPV4_DST, 0x0aff_ffff), (fields::PKT_LEN, u64::MAX)],
                registers: vec![("counters".into(), vec![9; 16])],
            },
        ];
        for w in cases {
            let mut w = w;
            w.normalize();
            check_agreement(&p, &w).unwrap();
        }
    }

    #[test]
    fn agreement_covers_faulting_paths() {
        // A pipeline that faults (register OOB) on TTL >= 4.
        let mut b = ProgramBuilder::new();
        let reg = b.add_register("r", 64, 4);
        let a = b.add_action(ActionDef::new(
            "idx",
            vec![Primitive::RegRead {
                dst: fields::M0,
                register: reg,
                index: Operand::Field(fields::IPV4_TTL),
            }],
        ));
        b.set_control(Control::ApplyAction(a));
        let p = b.build(TargetModel::bmv2()).unwrap();
        check_agreement(&p, &witness(vec![(fields::IPV4_TTL, 2)])).unwrap();
        check_agreement(&p, &witness(vec![(fields::IPV4_TTL, 64)])).unwrap();
    }

    #[test]
    fn recirculation_and_exit_agree() {
        let mut b = ProgramBuilder::new();
        let bump = b.add_action(ActionDef::new(
            "bump",
            vec![Primitive::Add {
                dst: fields::M0,
                a: Operand::Field(fields::M0),
                b: Operand::Const(1),
            }],
        ));
        // Recirculate until M0 == 3, then exit before the final bump.
        b.set_control(Control::Seq(vec![
            Control::If {
                cond: Cond::new(Operand::Field(fields::M0), CmpOp::Ge, Operand::Const(3)),
                then_branch: Box::new(Control::Exit),
                else_branch: None,
            },
            Control::ApplyAction(bump),
            Control::Recirculate,
        ]));
        let p = b.build(TargetModel::bmv2()).unwrap();
        check_agreement(&p, &witness(vec![])).unwrap();
        let (paths, truncated) = enumerate_paths(&p, &SymbolicOptions::default());
        assert!(!truncated);
        assert!(paths >= 2);
    }

    #[test]
    fn witness_json_is_stable() {
        let w = witness(vec![(fields::PKT_LEN, 3)]);
        assert_eq!(w.to_json(), "{\"fields\":[[1,3]],\"registers\":[]}");
    }
}

