//! Abstract-interpretation value-range / bit-width analysis.
//!
//! Walks the control tree once (programs are loop-free by
//! construction), carrying a `[lo, hi]` interval per PHV field, and
//! checks the paper's arithmetic — `N·Xsumsq`, `Xsum²`, the `Xsumsq +=
//! 2f+1` moment update, `2·σ` thresholds — against the configured
//! register and PHV widths:
//!
//! - a **register store** whose value *provably* exceeds the register
//!   width is an error ([`LintCode::WidthTruncation`]); one that merely
//!   *cannot be proven* to fit is recorded as info
//!   ([`LintCode::WidthUnproven`]) together with the primitive chain
//!   that produced the value;
//! - a **multiplication or constant shift** whose result interval
//!   crosses the 64-bit PHV word is reported
//!   ([`LintCode::MulOverflow`] / [`LintCode::ShiftOverflow`]; error
//!   when certain, info when merely possible);
//! - a **register index** that can (or provably does) fall outside the
//!   register's cells is reported ([`LintCode::RegisterIndexRange`]).
//!
//! Two deliberate tolerances keep the analysis aligned with P4 idiom
//! rather than noisy:
//!
//! - **`Add`/`Sub` wraparound is never diagnosed.** Wrapping add is how
//!   P4 programs encode negative offsets (the echo app maps `[-255,
//!   255]` payloads with `payload + 255`) and `0 - t` builds all-ones
//!   masks in the unrolled multiplier; the interval simply widens.
//! - **Modular accumulators are accepted.** A value read from register
//!   `R` and written back to `R` after additive updates is a counter;
//!   every counter eventually wraps its width, and flagging that would
//!   flag every program in existence. Such stores count as
//!   `modular_accumulators` in the summary instead.
//!
//! Values read from registers are bounded by the register width (the
//! interpreter masks on write), table action data by the entries
//! installed at analysis time (unknown slots widen to the full word),
//! and parser-populated header fields by the full 64-bit word. Scratch
//! metadata starts at zero — unless the program recirculates, in which
//! case a second pass may observe leftovers and every field starts
//! unconstrained.

use super::diag::{Diagnostic, LintCode, Severity};
use crate::action::{Operand, Primitive};
use crate::control::{CmpOp, Cond, Control};
use crate::phv::{fields, FieldId};
use crate::pipeline::Pipeline;
use std::collections::HashMap;

const WORD: u128 = 1u128 << 64;
const U64M: u128 = WORD - 1;

/// How many producing primitives a value remembers (diagnostics show
/// the tail of longer chains).
const CHAIN_CAP: usize = 6;

/// A closed interval of possible `u64` values (`hi <= u64::MAX` after
/// normalisation; transient results use the full `u128`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: u128,
    /// Largest possible value.
    pub hi: u128,
}

impl Interval {
    /// The single value `v`.
    #[must_use]
    pub const fn exact(v: u64) -> Self {
        Self {
            lo: v as u128,
            hi: v as u128,
        }
    }

    /// The full 64-bit word.
    #[must_use]
    pub const fn full() -> Self {
        Self { lo: 0, hi: U64M }
    }

    /// `[lo, hi]`.
    #[must_use]
    pub const fn new(lo: u64, hi: u64) -> Self {
        Self {
            lo: lo as u128,
            hi: hi as u128,
        }
    }

    /// Smallest interval containing both.
    #[must_use]
    pub fn hull(self, other: Self) -> Self {
        Self {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Wraps a transient result back into the 64-bit word: exact when
    /// the whole interval wrapped once, the full word when it straddles
    /// the boundary.
    fn normalized(self) -> Self {
        if self.hi <= U64M {
            self
        } else if self.lo >= WORD && self.hi < 2 * WORD {
            Self {
                lo: self.lo - WORD,
                hi: self.hi - WORD,
            }
        } else {
            Self::full()
        }
    }

    /// Whether any value exceeds the 64-bit word before normalisation.
    fn overflows_word(self) -> bool {
        self.hi >= WORD
    }

    /// Whether every value exceeds the 64-bit word.
    fn certainly_overflows_word(self) -> bool {
        self.lo >= WORD
    }
}

/// Smallest all-ones value covering `x` (e.g. 5 -> 7).
fn ones_cover(x: u128) -> u128 {
    let x = x.min(U64M);
    if x == 0 {
        0
    } else {
        let bits = 128 - x.leading_zeros();
        (1u128 << bits) - 1
    }
}

fn msb_index(x: u128) -> u128 {
    if x == 0 {
        0
    } else {
        u128::from(127 - x.leading_zeros())
    }
}

/// An abstract value: interval, provenance chain, and — for the
/// modular-accumulator tolerance — the register whose (width-bounded)
/// read the value additively derives from.
#[derive(Debug, Clone)]
struct AbsVal {
    iv: Interval,
    acc: Option<usize>,
    chain: Vec<String>,
}

impl AbsVal {
    fn of(iv: Interval) -> Self {
        Self {
            iv,
            acc: None,
            chain: Vec::new(),
        }
    }

    fn join(&self, other: &Self) -> Self {
        Self {
            iv: self.iv.hull(other.iv),
            acc: if self.acc == other.acc { self.acc } else { None },
            chain: if self.chain.len() <= other.chain.len() {
                self.chain.clone()
            } else {
                other.chain.clone()
            },
        }
    }
}

fn push_chain(chain: &mut Vec<String>, entry: String) {
    chain.push(entry);
    if chain.len() > CHAIN_CAP {
        let drop = chain.len() - CHAIN_CAP;
        chain.drain(..drop);
    }
}

fn merged_chain(a: &AbsVal, b: &AbsVal, entry: String) -> Vec<String> {
    let mut chain = a.chain.clone();
    for c in &b.chain {
        if !chain.contains(c) {
            chain.push(c.clone());
        }
    }
    let mut out = chain;
    push_chain(&mut out, entry);
    out
}

/// Per-field abstract state.
type State = HashMap<FieldId, AbsVal>;

/// Counters summarising what the analysis could prove.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RangeSummary {
    /// Register stores examined.
    pub register_writes: usize,
    /// Stores proven to fit the register width.
    pub proven_fits: usize,
    /// Stores accepted as intentional modular counters (read-modify-
    /// write of the same register).
    pub modular_accumulators: usize,
    /// Stores neither proven nor accepted (info diagnostics).
    pub unproven: usize,
}

/// Per-slot action-data bounds known at analysis time.
type DataBounds = Vec<Option<(u64, u64)>>;

struct Analyzer<'p> {
    p: &'p Pipeline,
    diags: Vec<Diagnostic>,
    stats: RangeSummary,
    recirculates: bool,
}

fn has_recirculate(c: &Control) -> bool {
    match c {
        Control::Recirculate => true,
        Control::Seq(children) => children.iter().any(has_recirculate),
        Control::If {
            then_branch,
            else_branch,
            ..
        } => {
            has_recirculate(then_branch)
                || else_branch.as_deref().is_some_and(has_recirculate)
        }
        _ => false,
    }
}

impl Analyzer<'_> {
    fn initial(&self, f: FieldId) -> AbsVal {
        if self.recirculates || f.0 < fields::M0.0 {
            // Parser-populated headers and metadata: anything the wire
            // can carry. (With recirculation, scratch survives passes.)
            AbsVal::of(Interval::full())
        } else {
            AbsVal::of(Interval::exact(0))
        }
    }

    fn field(&self, state: &State, f: FieldId) -> AbsVal {
        state.get(&f).cloned().unwrap_or_else(|| self.initial(f))
    }

    fn operand(&self, state: &State, op: &Operand, data: &DataBounds) -> AbsVal {
        match op {
            Operand::Const(c) => AbsVal::of(Interval::exact(*c)),
            Operand::Field(f) => self.field(state, *f),
            Operand::Data(n) => match data.get(*n).copied().flatten() {
                Some((lo, hi)) => AbsVal {
                    iv: Interval::new(lo, hi),
                    acc: None,
                    chain: vec![format!("data[{n}]")],
                },
                None => AbsVal {
                    iv: Interval::full(),
                    acc: None,
                    chain: vec![format!("data[{n}] (controller-installed, unbounded)")],
                },
            },
        }
    }

    fn reg_mask(&self, r: usize) -> u128 {
        let w = self.p.registers()[r].width_bits;
        if w >= 64 {
            U64M
        } else {
            (1u128 << w) - 1
        }
    }

    fn check_index(&mut self, idx: &AbsVal, r: usize, ctx: &str) {
        let len = self.p.registers()[r].cells.len() as u128;
        let name = &self.p.registers()[r].name;
        if idx.iv.lo >= len {
            self.diags.push(
                Diagnostic::new(
                    LintCode::RegisterIndexRange,
                    Severity::Error,
                    ctx.to_string(),
                    format!(
                        "index into register `{name}` is provably out of bounds: [{}, {}] vs {len} cells",
                        idx.iv.lo, idx.iv.hi
                    ),
                )
                .with_chain(idx.chain.clone()),
            );
        } else if idx.iv.hi >= len {
            self.diags.push(
                Diagnostic::new(
                    LintCode::RegisterIndexRange,
                    Severity::Info,
                    ctx.to_string(),
                    format!(
                        "index into register `{name}` not proven in bounds: [{}, {}] vs {len} cells",
                        idx.iv.lo, idx.iv.hi
                    ),
                )
                .with_chain(idx.chain.clone()),
            );
        }
    }

    /// Reports possible/certain wrap of the 64-bit PHV word for an
    /// un-normalised result.
    fn check_word(&mut self, code: LintCode, raw: Interval, chain: &[String], ctx: &str, what: &str) {
        if raw.certainly_overflows_word() {
            self.diags.push(
                Diagnostic::new(
                    LintCode::WidthTruncation,
                    Severity::Error,
                    ctx.to_string(),
                    format!("{what} provably exceeds the 64-bit PHV word: [{}, {}]", raw.lo, raw.hi),
                )
                .with_chain(chain.to_vec()),
            );
        } else if raw.overflows_word() {
            self.diags.push(
                Diagnostic::new(
                    code,
                    Severity::Info,
                    ctx.to_string(),
                    format!("{what} can exceed the 64-bit PHV word: [{}, {}]", raw.lo, raw.hi),
                )
                .with_chain(chain.to_vec()),
            );
        }
    }

    #[allow(clippy::too_many_lines)] // one arm per primitive, mirroring the interpreter
    fn eval_action(&mut self, state: &mut State, action_id: usize, data: &DataBounds, ctx: &str) {
        let Some(action) = self.p.actions().get(action_id) else {
            return;
        };
        let primitives = action.primitives.clone();
        for (i, prim) in primitives.iter().enumerate() {
            let pctx = format!("{ctx}, primitive #{i}");
            match prim {
                Primitive::Set { dst, src } => {
                    let mut v = self.operand(state, src, data);
                    push_chain(&mut v.chain, format!("Set -> f{}", dst.0));
                    state.insert(*dst, v);
                }
                Primitive::Add { dst, a, b } => {
                    let va = self.operand(state, a, data);
                    let vb = self.operand(state, b, data);
                    let raw = Interval {
                        lo: va.iv.lo + vb.iv.lo,
                        hi: va.iv.hi + vb.iv.hi,
                    };
                    // Wrapping add is P4 idiom (negative encodings);
                    // never diagnosed, interval widens.
                    let acc = match (va.acc, vb.acc) {
                        (Some(r), None) | (None, Some(r)) => Some(r),
                        (Some(r1), Some(r2)) if r1 == r2 => Some(r1),
                        _ => None,
                    };
                    let chain = merged_chain(&va, &vb, format!("Add -> f{}", dst.0));
                    state.insert(
                        *dst,
                        AbsVal {
                            iv: raw.normalized(),
                            acc,
                            chain,
                        },
                    );
                }
                Primitive::Sub { dst, a, b } => {
                    let va = self.operand(state, a, data);
                    let vb = self.operand(state, b, data);
                    // Wrapping sub builds masks (`0 - t`); never
                    // diagnosed.
                    let iv = if va.iv.lo >= vb.iv.hi {
                        Interval {
                            lo: va.iv.lo - vb.iv.hi,
                            hi: va.iv.hi - vb.iv.lo,
                        }
                    } else {
                        Interval::full()
                    };
                    let acc = va.acc;
                    let chain = merged_chain(&va, &vb, format!("Sub -> f{}", dst.0));
                    state.insert(*dst, AbsVal { iv, acc, chain });
                }
                Primitive::Mul { dst, a, b } => {
                    let va = self.operand(state, a, data);
                    let vb = self.operand(state, b, data);
                    let raw = Interval {
                        lo: va.iv.lo.saturating_mul(vb.iv.lo),
                        hi: va.iv.hi.saturating_mul(vb.iv.hi),
                    };
                    let chain = merged_chain(&va, &vb, format!("Mul -> f{}", dst.0));
                    self.check_word(LintCode::MulOverflow, raw, &chain, &pctx, "product");
                    state.insert(
                        *dst,
                        AbsVal {
                            iv: raw.normalized(),
                            acc: None,
                            chain,
                        },
                    );
                }
                Primitive::And { dst, a, b } => {
                    let va = self.operand(state, a, data);
                    let vb = self.operand(state, b, data);
                    let iv = Interval {
                        lo: 0,
                        hi: va.iv.hi.min(vb.iv.hi),
                    };
                    let chain = merged_chain(&va, &vb, format!("And -> f{}", dst.0));
                    state.insert(*dst, AbsVal { iv, acc: None, chain });
                }
                Primitive::Or { dst, a, b } => {
                    let va = self.operand(state, a, data);
                    let vb = self.operand(state, b, data);
                    let iv = Interval {
                        lo: va.iv.lo.max(vb.iv.lo),
                        hi: ones_cover(va.iv.hi.max(vb.iv.hi)),
                    };
                    let chain = merged_chain(&va, &vb, format!("Or -> f{}", dst.0));
                    state.insert(*dst, AbsVal { iv, acc: None, chain });
                }
                Primitive::Xor { dst, a, b } => {
                    let va = self.operand(state, a, data);
                    let vb = self.operand(state, b, data);
                    let iv = Interval {
                        lo: 0,
                        hi: ones_cover(va.iv.hi.max(vb.iv.hi)),
                    };
                    let chain = merged_chain(&va, &vb, format!("Xor -> f{}", dst.0));
                    state.insert(*dst, AbsVal { iv, acc: None, chain });
                }
                Primitive::Not { dst, src } => {
                    let v = self.operand(state, src, data);
                    let iv = Interval {
                        lo: U64M - v.iv.hi.min(U64M),
                        hi: U64M - v.iv.lo.min(U64M),
                    };
                    let mut chain = v.chain;
                    push_chain(&mut chain, format!("Not -> f{}", dst.0));
                    state.insert(*dst, AbsVal { iv, acc: None, chain });
                }
                Primitive::Shl { dst, src, amount } => {
                    let v = self.operand(state, src, data);
                    let am = self.operand(state, amount, data);
                    let chain = merged_chain(&v, &am, format!("Shl -> f{}", dst.0));
                    let iv = if am.iv.lo >= 64 {
                        // Every distance is out of range: the
                        // interpreter yields 0.
                        Interval::exact(0)
                    } else {
                        let klo = u32::try_from(am.iv.lo).unwrap_or(63);
                        let raw = if am.iv.hi >= 64 {
                            // Some distances wrap to 0, others shift
                            // by up to the maximal in-range 63.
                            Interval {
                                lo: 0,
                                hi: v.iv.hi << 63,
                            }
                        } else {
                            let khi = u32::try_from(am.iv.hi).unwrap_or(63);
                            Interval {
                                lo: v.iv.lo << klo,
                                hi: v.iv.hi << khi,
                            }
                        };
                        self.check_word(LintCode::ShiftOverflow, raw, &chain, &pctx, "shifted value");
                        raw.normalized()
                    };
                    state.insert(*dst, AbsVal { iv, acc: None, chain });
                }
                Primitive::Shr { dst, src, amount } => {
                    let v = self.operand(state, src, data);
                    let am = self.operand(state, amount, data);
                    let chain = merged_chain(&v, &am, format!("Shr -> f{}", dst.0));
                    let iv = if am.iv.lo >= 64 {
                        Interval::exact(0)
                    } else {
                        let klo = u32::try_from(am.iv.lo).unwrap_or(63);
                        let lo = if am.iv.hi >= 64 {
                            0
                        } else {
                            v.iv.lo >> u32::try_from(am.iv.hi).unwrap_or(63)
                        };
                        Interval {
                            lo,
                            hi: v.iv.hi >> klo,
                        }
                    };
                    state.insert(*dst, AbsVal { iv, acc: None, chain });
                }
                Primitive::Min { dst, a, b } => {
                    let va = self.operand(state, a, data);
                    let vb = self.operand(state, b, data);
                    let iv = Interval {
                        lo: va.iv.lo.min(vb.iv.lo),
                        hi: va.iv.hi.min(vb.iv.hi),
                    };
                    let chain = merged_chain(&va, &vb, format!("Min -> f{}", dst.0));
                    state.insert(*dst, AbsVal { iv, acc: None, chain });
                }
                Primitive::Max { dst, a, b } => {
                    let va = self.operand(state, a, data);
                    let vb = self.operand(state, b, data);
                    let iv = Interval {
                        lo: va.iv.lo.max(vb.iv.lo),
                        hi: va.iv.hi.max(vb.iv.hi),
                    };
                    let chain = merged_chain(&va, &vb, format!("Max -> f{}", dst.0));
                    state.insert(*dst, AbsVal { iv, acc: None, chain });
                }
                Primitive::Msb { dst, src } => {
                    let v = self.operand(state, src, data);
                    let iv = Interval {
                        lo: msb_index(v.iv.lo),
                        hi: msb_index(v.iv.hi),
                    };
                    let mut chain = v.chain;
                    push_chain(&mut chain, format!("Msb -> f{}", dst.0));
                    state.insert(*dst, AbsVal { iv, acc: None, chain });
                }
                Primitive::Hash {
                    dst, width_log2, ..
                } => {
                    // The interpreter clamps the width to [1, 63].
                    let w = (*width_log2).clamp(1, 63);
                    let iv = Interval {
                        lo: 0,
                        hi: (1u128 << w) - 1,
                    };
                    state.insert(
                        *dst,
                        AbsVal {
                            iv,
                            acc: None,
                            chain: vec![format!("Hash -> f{}", dst.0)],
                        },
                    );
                }
                Primitive::RegRead {
                    dst,
                    register,
                    index,
                } => {
                    let idx = self.operand(state, index, data);
                    self.check_index(&idx, *register, &pctx);
                    let name = self.p.registers()[*register].name.clone();
                    state.insert(
                        *dst,
                        AbsVal {
                            iv: Interval {
                                lo: 0,
                                hi: self.reg_mask(*register),
                            },
                            acc: Some(*register),
                            chain: vec![format!("RegRead[{name}] -> f{}", dst.0)],
                        },
                    );
                }
                Primitive::RegWrite {
                    register,
                    index,
                    src,
                } => {
                    let idx = self.operand(state, index, data);
                    self.check_index(&idx, *register, &pctx);
                    let v = self.operand(state, src, data);
                    let mask = self.reg_mask(*register);
                    let name = self.p.registers()[*register].name.clone();
                    let width = self.p.registers()[*register].width_bits;
                    self.stats.register_writes += 1;
                    if v.iv.hi <= mask {
                        self.stats.proven_fits += 1;
                    } else if v.acc == Some(*register) {
                        // Read-modify-write of the same register: an
                        // intentional modular counter.
                        self.stats.modular_accumulators += 1;
                    } else if v.iv.lo > mask {
                        self.stats.unproven += 1;
                        self.diags.push(
                            Diagnostic::new(
                                LintCode::WidthTruncation,
                                Severity::Error,
                                pctx.clone(),
                                format!(
                                    "store into `{name}` ({width} bits) provably truncates: value in [{}, {}]",
                                    v.iv.lo, v.iv.hi
                                ),
                            )
                            .with_chain(v.chain.clone()),
                        );
                    } else {
                        self.stats.unproven += 1;
                        self.diags.push(
                            Diagnostic::new(
                                LintCode::WidthUnproven,
                                Severity::Info,
                                pctx.clone(),
                                format!(
                                    "store into `{name}` ({width} bits) not proven to fit: value in [{}, {}]",
                                    v.iv.lo, v.iv.hi
                                ),
                            )
                            .with_chain(v.chain.clone()),
                        );
                    }
                }
                Primitive::Digest { .. }
                | Primitive::Forward { .. }
                | Primitive::Drop => {}
            }
        }
    }

    /// Per-slot `[min, max]` over the action data this table can supply
    /// to `action` (installed entries plus the default).
    fn data_bounds(&self, t: usize, action: usize) -> DataBounds {
        let table = &self.p.tables()[t];
        let mut sources: Vec<&[u64]> = table
            .entries()
            .iter()
            .filter(|e| e.action == action)
            .map(|e| e.action_data.as_slice())
            .collect();
        if let Some((a, data)) = &table.def.default_action {
            if *a == action {
                sources.push(data.as_slice());
            }
        }
        // An empty table with no default cannot run the action at all,
        // but the controller may install entries later with any data:
        // unknown slots stay unbounded unless every source bounds them.
        let slots = self
            .p
            .actions()
            .get(action)
            .map(crate::action::ActionDef::data_slots_required)
            .unwrap_or(0);
        let mut out: DataBounds = vec![None; slots];
        if sources.is_empty() {
            return out;
        }
        for (slot, bound) in out.iter_mut().enumerate() {
            let mut lo = u64::MAX;
            let mut hi = 0u64;
            let mut all = true;
            for s in &sources {
                match s.get(slot) {
                    Some(v) => {
                        lo = lo.min(*v);
                        hi = hi.max(*v);
                    }
                    None => all = false,
                }
            }
            if all {
                *bound = Some((lo, hi));
            }
        }
        // Tables with spare capacity can still receive entries with
        // arbitrary data from the controller; only a full table (or a
        // keyless always-default table) pins the bounds.
        let runtime_extensible =
            !table.def.keys.is_empty() && table.entries().len() < table.def.max_entries;
        if runtime_extensible {
            out.fill(None);
        }
        out
    }

    fn constrain(iv: Interval, op: CmpOp, c: u128) -> Interval {
        let mut out = iv;
        match op {
            CmpOp::Eq => {
                out = Interval { lo: c, hi: c };
            }
            CmpOp::Ne => {}
            CmpOp::Lt => {
                if c > 0 {
                    out.hi = out.hi.min(c - 1);
                }
            }
            CmpOp::Le => out.hi = out.hi.min(c),
            CmpOp::Gt => out.lo = out.lo.max(c + 1),
            CmpOp::Ge => out.lo = out.lo.max(c),
        }
        if out.lo > out.hi {
            // Statically infeasible branch; keep the unrefined interval
            // (sound, just less precise).
            iv
        } else {
            out
        }
    }

    fn negate(op: CmpOp) -> CmpOp {
        match op {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Applies `cond` (or its negation) to a branch-entry state.
    fn refine(&self, state: &mut State, cond: &Cond, taken: bool) {
        let (f, op, c) = match (&cond.a, &cond.b) {
            (Operand::Field(f), Operand::Const(c)) => (*f, cond.op, u128::from(*c)),
            (Operand::Const(c), Operand::Field(f)) => {
                // `c op f` mirrored to `f op' c`.
                let mirrored = match cond.op {
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Ge => CmpOp::Le,
                    other => other,
                };
                (*f, mirrored, u128::from(*c))
            }
            _ => return,
        };
        let op = if taken { op } else { Self::negate(op) };
        let mut v = self.field(state, f);
        v.iv = Self::constrain(v.iv, op, c);
        state.insert(f, v);
    }

    fn join_states(a: &State, b: &State, init: &dyn Fn(FieldId) -> AbsVal) -> State {
        let mut out = State::new();
        let keys: std::collections::BTreeSet<FieldId> =
            a.keys().chain(b.keys()).copied().collect();
        for k in keys {
            let va = a.get(&k).cloned().unwrap_or_else(|| init(k));
            let vb = b.get(&k).cloned().unwrap_or_else(|| init(k));
            out.insert(k, va.join(&vb));
        }
        out
    }

    fn walk(&mut self, c: &Control, state: &mut State) {
        match c {
            Control::Nop | Control::Exit | Control::Recirculate => {}
            Control::Seq(children) => {
                for child in children {
                    self.walk(child, state);
                }
            }
            Control::ApplyAction(a) => {
                let name = self
                    .p
                    .actions()
                    .get(*a)
                    .map_or_else(|| format!("#{a}"), |x| x.name.clone());
                let ctx = format!("action `{name}`");
                self.eval_action(state, *a, &Vec::new(), &ctx);
            }
            Control::ApplyTable(t) => {
                let table_name = self.p.tables()[*t].def.name.clone();
                let actions = super::tdg::table_actions(self.p, *t);
                let mut results: Vec<State> = Vec::new();
                // A table with no default can miss without running any
                // action: the incoming state survives.
                if self.p.tables()[*t].def.default_action.is_none() {
                    results.push(state.clone());
                }
                let mut seen = std::collections::BTreeSet::new();
                for a in actions {
                    if !seen.insert(a) {
                        continue;
                    }
                    let data = self.data_bounds(*t, a);
                    let name = self
                        .p
                        .actions()
                        .get(a)
                        .map_or_else(|| format!("#{a}"), |x| x.name.clone());
                    let ctx = format!("action `{name}` (table `{table_name}`)");
                    let mut s = state.clone();
                    self.eval_action(&mut s, a, &data, &ctx);
                    results.push(s);
                }
                if let Some(first) = results.first() {
                    let recirc = self.recirculates;
                    let init = move |f: FieldId| {
                        if recirc || f.0 < fields::M0.0 {
                            AbsVal::of(Interval::full())
                        } else {
                            AbsVal::of(Interval::exact(0))
                        }
                    };
                    let mut joined = first.clone();
                    for s in &results[1..] {
                        joined = Self::join_states(&joined, s, &init);
                    }
                    *state = joined;
                }
            }
            Control::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let mut then_state = state.clone();
                self.refine(&mut then_state, cond, true);
                self.walk(then_branch, &mut then_state);
                let mut else_state = state.clone();
                self.refine(&mut else_state, cond, false);
                if let Some(e) = else_branch {
                    self.walk(e, &mut else_state);
                }
                let recirc = self.recirculates;
                let init = move |f: FieldId| {
                    if recirc || f.0 < fields::M0.0 {
                        AbsVal::of(Interval::full())
                    } else {
                        AbsVal::of(Interval::exact(0))
                    }
                };
                *state = Self::join_states(&then_state, &else_state, &init);
            }
        }
    }
}

/// Runs the range analysis, appending findings to `diags`.
#[must_use]
pub fn analyze_ranges(p: &Pipeline, diags: &mut Vec<Diagnostic>) -> RangeSummary {
    let mut a = Analyzer {
        p,
        diags: Vec::new(),
        stats: RangeSummary::default(),
        recirculates: has_recirculate(p.control()),
    };
    let mut state = State::new();
    let control = p.control().clone();
    a.walk(&control, &mut state);
    diags.append(&mut a.diags);
    a.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionDef;
    use crate::program::ProgramBuilder;
    use crate::target::TargetModel;

    fn run(build: impl FnOnce(&mut ProgramBuilder)) -> (Vec<Diagnostic>, RangeSummary) {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        let p = b.build(TargetModel::bmv2()).unwrap();
        let mut diags = Vec::new();
        let stats = analyze_ranges(&p, &mut diags);
        (diags, stats)
    }

    #[test]
    fn certain_truncation_is_an_error_with_chain() {
        let (diags, stats) = run(|b| {
            let r = b.add_register("narrow", 16, 4);
            let a = b.add_action(ActionDef::new(
                "blow",
                vec![
                    Primitive::Shl {
                        dst: fields::M0,
                        src: Operand::Const(1),
                        amount: Operand::Const(40),
                    },
                    Primitive::RegWrite {
                        register: r,
                        index: Operand::Const(0),
                        src: Operand::Field(fields::M0),
                    },
                ],
            ));
            b.set_control(Control::ApplyAction(a));
        });
        let d = diags
            .iter()
            .find(|d| d.code == LintCode::WidthTruncation)
            .expect("truncation found");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.chain.iter().any(|c| c.starts_with("Shl")), "{:?}", d.chain);
        assert_eq!(stats.unproven, 1);
    }

    #[test]
    fn modular_accumulator_is_tolerated() {
        // 32-bit register: the +1 can exceed the width, but the value
        // derives from this register's own read, so it is a counter.
        let (diags, stats) = run(|b| {
            let r = b.add_register("ctr", 32, 1);
            let a = b.add_action(ActionDef::new(
                "bump",
                vec![
                    Primitive::RegRead {
                        dst: fields::M0,
                        register: r,
                        index: Operand::Const(0),
                    },
                    Primitive::Add {
                        dst: fields::M0,
                        a: Operand::Field(fields::M0),
                        b: Operand::Const(1),
                    },
                    Primitive::RegWrite {
                        register: r,
                        index: Operand::Const(0),
                        src: Operand::Field(fields::M0),
                    },
                ],
            ));
            b.set_control(Control::ApplyAction(a));
        });
        assert!(
            diags.iter().all(|d| d.severity < Severity::Warning),
            "{diags:?}"
        );
        assert_eq!(stats.modular_accumulators, 1);
        assert_eq!(stats.register_writes, 1);
    }

    #[test]
    fn cross_register_store_with_wide_value_is_unproven_info() {
        let (diags, _) = run(|b| {
            let src = b.add_register("wide", 64, 1);
            let dst = b.add_register("narrow", 32, 1);
            let a = b.add_action(ActionDef::new(
                "mv",
                vec![
                    Primitive::RegRead {
                        dst: fields::M0,
                        register: src,
                        index: Operand::Const(0),
                    },
                    Primitive::RegWrite {
                        register: dst,
                        index: Operand::Const(0),
                        src: Operand::Field(fields::M0),
                    },
                ],
            ));
            b.set_control(Control::ApplyAction(a));
        });
        let d = diags
            .iter()
            .find(|d| d.code == LintCode::WidthUnproven)
            .expect("unproven store");
        assert_eq!(d.severity, Severity::Info);
    }

    #[test]
    fn narrow_source_store_is_proven() {
        let (diags, stats) = run(|b| {
            let src = b.add_register("narrow", 16, 1);
            let dst = b.add_register("wide", 32, 1);
            let a = b.add_action(ActionDef::new(
                "mv",
                vec![
                    Primitive::RegRead {
                        dst: fields::M0,
                        register: src,
                        index: Operand::Const(0),
                    },
                    Primitive::RegWrite {
                        register: dst,
                        index: Operand::Const(0),
                        src: Operand::Field(fields::M0),
                    },
                ],
            ));
            b.set_control(Control::ApplyAction(a));
        });
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(stats.proven_fits, 1);
    }

    #[test]
    fn branch_refinement_narrows_intervals() {
        // M0 = payload (full range); in the `<= 100` branch a 7-bit
        // store is provable... but only thanks to the refinement.
        let (diags, stats) = run(|b| {
            let r = b.add_register("small", 7, 1);
            let load = b.add_action(ActionDef::new(
                "load",
                vec![Primitive::Set {
                    dst: fields::M0,
                    src: Operand::Field(fields::PAYLOAD_VALUE),
                }],
            ));
            let store = b.add_action(ActionDef::new(
                "store",
                vec![Primitive::RegWrite {
                    register: r,
                    index: Operand::Const(0),
                    src: Operand::Field(fields::M0),
                }],
            ));
            b.set_control(Control::Seq(vec![
                Control::ApplyAction(load),
                Control::If {
                    cond: Cond::new(Operand::Field(fields::M0), CmpOp::Le, Operand::Const(100)),
                    then_branch: Box::new(Control::ApplyAction(store)),
                    else_branch: None,
                },
            ]));
        });
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(stats.proven_fits, 1);
    }

    #[test]
    fn certain_mul_overflow_is_error() {
        let (diags, _) = run(|b| {
            let a = b.add_action(ActionDef::new(
                "big",
                vec![Primitive::Mul {
                    dst: fields::M0,
                    a: Operand::Const(1 << 33),
                    b: Operand::Const(1 << 33),
                }],
            ));
            b.set_control(Control::ApplyAction(a));
        });
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::WidthTruncation && d.severity == Severity::Error));
    }

    #[test]
    fn possible_mul_overflow_is_info() {
        let (diags, _) = run(|b| {
            let a = b.add_action(ActionDef::new(
                "maybe",
                vec![Primitive::Mul {
                    dst: fields::M0,
                    a: Operand::Field(fields::PAYLOAD_VALUE),
                    b: Operand::Const(2),
                }],
            ));
            b.set_control(Control::ApplyAction(a));
        });
        let d = diags
            .iter()
            .find(|d| d.code == LintCode::MulOverflow)
            .expect("possible overflow recorded");
        assert_eq!(d.severity, Severity::Info);
    }

    #[test]
    fn certain_index_oob_is_error() {
        let (diags, _) = run(|b| {
            let r = b.add_register("tiny", 64, 2);
            let a = b.add_action(ActionDef::new(
                "oob",
                vec![Primitive::RegWrite {
                    register: r,
                    index: Operand::Const(5),
                    src: Operand::Const(0),
                }],
            ));
            b.set_control(Control::ApplyAction(a));
        });
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::RegisterIndexRange && d.severity == Severity::Error));
    }

    #[test]
    fn hash_proves_index_bounds() {
        let (diags, _) = run(|b| {
            let r = b.add_register("sketch", 32, 1 << 10);
            let a = b.add_action(ActionDef::new(
                "row",
                vec![
                    Primitive::Hash {
                        dst: fields::M0,
                        src: Operand::Field(fields::IPV4_DST),
                        salt: 7,
                        width_log2: 10,
                    },
                    Primitive::RegWrite {
                        register: r,
                        index: Operand::Field(fields::M0),
                        src: Operand::Const(1),
                    },
                ],
            ));
            b.set_control(Control::ApplyAction(a));
        });
        assert!(
            diags.iter().all(|d| d.code != LintCode::RegisterIndexRange),
            "{diags:?}"
        );
    }
}
