//! Table dependency graph (TDG).
//!
//! The classical input of a PISA stage allocator: one node per control
//! unit (a match-action table application or a direct action
//! application), and one edge per reason two units cannot share a
//! stage. Dependencies are derived from the action IR via
//! [`Primitive::dst_field`], [`Primitive::src_fields`] and
//! [`Primitive::register_access`] — the same helpers the resource
//! analyser uses, so the two stay in sync by construction.
//!
//! Edge kinds, strongest first:
//!
//! - **Match** — a later table *matches* on a field an earlier unit may
//!   write. The match must see the final value, so the consumer goes to
//!   a later stage.
//! - **Action** — a later unit's ALUs read (or re-write) a field an
//!   earlier unit may write (RAW/WAW).
//! - **Control** — a unit is guarded by a branch condition that reads a
//!   field an earlier unit may write; the gateway evaluates after the
//!   writer, and the guarded unit with it.
//! - **Register** — two units touch the same register and at least one
//!   writes. A register lives in one stage's stateful ALU, and this
//!   simulator executes units in program order, so shared state
//!   serialises.
//! - **Anti** — a later unit writes a field an earlier unit reads
//!   (WAR). Real PISA stages read their input PHV in parallel, so
//!   hardware permits same-stage anti-dependencies; this simulator
//!   executes sequentially, so the allocator keeps anti-dependent units
//!   in distinct stages too — which is exactly what makes within-stage
//!   reordering behaviour-preserving (see the equivalence proptest).
//!
//! [`Primitive::dst_field`]: crate::action::Primitive::dst_field
//! [`Primitive::src_fields`]: crate::action::Primitive::src_fields
//! [`Primitive::register_access`]: crate::action::Primitive::register_access

use crate::action::Operand;
use crate::control::{Cond, Control};
use crate::phv::FieldId;
use crate::pipeline::Pipeline;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// Cap on enumerated execution paths (programs in this repo are tiny;
/// the cap only guards against pathological inputs).
pub(crate) const MAX_PATHS: usize = 4096;

/// One step of an execution path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Item {
    /// A match-action table application.
    Table(usize),
    /// A direct action application.
    Action(usize),
}

/// Enumerates execution paths (sequences of applied tables/actions).
pub(crate) fn paths(c: &Control) -> Vec<Vec<Item>> {
    match c {
        Control::Nop => vec![Vec::new()],
        Control::Seq(children) => {
            let mut acc: Vec<Vec<Item>> = vec![Vec::new()];
            for child in children {
                let child_paths = paths(child);
                let mut next = Vec::new();
                for a in &acc {
                    for b in &child_paths {
                        let mut p = a.clone();
                        p.extend_from_slice(b);
                        next.push(p);
                        if next.len() >= MAX_PATHS {
                            break;
                        }
                    }
                    if next.len() >= MAX_PATHS {
                        break;
                    }
                }
                acc = next;
            }
            acc
        }
        Control::ApplyTable(t) => vec![vec![Item::Table(*t)]],
        Control::ApplyAction(a) => vec![vec![Item::Action(*a)]],
        Control::If {
            then_branch,
            else_branch,
            ..
        } => {
            let mut out = paths(then_branch);
            match else_branch {
                Some(e) => out.extend(paths(e)),
                None => out.push(Vec::new()),
            }
            out.truncate(MAX_PATHS);
            out
        }
        // Recirculation multiplies whole-path costs by the pass count at
        // runtime; the static analyser reports single-pass quantities.
        Control::Exit | Control::Recirculate => vec![Vec::new()],
    }
}

/// Action ids a table may invoke (allowed actions plus the default).
pub(crate) fn table_actions(p: &Pipeline, t: usize) -> Vec<usize> {
    let table = &p.tables()[t];
    let mut actions: Vec<usize> = table.def.allowed_actions.clone();
    if let Some((a, _)) = &table.def.default_action {
        actions.push(*a);
    }
    actions
}

/// Fields any allowed action of table `t` may write.
pub(crate) fn table_writes(p: &Pipeline, t: usize) -> HashSet<FieldId> {
    let mut out = HashSet::new();
    for a in table_actions(p, t) {
        if let Some(action) = p.actions().get(a) {
            for prim in &action.primitives {
                if let Some(d) = prim.dst_field() {
                    out.insert(d);
                }
            }
        }
    }
    out
}

/// Fields table `t` reads: its match keys plus every operand of its
/// allowed actions.
pub(crate) fn table_reads(p: &Pipeline, t: usize) -> HashSet<FieldId> {
    let mut out = HashSet::new();
    for (f, _) in &p.tables()[t].def.keys {
        out.insert(*f);
    }
    for a in table_actions(p, t) {
        if let Some(action) = p.actions().get(a) {
            for prim in &action.primitives {
                for f in prim.src_fields() {
                    out.insert(f);
                }
            }
        }
    }
    out
}

/// Registers an action touches.
fn action_registers(p: &Pipeline, a: usize) -> BTreeSet<usize> {
    p.actions()
        .get(a)
        .map(|action| {
            action
                .primitives
                .iter()
                .filter_map(|prim| prim.register_access().map(|(r, _)| r))
                .collect()
        })
        .unwrap_or_default()
}

/// What a control unit is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// A match-action table application.
    Table {
        /// Table id in the pipeline.
        table: usize,
        /// Table name.
        name: String,
    },
    /// A direct (keyless) action application.
    Action {
        /// Action id in the pipeline.
        action: usize,
        /// Action name.
        name: String,
    },
}

impl NodeKind {
    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            NodeKind::Table { name, .. } => format!("table `{name}`"),
            NodeKind::Action { name, .. } => format!("action `{name}`"),
        }
    }
}

/// One control unit of the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TdgNode {
    /// Node id (pre-order position in the control tree).
    pub id: usize,
    /// What the unit is.
    pub kind: NodeKind,
    /// Fields the unit may read (match keys included).
    pub reads: BTreeSet<FieldId>,
    /// Fields the unit may write.
    pub writes: BTreeSet<FieldId>,
    /// Registers the unit touches.
    pub registers: BTreeSet<usize>,
}

/// Why two units cannot (or should not) share a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DepKind {
    /// Later unit writes a field the earlier one reads (WAR).
    Anti,
    /// Shared register with at least one writer.
    Register,
    /// Guarded by a condition reading the earlier unit's output.
    Control,
    /// Later unit's ALUs consume the earlier unit's output (RAW/WAW).
    Action,
    /// Later table matches on the earlier unit's output.
    Match,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DepKind::Anti => "anti",
            DepKind::Register => "register",
            DepKind::Control => "control",
            DepKind::Action => "action",
            DepKind::Match => "match",
        })
    }
}

/// A dependency edge between two units (`from` executes first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TdgEdge {
    /// Producer node id.
    pub from: usize,
    /// Consumer node id.
    pub to: usize,
    /// Strongest reason for the edge.
    pub kind: DepKind,
}

/// The table dependency graph of a built pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDepGraph {
    /// Control units in pre-order.
    pub nodes: Vec<TdgNode>,
    /// Dependency edges (`from < to` always; ids are pre-order).
    pub edges: Vec<TdgEdge>,
}

/// Walk state: which nodes may have written / read each field so far on
/// the current path prefix, and who touched each register.
#[derive(Debug, Clone, Default)]
struct WalkState {
    writers: HashMap<FieldId, BTreeSet<usize>>,
    readers: HashMap<FieldId, BTreeSet<usize>>,
    /// register -> (node, wrote)
    reg_users: HashMap<usize, BTreeSet<(usize, bool)>>,
}

impl WalkState {
    fn join(&mut self, other: WalkState) {
        for (f, s) in other.writers {
            self.writers.entry(f).or_default().extend(s);
        }
        for (f, s) in other.readers {
            self.readers.entry(f).or_default().extend(s);
        }
        for (r, s) in other.reg_users {
            self.reg_users.entry(r).or_default().extend(s);
        }
    }
}

/// The read/write/register footprint of one control unit.
#[derive(Debug, Default)]
struct UnitSets {
    reads: BTreeSet<FieldId>,
    match_keys: BTreeSet<FieldId>,
    writes: BTreeSet<FieldId>,
    registers: BTreeSet<usize>,
    writes_regs: bool,
}

fn cond_fields(c: &Cond) -> Vec<FieldId> {
    let mut out = Vec::new();
    for op in [&c.a, &c.b] {
        if let Operand::Field(f) = op {
            out.push(*f);
        }
    }
    out
}

struct Builder<'p> {
    p: &'p Pipeline,
    nodes: Vec<TdgNode>,
    /// (from, to) -> strongest kind seen.
    edges: BTreeMap<(usize, usize), DepKind>,
}

impl Builder<'_> {
    fn add_edge(&mut self, from: usize, to: usize, kind: DepKind) {
        let e = self.edges.entry((from, to)).or_insert(kind);
        if kind > *e {
            *e = kind;
        }
    }

    /// Registers and emits one unit. `guards` is the stack of condition
    /// read-sets enclosing the unit.
    fn place(&mut self, kind: NodeKind, sets: UnitSets, state: &mut WalkState, guards: &[Vec<FieldId>]) {
        let UnitSets {
            reads,
            match_keys,
            writes,
            registers,
            writes_regs,
        } = sets;
        let id = self.nodes.len();
        for f in &reads {
            if let Some(ws) = state.writers.get(f) {
                let dep = if match_keys.contains(f) {
                    DepKind::Match
                } else {
                    DepKind::Action
                };
                for &w in ws {
                    self.add_edge(w, id, dep);
                }
            }
        }
        for f in &writes {
            if let Some(ws) = state.writers.get(f) {
                for &w in ws {
                    self.add_edge(w, id, DepKind::Action);
                }
            }
            if let Some(rs) = state.readers.get(f) {
                for &r in rs {
                    self.add_edge(r, id, DepKind::Anti);
                }
            }
        }
        for r in &registers {
            if let Some(users) = state.reg_users.get(r) {
                for &(m, wrote) in users {
                    if wrote || writes_regs {
                        self.add_edge(m, id, DepKind::Register);
                    }
                }
            }
        }
        for guard in guards {
            for f in guard {
                if let Some(ws) = state.writers.get(f) {
                    for &w in ws {
                        self.add_edge(w, id, DepKind::Control);
                    }
                }
            }
        }
        for f in &reads {
            state.readers.entry(*f).or_default().insert(id);
        }
        for f in &writes {
            state.writers.entry(*f).or_default().insert(id);
        }
        for r in &registers {
            state
                .reg_users
                .entry(*r)
                .or_default()
                .insert((id, writes_regs));
        }
        self.nodes.push(TdgNode {
            id,
            kind,
            reads,
            writes,
            registers,
        });
    }

    fn action_sets(&self, a: usize) -> (BTreeSet<FieldId>, BTreeSet<FieldId>, BTreeSet<usize>, bool) {
        let mut reads = BTreeSet::new();
        let mut writes = BTreeSet::new();
        let mut writes_regs = false;
        if let Some(action) = self.p.actions().get(a) {
            for prim in &action.primitives {
                reads.extend(prim.src_fields());
                if let Some(d) = prim.dst_field() {
                    writes.insert(d);
                }
                if let Some((_, w)) = prim.register_access() {
                    writes_regs |= w;
                }
            }
        }
        (reads, writes, action_registers(self.p, a), writes_regs)
    }

    fn walk(&mut self, c: &Control, state: &mut WalkState, guards: &mut Vec<Vec<FieldId>>) {
        match c {
            Control::Nop | Control::Exit | Control::Recirculate => {}
            Control::Seq(children) => {
                for child in children {
                    self.walk(child, state, guards);
                }
            }
            Control::ApplyTable(t) => {
                let match_keys: BTreeSet<FieldId> =
                    self.p.tables()[*t].def.keys.iter().map(|(f, _)| *f).collect();
                let mut sets = UnitSets {
                    reads: match_keys.iter().copied().collect(),
                    match_keys,
                    ..UnitSets::default()
                };
                for a in table_actions(self.p, *t) {
                    let (r, w, g, wr) = self.action_sets(a);
                    sets.reads.extend(r);
                    sets.writes.extend(w);
                    sets.registers.extend(g);
                    sets.writes_regs |= wr;
                }
                let kind = NodeKind::Table {
                    table: *t,
                    name: self.p.tables()[*t].def.name.clone(),
                };
                self.place(kind, sets, state, guards);
            }
            Control::ApplyAction(a) => {
                let (reads, writes, registers, writes_regs) = self.action_sets(*a);
                let kind = NodeKind::Action {
                    action: *a,
                    name: self
                        .p
                        .actions()
                        .get(*a)
                        .map_or_else(|| format!("#{a}"), |x| x.name.clone()),
                };
                let sets = UnitSets {
                    reads,
                    match_keys: BTreeSet::new(),
                    writes,
                    registers,
                    writes_regs,
                };
                self.place(kind, sets, state, guards);
            }
            Control::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let fields = cond_fields(cond);
                // The gateway reads its fields where it evaluates.
                guards.push(fields);
                let mut then_state = state.clone();
                self.walk(then_branch, &mut then_state, guards);
                if let Some(e) = else_branch {
                    let mut else_state = state.clone();
                    self.walk(e, &mut else_state, guards);
                    state.join(else_state);
                }
                guards.pop();
                state.join(then_state);
            }
        }
    }
}

impl TableDepGraph {
    /// Builds the dependency graph of a built pipeline.
    #[must_use]
    pub fn build(p: &Pipeline) -> Self {
        let mut b = Builder {
            p,
            nodes: Vec::new(),
            edges: BTreeMap::new(),
        };
        let mut state = WalkState::default();
        let mut guards = Vec::new();
        b.walk(p.control(), &mut state, &mut guards);
        let edges = b
            .edges
            .into_iter()
            .map(|((from, to), kind)| TdgEdge { from, to, kind })
            .collect();
        Self {
            nodes: b.nodes,
            edges,
        }
    }

    /// Edges pointing into `node`.
    pub fn preds(&self, node: usize) -> impl Iterator<Item = &TdgEdge> {
        self.edges.iter().filter(move |e| e.to == node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionDef, Operand, Primitive};
    use crate::control::{CmpOp, Cond, Control};
    use crate::phv::fields;
    use crate::program::ProgramBuilder;
    use crate::table::{MatchKind, TableDef};
    use crate::target::TargetModel;

    fn set(dst: FieldId, v: u64) -> Primitive {
        Primitive::Set {
            dst,
            src: Operand::Const(v),
        }
    }

    #[test]
    fn match_dependency_classified() {
        let mut b = ProgramBuilder::new();
        let w = b.add_action(ActionDef::new("w", vec![set(fields::M0, 1)]));
        let n = b.add_action(ActionDef::new("n", vec![]));
        let t1 = b.add_table(TableDef {
            name: "t1".into(),
            keys: vec![(fields::IPV4_DST, MatchKind::Exact)],
            max_entries: 1,
            allowed_actions: vec![w],
            default_action: None,
        });
        let t2 = b.add_table(TableDef {
            name: "t2".into(),
            keys: vec![(fields::M0, MatchKind::Exact)],
            max_entries: 1,
            allowed_actions: vec![n],
            default_action: None,
        });
        b.set_control(Control::Seq(vec![
            Control::ApplyTable(t1),
            Control::ApplyTable(t2),
        ]));
        let p = b.build(TargetModel::bmv2()).unwrap();
        let g = TableDepGraph::build(&p);
        assert_eq!(g.nodes.len(), 2);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].kind, DepKind::Match);
    }

    #[test]
    fn branch_nodes_are_independent_but_control_dependent() {
        // a writes M0; the If reads M0; both branches apply actions.
        let mut b = ProgramBuilder::new();
        // Note scratch(0) == M0, so the branch bodies use scratch(2)/(3)
        // to stay independent of the writer.
        let a = b.add_action(ActionDef::new("a", vec![set(fields::M0, 1)]));
        let t = b.add_action(ActionDef::new("t", vec![set(fields::scratch(2), 1)]));
        let e = b.add_action(ActionDef::new("e", vec![set(fields::scratch(3), 1)]));
        b.set_control(Control::Seq(vec![
            Control::ApplyAction(a),
            Control::If {
                cond: Cond::new(Operand::Field(fields::M0), CmpOp::Eq, Operand::Const(0)),
                then_branch: Box::new(Control::ApplyAction(t)),
                else_branch: Some(Box::new(Control::ApplyAction(e))),
            },
        ]));
        let p = b.build(TargetModel::bmv2()).unwrap();
        let g = TableDepGraph::build(&p);
        assert_eq!(g.nodes.len(), 3);
        // Both branch nodes depend (control) on the writer; no edge
        // between the mutually-exclusive branch nodes.
        let kinds: Vec<(usize, usize, DepKind)> =
            g.edges.iter().map(|e| (e.from, e.to, e.kind)).collect();
        assert!(kinds.contains(&(0, 1, DepKind::Control)));
        assert!(kinds.contains(&(0, 2, DepKind::Control)));
        assert!(!kinds.iter().any(|(f, t, _)| *f == 1 && *t == 2));
    }

    #[test]
    fn register_sharing_serialises() {
        let mut b = ProgramBuilder::new();
        let r = b.add_register("r", 64, 4);
        let mk = |name: &str| {
            ActionDef::new(
                name,
                vec![
                    Primitive::RegRead {
                        dst: fields::M0,
                        register: r,
                        index: Operand::Const(0),
                    },
                    Primitive::RegWrite {
                        register: r,
                        index: Operand::Const(0),
                        src: Operand::Field(fields::M0),
                    },
                ],
            )
        };
        let a1 = b.add_action(mk("a1"));
        let a2 = b.add_action(mk("a2"));
        b.set_control(Control::Seq(vec![
            Control::ApplyAction(a1),
            Control::ApplyAction(a2),
        ]));
        let p = b.build(TargetModel::bmv2()).unwrap();
        let g = TableDepGraph::build(&p);
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.kind >= DepKind::Register));
    }
}
