//! Data-plane fault injection behind a trait object.
//!
//! Real switch ASICs see single-event upsets (a cosmic-ray bit flip in
//! SRAM register state) and transient table-lookup failures (a pipe
//! reset wiping TCAM entries until the controller reinstalls them).
//! The interpreter exposes both through [`FaultHook`]: an optional
//! hook the [`crate::Pipeline`] consults at two points —
//!
//! - **before each packet**, where the hook may corrupt register
//!   cells ([`FaultHook::before_packet`]), and
//! - **at each table application**, where the hook may force a miss
//!   regardless of installed entries ([`FaultHook::force_miss`]).
//!
//! With no hook installed (the default) the pipeline behaves exactly
//! as before — the hot path pays one `Option` check per packet.
//!
//! [`ScheduledFaults`] is the standard implementation: an explicit,
//! deterministic list of SEU flips and table-miss windows (typically
//! produced from a `faultinject::FaultSchedule`; this crate stays
//! dependency-free so the trait lives here and the schedule crate
//! depends on us, not the reverse).
//!
//! # Saturating recovery
//!
//! An SEU can set a bit *above* a register's declared width — the cell
//! is a raw `u64`, the corruption is physical. [`SeuRecovery::Saturate`]
//! models the paper-style defensive accumulator: after a flip, any
//! value exceeding the register's width mask is clamped to the mask
//! (saturation) instead of being left to wrap through subsequent
//! arithmetic. This is the recovery path the `S4L012` lint checks for:
//! it needs headroom bits above the declared width to detect the
//! excursion, so a 64-bit-wide register on a target reserving SEU
//! headroom leaves the recovery nothing to work with.

use crate::pipeline::Register;
use std::fmt::Debug;

/// Pipeline-level fault injection points. Implementations must be
/// deterministic functions of their construction-time inputs and the
/// packet index — the conformance suite replays runs and compares
/// outcomes bit for bit.
pub trait FaultHook: Send + Debug {
    /// Invoked before packet `pkt` (the pipeline's 0-based global
    /// packet counter) is processed; may mutate register state.
    fn before_packet(&mut self, pkt: u64, registers: &mut [Register]);

    /// Whether the lookup of `table` (by declared name) for packet
    /// `pkt` must miss regardless of installed entries. The table's
    /// default action still runs, exactly as for a genuine miss.
    fn force_miss(&self, pkt: u64, table: &str) -> bool;

    /// Clone into a box — keeps [`crate::Pipeline`] cloneable.
    fn clone_box(&self) -> Box<dyn FaultHook>;
}

impl Clone for Box<dyn FaultHook> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// What happens to a register cell after an SEU flip lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeuRecovery {
    /// Leave the corrupted value as-is (raw physical model).
    #[default]
    None,
    /// Clamp any value that exceeds the register's width mask down to
    /// the mask — the defensive saturating accumulator.
    Saturate,
}

/// One scheduled bit flip: before packet `at_packet`, flip `bit` of
/// `cells[cell]` in the register named `register`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeuEvent {
    /// Register name as declared in the program.
    pub register: String,
    /// Cell index; out-of-range events are ignored (counted as
    /// misses, not panics — corruption targeting absent SRAM).
    pub cell: usize,
    /// Bit position to flip (0 = LSB of the raw 64-bit cell).
    pub bit: u8,
    /// Packet index before which the flip is applied.
    pub at_packet: u64,
}

/// A forced-miss window on one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissWindow {
    /// Table name as declared in the program.
    pub table: String,
    /// First affected packet (inclusive).
    pub from_packet: u64,
    /// First unaffected packet (exclusive).
    pub to_packet: u64,
}

/// The standard deterministic [`FaultHook`]: explicit SEU flips plus
/// table-miss windows.
#[derive(Debug, Clone, Default)]
pub struct ScheduledFaults {
    seus: Vec<SeuEvent>,
    windows: Vec<MissWindow>,
    recovery: SeuRecovery,
    flips_applied: u64,
    recoveries: u64,
}

impl ScheduledFaults {
    /// Builds a hook from flip events and miss windows.
    #[must_use]
    pub fn new(seus: Vec<SeuEvent>, windows: Vec<MissWindow>, recovery: SeuRecovery) -> Self {
        Self {
            seus,
            windows,
            recovery,
            flips_applied: 0,
            recoveries: 0,
        }
    }

    /// True when the hook will never do anything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seus.is_empty() && self.windows.is_empty()
    }

    /// Flips actually applied so far (events naming unknown registers
    /// or out-of-range cells are skipped and not counted).
    #[must_use]
    pub fn flips_applied(&self) -> u64 {
        self.flips_applied
    }

    /// Flips whose corrupted value was clamped by
    /// [`SeuRecovery::Saturate`].
    #[must_use]
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }
}

impl FaultHook for ScheduledFaults {
    fn before_packet(&mut self, pkt: u64, registers: &mut [Register]) {
        let mut flips = 0;
        let mut recovered = 0;
        for e in &self.seus {
            if e.at_packet != pkt {
                continue;
            }
            let Some(reg) = registers.iter_mut().find(|r| r.name == e.register) else {
                continue;
            };
            let mask = reg.mask();
            let Some(slot) = reg.cells.get_mut(e.cell) else {
                continue;
            };
            *slot ^= 1u64 << e.bit;
            flips += 1;
            if self.recovery == SeuRecovery::Saturate && *slot > mask {
                *slot = mask;
                recovered += 1;
            }
        }
        self.flips_applied += flips;
        self.recoveries += recovered;
    }

    fn force_miss(&self, pkt: u64, table: &str) -> bool {
        self.windows
            .iter()
            .any(|w| w.table == table && (w.from_packet..w.to_packet).contains(&pkt))
    }

    fn clone_box(&self) -> Box<dyn FaultHook> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(name: &str, width: u32, cells: usize) -> Register {
        Register {
            name: name.into(),
            width_bits: width,
            cells: vec![0; cells],
            merge: crate::pipeline::RegMerge::Sum,
            journal: stat4_core::delta::DirtyJournal::new(),
        }
    }

    #[test]
    fn flip_lands_at_its_packet_only() {
        let mut h = ScheduledFaults::new(
            vec![SeuEvent { register: "r".into(), cell: 1, bit: 3, at_packet: 5 }],
            vec![],
            SeuRecovery::None,
        );
        let mut regs = vec![reg("r", 64, 4)];
        h.before_packet(4, &mut regs);
        assert_eq!(regs[0].cells[1], 0);
        h.before_packet(5, &mut regs);
        assert_eq!(regs[0].cells[1], 1 << 3);
        assert_eq!(h.flips_applied(), 1);
    }

    #[test]
    fn unknown_register_or_cell_is_ignored() {
        let mut h = ScheduledFaults::new(
            vec![
                SeuEvent { register: "ghost".into(), cell: 0, bit: 0, at_packet: 0 },
                SeuEvent { register: "r".into(), cell: 99, bit: 0, at_packet: 0 },
            ],
            vec![],
            SeuRecovery::None,
        );
        let mut regs = vec![reg("r", 64, 2)];
        h.before_packet(0, &mut regs);
        assert_eq!(h.flips_applied(), 0);
        assert_eq!(regs[0].cells, vec![0, 0]);
    }

    #[test]
    fn saturating_recovery_clamps_out_of_width_flips() {
        // 8-bit register, flip bit 40: corrupted value exceeds the
        // width mask and saturates to 0xff.
        let mut h = ScheduledFaults::new(
            vec![SeuEvent { register: "r".into(), cell: 0, bit: 40, at_packet: 0 }],
            vec![],
            SeuRecovery::Saturate,
        );
        let mut regs = vec![reg("r", 8, 1)];
        regs[0].cells[0] = 0x2a;
        h.before_packet(0, &mut regs);
        assert_eq!(regs[0].cells[0], 0xff);
        assert_eq!(h.recoveries(), 1);

        // In-width flips are left alone.
        let mut h2 = ScheduledFaults::new(
            vec![SeuEvent { register: "r".into(), cell: 0, bit: 2, at_packet: 0 }],
            vec![],
            SeuRecovery::Saturate,
        );
        let mut regs2 = vec![reg("r", 8, 1)];
        h2.before_packet(0, &mut regs2);
        assert_eq!(regs2[0].cells[0], 1 << 2);
        assert_eq!(h2.recoveries(), 0);
    }

    #[test]
    fn miss_window_is_half_open_and_per_table() {
        let h = ScheduledFaults::new(
            vec![],
            vec![MissWindow { table: "bind".into(), from_packet: 10, to_packet: 20 }],
            SeuRecovery::None,
        );
        assert!(!h.force_miss(9, "bind"));
        assert!(h.force_miss(10, "bind"));
        assert!(h.force_miss(19, "bind"));
        assert!(!h.force_miss(20, "bind"));
        assert!(!h.force_miss(15, "other"));
    }

    #[test]
    fn boxed_hook_clones() {
        let h: Box<dyn FaultHook> = Box::new(ScheduledFaults::new(
            vec![SeuEvent { register: "r".into(), cell: 0, bit: 0, at_packet: 0 }],
            vec![],
            SeuRecovery::None,
        ));
        let mut c = h.clone();
        let mut regs = vec![reg("r", 64, 1)];
        c.before_packet(0, &mut regs);
        assert_eq!(regs[0].cells[0], 1);
    }
}
