//! Sharded multi-pipeline replay: N identical pipelines, each owning
//! its own register file, fed disjoint slices of a trace in parallel
//! and periodically reduced into a single merged register view.
//!
//! Real switches process packets on multiple pipes whose register files
//! are physically separate; any whole-switch statistic is a *merge* of
//! per-pipe state. This module makes that structure explicit for the
//! simulator:
//!
//! - [`ShardedPipeline`] clones a template program into `N` shards and
//!   processes per-shard work lists on `N` OS threads
//!   ([`ShardedPipeline::process_epoch`]), batched to amortise
//!   per-packet dispatch;
//! - [`merge_registers`] reduces one shard's register file into
//!   another's cell by cell under each register's **declared merge
//!   policy** ([`crate::pipeline::RegMerge`]): wrapping addition masked
//!   to the register width (the arithmetic a fixed-width hardware
//!   register performs), saturating addition, maximum, or — for
//!   registers declared [`RegMerge::None`] — keep the destination.
//!
//! A cellwise merge is the correct reduce exactly when register state
//! commutes with any traffic partition under its policy: counters,
//! `Xsum`/`Xsumsq` accumulators and count-min sketch rows do under
//! `Sum`, so the merged file is bit-identical to a single pipeline
//! having processed the whole trace (the conformance tests below
//! assert this, and `analysis::symbolic::check_merge_soundness` checks
//! it statically as lint `S4L015`). State that encodes *order* —
//! last-seen timestamps, percentile marker positions, window ring
//! heads — is not cellwise-mergeable; such registers are declared
//! `RegMerge::None` and must be merged at a higher level (see
//! `stat4_core::merge` for the per-tracker rules the replay driver
//! uses).

use crate::error::{P4Error, P4Result};
use crate::metrics::PipelineMetrics;
use crate::pipeline::{DigestRecord, Pipeline, RegMerge};
use stat4_core::Mergeable;
use telemetry::Snapshot;

/// What one shard did during one [`ShardedPipeline::process_epoch`]
/// call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochReport {
    /// Packets processed.
    pub packets: u64,
    /// Packets dropped by the program.
    pub dropped: u64,
    /// Digests emitted, in processing order.
    pub digests: Vec<DigestRecord>,
}

/// The changed cells of one register since the last delta take:
/// `(cell index, value at the window open, value now)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterDelta {
    /// Register id in declaration order.
    pub register: usize,
    /// Touched cells as `(index, base, current)`.
    pub cells: Vec<(u32, u64, u64)>,
}

/// The changed-register spans of one pipeline window, produced by
/// [`Pipeline::take_register_delta`] and folded into a coordinator's
/// view by [`apply_register_delta`]. Registers with no touched cells
/// are absent entirely — the sparsity the epoch barrier exploits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineDelta {
    /// Per-register touched spans; registers untouched this window are
    /// omitted.
    pub regs: Vec<RegisterDelta>,
    /// `packets_processed` at the window open.
    pub packets_base: u64,
    /// `packets_processed` now.
    pub packets_cur: u64,
}

impl PipelineDelta {
    /// Distinct cells carried by this delta.
    #[must_use]
    pub fn touched_cells(&self) -> usize {
        self.regs.iter().map(|r| r.cells.len()).sum()
    }

    /// Modelled wire size: 4-byte index + two 8-byte values per cell,
    /// plus the packet-counter pair.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        16 + self.touched_cells() as u64 * 20
    }
}

/// Applies one shard's changed-register spans to `dst` under each
/// register's declared merge policy — the sparse counterpart of
/// [`merge_registers`], applied on top of a coordinator view that
/// already holds the previous fold.
///
/// Per policy (`cur − base` is the window's change):
///
/// - [`RegMerge::Sum`]: `dst += (cur − base)` wrapping, masked. Masked
///   wrapping addition is modular-group arithmetic, so this is exact
///   **even when the register wrapped** during the window.
/// - [`RegMerge::SatSum`]: saturating adjust clamped at the mask —
///   exact unless a cell pinned at its ceiling (the same caveat the
///   full merge carries).
/// - [`RegMerge::Max`]: `dst = max(dst, cur)` — exact always.
/// - [`RegMerge::None`]: destination kept, entry skipped (order-coded
///   state reconciles at a higher level, as in the full merge).
///
/// # Errors
///
/// [`P4Error::Invalid`] for a register id outside `dst`'s file;
/// [`P4Error::RegisterOutOfBounds`] for a cell index outside the
/// register.
pub fn apply_register_delta(dst: &mut Pipeline, delta: &PipelineDelta) -> P4Result<()> {
    for rd in &delta.regs {
        let nregs = dst.registers.len();
        let reg = dst
            .registers
            .get_mut(rd.register)
            .ok_or_else(|| P4Error::Invalid {
                what: format!(
                    "delta register {} outside file of {nregs} register(s)",
                    rd.register
                ),
            })?;
        let mask = reg.mask();
        let merge = reg.merge;
        for &(idx, base, cur) in &rd.cells {
            let size = reg.cells.len() as u64;
            let cell = reg.cells.get_mut(idx as usize).ok_or(
                P4Error::RegisterOutOfBounds {
                    register: rd.register,
                    index: u64::from(idx),
                    size,
                },
            )?;
            *cell = match merge {
                RegMerge::Sum => cell.wrapping_add(cur.wrapping_sub(base)) & mask,
                RegMerge::SatSum => if cur >= base {
                    cell.saturating_add(cur - base)
                } else {
                    cell.saturating_sub(base - cur)
                }
                .min(mask),
                RegMerge::Max => (*cell).max(cur),
                RegMerge::None => *cell,
            };
        }
    }
    dst.packets_processed += delta.packets_cur - delta.packets_base;
    Ok(())
}

/// Folds `src`'s register file into `dst`, cell by cell, under each
/// register's declared merge policy — the reduce step of sharded
/// replay.
///
/// # Errors
///
/// [`P4Error::Invalid`] if the two pipelines' register files differ in
/// shape (count, name, width, size or merge policy) — merging register
/// files of different programs is always a bug.
pub fn merge_registers(dst: &mut Pipeline, src: &Pipeline) -> P4Result<()> {
    if dst.registers.len() != src.registers.len() {
        return Err(P4Error::Invalid {
            what: format!(
                "register count mismatch: {} vs {}",
                dst.registers.len(),
                src.registers.len()
            ),
        });
    }
    for (d, s) in dst.registers.iter_mut().zip(&src.registers) {
        if d.name != s.name
            || d.width_bits != s.width_bits
            || d.cells.len() != s.cells.len()
            || d.merge != s.merge
        {
            return Err(P4Error::Invalid {
                what: format!("register shape mismatch: {} vs {}", d.name, s.name),
            });
        }
        let mask = d.mask();
        let merge = d.merge;
        for (dc, sc) in d.cells.iter_mut().zip(&s.cells) {
            *dc = merge.combine(*dc, *sc, mask);
        }
    }
    dst.packets_processed += src.packets_processed;
    Ok(())
}

/// Renders a `join` panic payload as a string: panics raised with a
/// message literal or a `format!` land as `&str` / `String`; anything
/// else gets a placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload.downcast_ref::<&str>().map_or_else(
        || {
            payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "non-string panic payload".to_owned())
        },
        |s| (*s).to_owned(),
    )
}

/// Test hook: lets the supervision test below make one worker panic
/// mid-epoch. Keyed on (shard, batch) so concurrently running tests
/// with ordinary batch sizes never trip it; 0 means "off".
#[cfg(test)]
static PANIC_ON: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

#[cfg(test)]
fn maybe_injected_panic(shard: usize, batch: usize) {
    if batch == tests::PANIC_BATCH && shard + 1 == PANIC_ON.load(std::sync::atomic::Ordering::SeqCst)
    {
        panic!("injected shard fault for supervision test");
    }
}

#[cfg(not(test))]
#[inline]
fn maybe_injected_panic(_shard: usize, _batch: usize) {}

/// `N` clones of one pipeline program, each with a private register
/// file, processed in parallel.
#[derive(Debug)]
pub struct ShardedPipeline {
    shards: Vec<Pipeline>,
    metrics: Vec<PipelineMetrics>,
    batch: usize,
}

impl ShardedPipeline {
    /// Default packets-per-batch for [`Self::process_epoch`].
    pub const DEFAULT_BATCH: usize = 256;

    /// Clones `template` into `shards` independent pipelines.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn new(template: &Pipeline, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        Self {
            shards: vec![template.clone(); shards],
            metrics: (0..shards)
                .map(|_| PipelineMetrics::for_pipeline(template))
                .collect(),
            batch: Self::DEFAULT_BATCH,
        }
    }

    /// Overrides the batch size (packets processed per inner loop
    /// iteration before the per-batch bookkeeping).
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Read access to shard `i`'s pipeline.
    #[must_use]
    pub fn shard(&self, i: usize) -> Option<&Pipeline> {
        self.shards.get(i)
    }

    /// Mutable access to shard `i`'s pipeline (e.g. for per-shard table
    /// programming before replay).
    pub fn shard_mut(&mut self, i: usize) -> Option<&mut Pipeline> {
        self.shards.get_mut(i)
    }

    /// Consumes the sharded pipeline and hands the per-shard pipelines
    /// back to the caller, index = shard id — the handoff at the end
    /// of a replay, when ownership of the register files moves to
    /// whatever merges, checkpoints or inspects them next. Snapshot
    /// [`Self::metrics`] first if you still need the per-shard metric
    /// sets; they are dropped here.
    #[must_use]
    pub fn into_shards(self) -> Vec<Pipeline> {
        self.shards
    }

    /// Processes one epoch of pre-split work: `work[i]` is shard `i`'s
    /// time-ordered `(timestamp_ns, frame)` list for this epoch. Each
    /// shard runs on its own OS thread against its own register file;
    /// the call returns when every shard has drained its list (the
    /// barrier after which state may be merged).
    ///
    /// Frames enter at ingress port 0, mirroring a single-port replay
    /// tap.
    ///
    /// # Errors
    ///
    /// [`P4Error::Invalid`] if `work.len() != num_shards()`; otherwise
    /// the first interpreter error any shard hit. A shard worker that
    /// *panics* (rather than returning an error) is contained: every
    /// other shard still drains its list, and the call reports the
    /// dead shard as [`P4Error::ShardPanicked`] with the captured
    /// panic message instead of aborting the whole process.
    pub fn process_epoch(&mut self, work: &[Vec<(u64, &[u8])>]) -> P4Result<Vec<EpochReport>> {
        if work.len() != self.shards.len() {
            return Err(P4Error::Invalid {
                what: format!(
                    "epoch work lists ({}) != shards ({})",
                    work.len(),
                    self.shards.len()
                ),
            });
        }
        let batch = self.batch;
        let mut results: Vec<P4Result<EpochReport>> = Vec::with_capacity(work.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(self.metrics.iter_mut())
                .zip(work)
                .enumerate()
                .map(|(shard, ((pipe, metrics), list))| {
                    scope.spawn(move || -> P4Result<EpochReport> {
                        maybe_injected_panic(shard, batch);
                        let started = std::time::Instant::now();
                        let mut report = EpochReport::default();
                        for chunk in list.chunks(batch) {
                            for (ts, frame) in chunk {
                                let (_, outcome) = pipe.process_frame(frame, 0, *ts)?;
                                metrics.record(&outcome);
                                report.packets += 1;
                                report.dropped += u64::from(outcome.dropped);
                                report.digests.extend(outcome.digests);
                            }
                        }
                        metrics
                            .epoch_ns
                            .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
                        metrics.observe_pipeline(pipe);
                        Ok(report)
                    })
                })
                .collect();
            for (shard, h) in handles.into_iter().enumerate() {
                results.push(h.join().unwrap_or_else(|payload| {
                    Err(P4Error::ShardPanicked {
                        shard,
                        message: panic_message(payload.as_ref()),
                    })
                }));
            }
        });
        results.into_iter().collect()
    }

    /// The merged register view: shard 0's pipeline with every other
    /// shard's register file added in ([`merge_registers`]). Correct
    /// for additive register state; see the module docs.
    ///
    /// # Errors
    ///
    /// Propagates [`merge_registers`] errors (impossible for shards
    /// cloned from one template unless a caller reshaped a register).
    pub fn merged(&self) -> P4Result<Pipeline> {
        let mut merged = self.shards[0].clone();
        for shard in &self.shards[1..] {
            merge_registers(&mut merged, shard)?;
        }
        Ok(merged)
    }

    /// Per-shard metric sets, index = shard id.
    #[must_use]
    pub fn metrics(&self) -> &[PipelineMetrics] {
        &self.metrics
    }

    /// The cross-shard fold of the per-shard metric sets, with
    /// occupancy re-polled from the merged register view so the gauges
    /// reflect merged (not summed per-shard) state.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::merged`] errors.
    pub fn merged_metrics(&self) -> P4Result<PipelineMetrics> {
        let merged_pipe = self.merged()?;
        let mut merged = PipelineMetrics::for_pipeline(&merged_pipe);
        for m in &self.metrics {
            merged.merge_from(m).map_err(|e| P4Error::Invalid {
                what: format!("metric merge: {e}"),
            })?;
        }
        merged.observe_pipeline(&merged_pipe);
        Ok(merged)
    }

    /// Renders every shard's metric set (labelled `shard="<i>"`) into
    /// one snapshot; sum the per-shard counters (or use
    /// [`Self::merged_metrics`]) for whole-switch totals.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        for (i, m) in self.metrics.iter().enumerate() {
            m.export(&mut snap, Some(i));
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionDef, Operand, Primitive};
    use crate::control::Control;
    use crate::phv::fields;
    use crate::program::ProgramBuilder;
    use crate::target::TargetModel;
    use packet::builder::PacketBuilder;
    use std::net::Ipv4Addr;

    /// A program with additive state: counts packets and bytes per
    /// dst-IP low byte in two registers (one narrow, to exercise width
    /// wrapping).
    fn counting_pipeline() -> Pipeline {
        let mut b = ProgramBuilder::new();
        let pkts = b.add_register("pkts", 16, 256);
        let bytes = b.add_register("bytes", 64, 256);
        let count = b.add_action(ActionDef::new(
            "count",
            vec![
                Primitive::And {
                    dst: fields::M0,
                    a: Operand::Field(fields::IPV4_DST),
                    b: Operand::Const(0xff),
                },
                Primitive::RegRead {
                    dst: fields::scratch(1),
                    register: pkts,
                    index: Operand::Field(fields::M0),
                },
                Primitive::Add {
                    dst: fields::scratch(1),
                    a: Operand::Field(fields::scratch(1)),
                    b: Operand::Const(1),
                },
                Primitive::RegWrite {
                    register: pkts,
                    index: Operand::Field(fields::M0),
                    src: Operand::Field(fields::scratch(1)),
                },
                Primitive::RegRead {
                    dst: fields::scratch(1),
                    register: bytes,
                    index: Operand::Field(fields::M0),
                },
                Primitive::Add {
                    dst: fields::scratch(1),
                    a: Operand::Field(fields::scratch(1)),
                    b: Operand::Field(fields::PKT_LEN),
                },
                Primitive::RegWrite {
                    register: bytes,
                    index: Operand::Field(fields::M0),
                    src: Operand::Field(fields::scratch(1)),
                },
                Primitive::Forward {
                    port: Operand::Const(1),
                },
            ],
        ));
        b.set_control(Control::ApplyAction(count));
        b.build(TargetModel::bmv2()).unwrap()
    }

    fn frames(n: usize) -> Vec<(u64, bytes::Bytes)> {
        (0..n)
            .map(|i| {
                let dst = Ipv4Addr::new(10, 0, 0, (i % 13) as u8 + 1);
                let src = Ipv4Addr::new(192, 0, 2, (i % 7) as u8 + 1);
                (
                    i as u64 * 1_000,
                    PacketBuilder::udp(src, dst, 4000 + (i % 5) as u16, 53)
                        .payload(&vec![0u8; i % 32])
                        .build_bytes(),
                )
            })
            .collect()
    }

    fn split(trace: &[(u64, bytes::Bytes)], shards: usize) -> Vec<Vec<(u64, &[u8])>> {
        let mut work: Vec<Vec<(u64, &[u8])>> = vec![Vec::new(); shards];
        for (i, (t, f)) in trace.iter().enumerate() {
            work[i % shards].push((*t, &f[..]));
        }
        work
    }

    #[test]
    fn sharded_registers_merge_to_sequential() {
        let trace = frames(500);
        // Sequential baseline.
        let mut seq = ShardedPipeline::new(&counting_pipeline(), 1);
        seq.process_epoch(&split(&trace, 1)).unwrap();
        let seq_regs = seq.merged().unwrap();

        for shards in [2usize, 4, 8] {
            let mut sharded = ShardedPipeline::new(&counting_pipeline(), shards);
            let reports = sharded.process_epoch(&split(&trace, shards)).unwrap();
            assert_eq!(
                reports.iter().map(|r| r.packets).sum::<u64>(),
                trace.len() as u64
            );
            let merged = sharded.merged().unwrap();
            assert_eq!(
                merged.registers(),
                seq_regs.registers(),
                "{shards} shards: merged register file must equal sequential"
            );
            assert_eq!(merged.packets_processed(), trace.len() as u64);
        }
    }

    #[test]
    fn narrow_register_wraps_like_sequential() {
        // 16-bit pkts register: force a wrap by sending > 65536 packets
        // to one cell — merged modular sums must equal the sequential
        // modular sum. Use a tiny synthetic trace processed repeatedly.
        let trace = frames(64);
        let work1 = split(&trace, 1);
        let work4 = split(&trace, 4);
        let mut seq = ShardedPipeline::new(&counting_pipeline(), 1);
        let mut sharded = ShardedPipeline::new(&counting_pipeline(), 4);
        for _ in 0..40 {
            seq.process_epoch(&work1).unwrap();
            sharded.process_epoch(&work4).unwrap();
        }
        assert_eq!(
            sharded.merged().unwrap().registers(),
            seq.merged().unwrap().registers()
        );
    }

    #[test]
    fn epoch_work_shape_checked() {
        let mut s = ShardedPipeline::new(&counting_pipeline(), 2);
        assert!(matches!(
            s.process_epoch(&[Vec::new()]),
            Err(P4Error::Invalid { .. })
        ));
    }

    #[test]
    fn merge_rejects_mismatched_programs() {
        let mut a = counting_pipeline();
        let mut b = ProgramBuilder::new();
        b.add_register("other", 64, 8);
        b.set_control(Control::Nop);
        let b = b.build(TargetModel::bmv2()).unwrap();
        assert!(matches!(
            merge_registers(&mut a, &b),
            Err(P4Error::Invalid { .. })
        ));
    }

    #[test]
    fn metrics_follow_the_shards() {
        let trace = frames(500);
        let mut sharded = ShardedPipeline::new(&counting_pipeline(), 4);
        sharded.process_epoch(&split(&trace, 4)).unwrap();

        let per_shard: u64 = sharded.metrics().iter().map(|m| m.packets.get()).sum();
        assert_eq!(per_shard, trace.len() as u64);

        let merged = sharded.merged_metrics().unwrap();
        assert_eq!(merged.packets.get(), trace.len() as u64);
        assert_eq!(merged.steps_per_packet.count(), trace.len() as u64);
        assert_eq!(merged.drops.get(), 0);
        // Occupancy came from the *merged* register view, not the sum
        // of per-shard polls: 13 distinct dst low bytes → 13 cells in
        // each register.
        assert_eq!(merged.register_occupancy[0].get(), 13);
        assert_eq!(merged.register_occupancy[1].get(), 13);

        let snap = sharded.snapshot();
        assert_eq!(snap.counter_sum("p4_packets_total"), trace.len() as u64);
        let text = telemetry::render_prometheus(&snap);
        telemetry::check_prometheus(&text).expect("valid exposition");
    }

    /// Batch-size sentinel that arms [`maybe_injected_panic`]; no
    /// other test uses this batch size, so the global hook cannot
    /// misfire on concurrently running tests.
    pub(super) const PANIC_BATCH: usize = 7777;

    #[test]
    fn worker_panic_is_contained_and_reported() {
        let trace = frames(200);
        let work = split(&trace, 4);
        let mut sharded = ShardedPipeline::new(&counting_pipeline(), 4).with_batch(PANIC_BATCH);

        PANIC_ON.store(2 + 1, std::sync::atomic::Ordering::SeqCst);
        let err = sharded.process_epoch(&work).unwrap_err();
        PANIC_ON.store(0, std::sync::atomic::Ordering::SeqCst);

        match &err {
            P4Error::ShardPanicked { shard, message } => {
                assert_eq!(*shard, 2);
                assert!(
                    message.contains("injected shard fault"),
                    "captured message: {message:?}"
                );
            }
            other => panic!("expected ShardPanicked, got {other:?}"),
        }
        assert!(err.to_string().contains("shard 2 worker panicked"));

        // The supervisor contained the panic: the pool is still
        // usable, and the healthy shards' state was not poisoned.
        let reports = sharded.process_epoch(&work).unwrap();
        assert_eq!(reports.len(), 4);
        assert!(sharded.merged().is_ok());
    }

    #[test]
    fn panic_payloads_render_as_messages() {
        for (thunk, want) in [
            (Box::new(|| panic!("plain literal")) as Box<dyn FnOnce() + Send>, "plain literal"),
            (Box::new(|| panic!("formatted {}", 7)), "formatted 7"),
            (Box::new(|| std::panic::panic_any(42u32)), "non-string panic payload"),
        ] {
            let payload = std::thread::spawn(thunk).join().unwrap_err();
            assert_eq!(panic_message(payload.as_ref()), want);
        }
    }

    #[test]
    fn into_shards_hands_off_register_state() {
        let trace = frames(500);
        let mut sharded = ShardedPipeline::new(&counting_pipeline(), 4);
        sharded.process_epoch(&split(&trace, 4)).unwrap();
        let merged_before = sharded.merged().unwrap();

        let shards = sharded.into_shards();
        assert_eq!(shards.len(), 4);
        let mut merged_after = shards[0].clone();
        for s in &shards[1..] {
            merge_registers(&mut merged_after, s).unwrap();
        }
        assert_eq!(merged_after.registers(), merged_before.registers());
        assert_eq!(merged_after.packets_processed(), trace.len() as u64);
    }

    /// Delta-applied coordinator state stays bit-identical to a full
    /// re-merge across several epochs, including a 16-bit register that
    /// wraps (Sum is modular, so the delta is exact even under wrap).
    #[test]
    fn register_delta_equals_full_merge() {
        let trace = frames(400);
        let work = split(&trace, 4);
        let mut sharded = ShardedPipeline::new(&counting_pipeline(), 4);

        // Rebuild: full merge once, then re-base every shard's journal.
        sharded.process_epoch(&work).unwrap();
        let mut acc = sharded.merged().unwrap();
        for i in 0..sharded.num_shards() {
            sharded.shard_mut(i).unwrap().discard_register_delta();
        }

        for _ in 0..3 {
            sharded.process_epoch(&work).unwrap();
            for i in 0..sharded.num_shards() {
                let d = sharded
                    .shard_mut(i)
                    .unwrap()
                    .take_register_delta()
                    .expect("no fault hooks installed");
                assert!(d.touched_cells() > 0, "traffic touched cells");
                apply_register_delta(&mut acc, &d).unwrap();
            }
            let full = sharded.merged().unwrap();
            assert_eq!(acc.registers(), full.registers());
            assert_eq!(acc.packets_processed(), full.packets_processed());
        }
    }

    /// An idle epoch ships an empty delta — the sparsity the barrier
    /// exploits.
    #[test]
    fn idle_window_ships_empty_delta() {
        let trace = frames(50);
        let mut p = counting_pipeline();
        for (ts, f) in &trace {
            p.process_frame(f, 0, *ts).unwrap();
        }
        p.discard_register_delta();
        let d = p.take_register_delta().unwrap();
        assert_eq!(d.touched_cells(), 0);
        assert_eq!(d.packets_base, d.packets_cur);
        assert!(d.regs.is_empty());
    }

    /// A fault hook bypasses the journal, so the take must refuse to
    /// produce a delta (and re-base, so a post-fault window deltas
    /// cleanly after one rebuild).
    #[test]
    fn fault_hook_taints_the_delta() {
        use crate::fault::{ScheduledFaults, SeuEvent, SeuRecovery};
        let trace = frames(50);
        let mut p = counting_pipeline();
        p.discard_register_delta();
        p.set_fault_hook(Some(Box::new(ScheduledFaults::new(
            vec![SeuEvent { register: "pkts".into(), cell: 1, bit: 2, at_packet: 0 }],
            vec![],
            SeuRecovery::None,
        ))));
        for (ts, f) in &trace {
            p.process_frame(f, 0, *ts).unwrap();
        }
        assert!(p.take_register_delta().is_none(), "hook installed: tainted");
        p.set_fault_hook(None);
        assert!(
            p.take_register_delta().is_some(),
            "hook removed and journals re-based: clean again"
        );
    }

    #[test]
    fn batch_size_does_not_change_state() {
        let trace = frames(300);
        let work = split(&trace, 4);
        let mut small = ShardedPipeline::new(&counting_pipeline(), 4).with_batch(1);
        let mut large = ShardedPipeline::new(&counting_pipeline(), 4).with_batch(4096);
        small.process_epoch(&work).unwrap();
        large.process_epoch(&work).unwrap();
        assert_eq!(
            small.merged().unwrap().registers(),
            large.merged().unwrap().registers()
        );
    }
}
