//! Fixed-function parser from frame bytes to PHV fields.
//!
//! Models a P4 parser state machine for the header stack the
//! experiments use: Ethernet → IPv4 → TCP/UDP, with the first eight
//! payload bytes extracted as [`fields::PAYLOAD_VALUE`] (the echo
//! application's value of interest). Unparseable layers simply leave
//! their validity bits at zero, as a P4 parser transition to `accept`
//! would.

use crate::phv::{fields, Phv};
use packet::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet, TcpSegment, UdpDatagram};

fn mac_to_u64(mac: packet::MacAddr) -> u64 {
    let mut v = 0u64;
    for b in mac.0 {
        v = (v << 8) | u64::from(b);
    }
    v
}

fn payload_value(bytes: &[u8]) -> u64 {
    let mut v = 0u64;
    for (i, b) in bytes.iter().take(8).enumerate() {
        v |= u64::from(*b) << (56 - 8 * i);
    }
    v
}

/// Parses `frame` into a fresh PHV, recording `ingress_port` and
/// `timestamp_ns` metadata.
#[must_use]
pub fn parse_frame(frame: &[u8], ingress_port: u64, timestamp_ns: u64) -> Phv {
    let mut phv = Phv::new();
    phv.set(fields::INGRESS_PORT, ingress_port);
    phv.set(fields::PKT_LEN, frame.len() as u64);
    phv.set(fields::TIMESTAMP_NS, timestamp_ns);

    let Ok(eth) = EthernetFrame::new_checked(frame) else {
        return phv;
    };
    phv.set(fields::ETH_DST, mac_to_u64(eth.dst()));
    phv.set(fields::ETH_SRC, mac_to_u64(eth.src()));
    phv.set(fields::ETH_TYPE, u64::from(u16::from(eth.ethertype())));

    if eth.ethertype() != EtherType::Ipv4 {
        // Non-IP payloads still expose their leading bytes as the value
        // of interest (the validation experiment sends raw Ethernet
        // frames carrying integers).
        phv.set(fields::PAYLOAD_VALUE, payload_value(eth.payload()));
        return phv;
    }

    let Ok(ip) = Ipv4Packet::new_checked(eth.payload()) else {
        return phv;
    };
    phv.set(fields::IPV4_VALID, 1);
    phv.set(fields::IPV4_SRC, u64::from(u32::from(ip.src())));
    phv.set(fields::IPV4_DST, u64::from(u32::from(ip.dst())));
    phv.set(fields::IPV4_PROTO, u64::from(u8::from(ip.protocol())));
    phv.set(fields::IPV4_TTL, u64::from(ip.ttl()));
    phv.set(fields::IPV4_LEN, ip.total_len() as u64);

    match ip.protocol() {
        IpProtocol::Tcp => {
            if let Ok(tcp) = TcpSegment::new_checked(ip.payload()) {
                phv.set(fields::TCP_VALID, 1);
                phv.set(fields::TCP_SPORT, u64::from(tcp.src_port()));
                phv.set(fields::TCP_DPORT, u64::from(tcp.dst_port()));
                phv.set(fields::TCP_FLAGS, u64::from(tcp.flags().0));
                let pure_syn = tcp.syn() && !tcp.ack();
                phv.set(fields::TCP_IS_SYN, u64::from(pure_syn));
                phv.set(fields::PAYLOAD_VALUE, payload_value(tcp.payload()));
            }
        }
        IpProtocol::Udp => {
            if let Ok(udp) = UdpDatagram::new_checked(ip.payload()) {
                phv.set(fields::UDP_VALID, 1);
                phv.set(fields::UDP_SPORT, u64::from(udp.src_port()));
                phv.set(fields::UDP_DPORT, u64::from(udp.dst_port()));
                phv.set(fields::PAYLOAD_VALUE, payload_value(udp.payload()));
            }
        }
        _ => {
            phv.set(fields::PAYLOAD_VALUE, payload_value(ip.payload()));
        }
    }
    phv
}

#[cfg(test)]
mod tests {
    use super::*;
    use packet::builder::PacketBuilder;
    use packet::TcpFlags;
    use std::net::Ipv4Addr;

    const S: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
    const D: Ipv4Addr = Ipv4Addr::new(10, 0, 5, 6);

    #[test]
    fn parses_tcp_syn() {
        let buf = PacketBuilder::tcp_syn(S, D, 44123, 80).build();
        let phv = parse_frame(&buf, 3, 1_000);
        assert_eq!(phv.get(fields::INGRESS_PORT), 3);
        assert_eq!(phv.get(fields::TIMESTAMP_NS), 1_000);
        assert_eq!(phv.get(fields::IPV4_VALID), 1);
        assert_eq!(phv.get(fields::IPV4_SRC), u64::from(u32::from(S)));
        assert_eq!(phv.get(fields::IPV4_DST), u64::from(u32::from(D)));
        assert_eq!(phv.get(fields::TCP_VALID), 1);
        assert_eq!(phv.get(fields::TCP_DPORT), 80);
        assert_eq!(phv.get(fields::TCP_IS_SYN), 1);
        assert_eq!(phv.get(fields::UDP_VALID), 0);
    }

    #[test]
    fn syn_ack_is_not_pure_syn() {
        let buf = PacketBuilder::tcp(S, D, 80, 44123, TcpFlags::syn_ack()).build();
        let phv = parse_frame(&buf, 0, 0);
        assert_eq!(phv.get(fields::TCP_IS_SYN), 0);
        assert_ne!(phv.get(fields::TCP_FLAGS) & u64::from(TcpFlags::SYN), 0);
    }

    #[test]
    fn parses_udp_and_payload_value() {
        let buf = PacketBuilder::udp(S, D, 5000, 53)
            .payload(&42u64.to_be_bytes())
            .build();
        let phv = parse_frame(&buf, 1, 0);
        assert_eq!(phv.get(fields::UDP_VALID), 1);
        assert_eq!(phv.get(fields::UDP_DPORT), 53);
        assert_eq!(phv.get(fields::PAYLOAD_VALUE), 42);
    }

    #[test]
    fn short_payload_left_aligned() {
        let buf = PacketBuilder::udp(S, D, 1, 2).payload(&[0xAB]).build();
        let phv = parse_frame(&buf, 0, 0);
        assert_eq!(phv.get(fields::PAYLOAD_VALUE), 0xAB00_0000_0000_0000);
    }

    #[test]
    fn garbage_frame_yields_metadata_only() {
        let phv = parse_frame(&[1, 2, 3], 7, 9);
        assert_eq!(phv.get(fields::INGRESS_PORT), 7);
        assert_eq!(phv.get(fields::PKT_LEN), 3);
        assert_eq!(phv.get(fields::IPV4_VALID), 0);
        assert_eq!(phv.get(fields::TCP_VALID), 0);
    }

    #[test]
    fn raw_ethernet_payload_value() {
        // The validation experiment: raw Ethernet frame carrying an
        // integer in the body.
        let buf = PacketBuilder::ipv4(S, D, 0xfd)
            .payload(&7u64.to_be_bytes())
            .build();
        let phv = parse_frame(&buf, 0, 0);
        assert_eq!(phv.get(fields::PAYLOAD_VALUE), 7);
    }

    #[test]
    fn truncated_l4_leaves_invalid() {
        // IPv4 claiming TCP but with only 5 payload bytes.
        let buf = PacketBuilder::ipv4(S, D, 6).payload(&[1, 2, 3, 4, 5]).build();
        let phv = parse_frame(&buf, 0, 0);
        assert_eq!(phv.get(fields::IPV4_VALID), 1);
        assert_eq!(phv.get(fields::TCP_VALID), 0);
    }
}
