//! Pipeline telemetry: per-stage packet/drop/step counters, table
//! hit/miss counters, register occupancy gauges, and processing-latency
//! histograms.
//!
//! [`PipelineMetrics`] observes [`PacketOutcome`]s rather than hooking
//! the interpreter: the pipeline itself stays untouched (and costs
//! nothing when nobody is watching), while any driver that already
//! holds the outcome — the sharded replay loop, a test, an example —
//! can feed it to `record` for full accounting. Register and table
//! occupancy are *polled* from the pipeline at whatever cadence the
//! caller likes ([`PipelineMetrics::observe_pipeline`]), mirroring how
//! a real controller samples switch state.
//!
//! Like the Stat4 trackers, the per-shard sets implement
//! [`Mergeable`]: counters and histograms add cellwise, so the fold of
//! N shards' metrics equals one pipeline having processed the whole
//! trace. Occupancy gauges are a *sampled* quantity — after merging,
//! re-poll the merged pipeline ([`PipelineMetrics::observe_pipeline`])
//! rather than trusting the summed gauges.

use crate::pipeline::{PacketOutcome, Pipeline};
use stat4_core::{Mergeable, Stat4Error, Stat4Result};
use telemetry::{Counter, Gauge, LogLinearHistogram, Snapshot};

/// Metric set for one pipeline instance (one shard, or the merged
/// view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineMetrics {
    /// Table names, index = table id (fixes the label set at build
    /// time; merging metric sets from different programs is an error).
    table_names: Vec<String>,
    /// Register names, index = register id.
    register_names: Vec<String>,
    /// Packets processed.
    pub packets: Counter,
    /// Packets dropped by the program.
    pub drops: Counter,
    /// Extra pipeline passes consumed.
    pub recirculations: Counter,
    /// Digests pushed to the controller.
    pub digests: Counter,
    /// Interpreter steps consumed (primitives + lookups + branches).
    pub steps: Counter,
    /// Steps per packet — the deterministic "latency" of the program.
    pub steps_per_packet: LogLinearHistogram,
    /// Wall time per `process_epoch` call, ns.
    pub epoch_ns: LogLinearHistogram,
    /// Table hits, index = table id.
    pub table_hits: Vec<Counter>,
    /// Table misses, index = table id.
    pub table_misses: Vec<Counter>,
    /// Non-zero register cells at the last poll, index = register id.
    pub register_occupancy: Vec<Gauge>,
    /// Installed table entries at the last poll, index = table id.
    pub table_entries: Vec<Gauge>,
}

impl PipelineMetrics {
    /// A zeroed metric set shaped for `pipe`'s tables and registers.
    #[must_use]
    pub fn for_pipeline(pipe: &Pipeline) -> Self {
        let tables = pipe.tables().len();
        let registers = pipe.registers().len();
        Self {
            table_names: pipe.tables().iter().map(|t| t.def.name.clone()).collect(),
            register_names: pipe.registers().iter().map(|r| r.name.clone()).collect(),
            packets: Counter::new(),
            drops: Counter::new(),
            recirculations: Counter::new(),
            digests: Counter::new(),
            steps: Counter::new(),
            steps_per_packet: LogLinearHistogram::default(),
            epoch_ns: LogLinearHistogram::default(),
            table_hits: (0..tables).map(|_| Counter::new()).collect(),
            table_misses: (0..tables).map(|_| Counter::new()).collect(),
            register_occupancy: (0..registers).map(|_| Gauge::new()).collect(),
            table_entries: (0..tables).map(|_| Gauge::new()).collect(),
        }
    }

    /// Accounts one processed packet from its outcome.
    pub fn record(&mut self, outcome: &PacketOutcome) {
        self.packets.inc();
        if outcome.dropped {
            self.drops.inc();
        }
        self.recirculations.add(u64::from(outcome.recirculations));
        self.digests.add(outcome.digests.len() as u64);
        self.steps.add(outcome.steps);
        self.steps_per_packet.record(outcome.steps);
        for &(tid, hit) in &outcome.tables_applied {
            let slot = if hit {
                self.table_hits.get_mut(tid)
            } else {
                self.table_misses.get_mut(tid)
            };
            if let Some(c) = slot {
                c.inc();
            }
        }
    }

    /// Polls occupancy from `pipe`: non-zero cells per register,
    /// installed entries per table.
    pub fn observe_pipeline(&mut self, pipe: &Pipeline) {
        for (g, reg) in self.register_occupancy.iter_mut().zip(pipe.registers()) {
            let nonzero = reg.cells.iter().filter(|c| **c != 0).count();
            g.set(i64::try_from(nonzero).unwrap_or(i64::MAX));
        }
        for (g, table) in self.table_entries.iter_mut().zip(pipe.tables()) {
            g.set(i64::try_from(table.entries().len()).unwrap_or(i64::MAX));
        }
    }

    /// Hit + miss lookups across all tables.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.table_hits.iter().map(Counter::get).sum::<u64>()
            + self.table_misses.iter().map(Counter::get).sum::<u64>()
    }

    /// Exports every family into `snap`. With `shard` set, each sample
    /// carries a `shard="<i>"` label so per-shard series stay distinct.
    pub fn export(&self, snap: &mut Snapshot, shard: Option<usize>) {
        let shard_id = shard.map(|i| i.to_string());
        let base: Vec<(&str, &str)> = match &shard_id {
            Some(id) => vec![("shard", id.as_str())],
            None => Vec::new(),
        };
        snap.push_counter(
            "p4_packets_total",
            "packets processed by the pipeline",
            &base,
            self.packets.get(),
        );
        snap.push_counter(
            "p4_drops_total",
            "packets dropped by the program",
            &base,
            self.drops.get(),
        );
        snap.push_counter(
            "p4_recirculations_total",
            "extra pipeline passes consumed",
            &base,
            self.recirculations.get(),
        );
        snap.push_counter(
            "p4_digests_total",
            "digests pushed to the controller",
            &base,
            self.digests.get(),
        );
        snap.push_counter(
            "p4_steps_total",
            "interpreter steps consumed",
            &base,
            self.steps.get(),
        );
        snap.push_histogram(
            "p4_steps_per_packet",
            "interpreter steps per packet",
            &base,
            &self.steps_per_packet,
        );
        if !self.epoch_ns.is_empty() {
            snap.push_histogram(
                "p4_epoch_ns",
                "wall time per replay epoch",
                &base,
                &self.epoch_ns,
            );
        }
        for (tid, name) in self.table_names.iter().enumerate() {
            let mut labels = base.clone();
            labels.push(("table", name.as_str()));
            snap.push_counter(
                "p4_table_hits_total",
                "table lookups that hit an entry",
                &labels,
                self.table_hits[tid].get(),
            );
            snap.push_counter(
                "p4_table_misses_total",
                "table lookups that fell to the default action",
                &labels,
                self.table_misses[tid].get(),
            );
            snap.push_gauge(
                "p4_table_entries",
                "installed entries at the last poll",
                &labels,
                self.table_entries[tid].get(),
            );
        }
        for (rid, name) in self.register_names.iter().enumerate() {
            let mut labels = base.clone();
            labels.push(("register", name.as_str()));
            snap.push_gauge(
                "p4_register_occupancy_cells",
                "non-zero register cells at the last poll",
                &labels,
                self.register_occupancy[rid].get(),
            );
        }
    }
}

impl Mergeable for PipelineMetrics {
    /// Counters and histograms add cellwise. Occupancy gauges add too
    /// (useful as an upper bound), but are a sampled quantity — re-poll
    /// the merged pipeline for the exact value.
    fn merge_from(&mut self, other: &Self) -> Stat4Result<()> {
        if self.table_names != other.table_names || self.register_names != other.register_names {
            return Err(Stat4Error::MergeMismatch {
                what: "pipeline metric shape",
            });
        }
        self.packets.merge_from(&other.packets)?;
        self.drops.merge_from(&other.drops)?;
        self.recirculations.merge_from(&other.recirculations)?;
        self.digests.merge_from(&other.digests)?;
        self.steps.merge_from(&other.steps)?;
        self.steps_per_packet.merge_from(&other.steps_per_packet)?;
        self.epoch_ns.merge_from(&other.epoch_ns)?;
        for (d, s) in self.table_hits.iter_mut().zip(&other.table_hits) {
            d.merge_from(s)?;
        }
        for (d, s) in self.table_misses.iter_mut().zip(&other.table_misses) {
            d.merge_from(s)?;
        }
        for (d, s) in self.register_occupancy.iter_mut().zip(&other.register_occupancy) {
            d.merge_from(s)?;
        }
        for (d, s) in self.table_entries.iter_mut().zip(&other.table_entries) {
            d.merge_from(s)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionDef, Operand, Primitive};
    use crate::control::Control;
    use crate::phv::{fields, Phv};
    use crate::program::ProgramBuilder;
    use crate::table::{Entry, MatchKind, MatchValue, TableDef};
    use crate::target::TargetModel;

    fn table_pipeline() -> Pipeline {
        let mut b = ProgramBuilder::new();
        let reg = b.add_register("cells", 64, 8);
        let fwd = b.add_action(ActionDef::new(
            "forward",
            vec![Primitive::Forward {
                port: Operand::Const(1),
            }],
        ));
        let count = b.add_action(ActionDef::new(
            "count",
            vec![
                Primitive::RegWrite {
                    register: reg,
                    index: Operand::Const(0),
                    src: Operand::Const(7),
                },
                Primitive::Forward {
                    port: Operand::Const(1),
                },
            ],
        ));
        let t = b.add_table(TableDef {
            name: "bind".into(),
            keys: vec![(fields::IPV4_DST, MatchKind::Exact)],
            max_entries: 4,
            allowed_actions: vec![fwd, count],
            default_action: Some((fwd, vec![])),
        });
        b.set_control(Control::ApplyTable(t));
        let mut pipe = b.build(TargetModel::bmv2()).unwrap();
        pipe.tables[t]
            .insert(
                t,
                Entry {
                    key: vec![MatchValue::Exact(42)],
                    priority: 0,
                    action: count,
                    action_data: vec![],
                },
            )
            .unwrap();
        pipe
    }

    #[test]
    fn records_hits_misses_and_occupancy() {
        let mut pipe = table_pipeline();
        let mut m = PipelineMetrics::for_pipeline(&pipe);

        let mut hit = Phv::new();
        hit.set(fields::IPV4_DST, 42);
        m.record(&pipe.process_phv(&mut hit).unwrap());

        let mut miss = Phv::new();
        miss.set(fields::IPV4_DST, 7);
        m.record(&pipe.process_phv(&mut miss).unwrap());

        assert_eq!(m.packets.get(), 2);
        assert_eq!(m.table_hits[0].get(), 1);
        assert_eq!(m.table_misses[0].get(), 1);
        assert_eq!(m.lookups(), 2);
        assert_eq!(m.steps_per_packet.count(), 2);
        assert!(m.steps.get() > 0);

        m.observe_pipeline(&pipe);
        assert_eq!(m.register_occupancy[0].get(), 1, "one cell written");
        assert_eq!(m.table_entries[0].get(), 1);
    }

    #[test]
    fn merge_adds_and_checks_shape() {
        let pipe = table_pipeline();
        let mut a = PipelineMetrics::for_pipeline(&pipe);
        let mut b = PipelineMetrics::for_pipeline(&pipe);
        a.packets.add(3);
        b.packets.add(4);
        b.table_hits[0].add(2);
        a.merge_from(&b).unwrap();
        assert_eq!(a.packets.get(), 7);
        assert_eq!(a.table_hits[0].get(), 2);

        let mut other = ProgramBuilder::new();
        other.add_register("different", 64, 8);
        other.set_control(Control::Nop);
        let other = PipelineMetrics::for_pipeline(&other.build(TargetModel::bmv2()).unwrap());
        assert!(matches!(
            a.merge_from(&other),
            Err(Stat4Error::MergeMismatch { .. })
        ));
    }

    #[test]
    fn export_passes_format_checker() {
        let mut pipe = table_pipeline();
        let mut m = PipelineMetrics::for_pipeline(&pipe);
        let mut phv = Phv::new();
        phv.set(fields::IPV4_DST, 42);
        m.record(&pipe.process_phv(&mut phv).unwrap());
        m.observe_pipeline(&pipe);

        let mut snap = Snapshot::new();
        m.export(&mut snap, Some(0));
        assert_eq!(snap.counter_sum("p4_packets_total"), 1);
        let text = telemetry::render_prometheus(&snap);
        telemetry::check_prometheus(&text).expect("valid exposition");
    }
}
