//! Static resource and dependency analysis.
//!
//! Reproduces the quantities of the paper's Sec. 4 "Resource
//! Consumption" paragraph for any program:
//!
//! - **memory footprint** — bytes of register state plus match-action
//!   table capacity (the paper reports 3.1 KB for the case-study app);
//! - **match-action dependencies** — ordered pairs of tables on one
//!   execution path where the later table reads a field some action of
//!   the earlier table may write (the paper: "at most one dependency
//!   between match-action rules");
//! - **longest sequential dependency chain** — the critical path of
//!   primitive operations along the worst execution path (the paper: "12
//!   sequential steps, used to override the oldest counter");
//! - **pipeline stages** — the depth the [`crate::analysis`] stage
//!   allocator assigns under the target's per-stage limits, with the
//!   per-stage footprint.
//!
//! Path enumeration and the table read/write sets come from
//! [`crate::analysis::tdg`] — the same code the static verifier uses,
//! so the resource report and the lint can never disagree about
//! dependency structure.
//!
//! The byte model is intentionally simple and documented per match kind;
//! absolute numbers are compared against the paper's in
//! `EXPERIMENTS.md`, shape first.

use crate::action::ActionDef;
use crate::analysis::tdg::{paths, table_actions, table_reads, table_writes, Item};
use crate::analysis::{allocate, TableDepGraph};
use crate::phv::FieldId;
use crate::pipeline::Pipeline;
use crate::table::MatchKind;
use crate::target::TargetModel;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// One pipeline stage's footprint in the allocation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageFootprint {
    /// Match-action tables hosted: `(name, ...)`.
    pub tables: Vec<String>,
    /// Direct actions executed (VLIW-only, no table slot).
    pub actions: Vec<String>,
    /// Registers whose stateful ALU lives here.
    pub registers: Vec<String>,
}

/// The analyser's findings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceReport {
    /// Bytes of register state, per register: `(name, bytes)`.
    pub registers: Vec<(String, usize)>,
    /// Bytes of table capacity, per table: `(name, bytes)`.
    pub tables: Vec<(String, usize)>,
    /// Total register bytes.
    pub register_bytes: usize,
    /// Total table bytes.
    pub table_bytes: usize,
    /// Longest sequential dependency chain (interpreter steps, `Msb`
    /// charged at the target's cost) over any execution path.
    pub longest_chain_steps: u64,
    /// Most tables applied to a single packet.
    pub max_tables_per_packet: usize,
    /// Maximum number of match-action dependencies on one path.
    pub match_dependencies: usize,
    /// Pipeline stages the allocator assigned (depth of the placed
    /// table-dependency graph under the target's per-stage limits).
    pub stage_estimate: u32,
    /// Whether the allocation fits the analysed target (stage count and
    /// per-stage resource limits).
    pub fits_target: bool,
    /// What each allocated stage hosts (index 0 = stage 1).
    pub stage_footprint: Vec<StageFootprint>,
    /// Critical-path length of every action, `(name, steps)`, longest
    /// first — the per-fragment view of the dependency chains (the
    /// paper's "12 sequential steps to override the oldest counter"
    /// corresponds to one entry here).
    pub action_chains: Vec<(String, u64)>,
}

impl ResourceReport {
    /// Total memory footprint in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.register_bytes + self.table_bytes
    }

    /// Total memory footprint in kilobytes.
    #[must_use]
    pub fn total_kb(&self) -> f64 {
        self.total_bytes() as f64 / 1024.0
    }
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "memory: {:.1} KB total", self.total_kb())?;
        writeln!(
            f,
            "  registers: {} B across {}",
            self.register_bytes,
            self.registers.len()
        )?;
        writeln!(
            f,
            "  tables:    {} B across {}",
            self.table_bytes,
            self.tables.len()
        )?;
        writeln!(f, "longest dependency chain: {} steps", self.longest_chain_steps)?;
        writeln!(f, "max tables per packet: {}", self.max_tables_per_packet)?;
        writeln!(f, "match-action dependencies: {}", self.match_dependencies)?;
        write!(
            f,
            "pipeline stages: {} ({})",
            self.stage_estimate,
            if self.fits_target {
                "fits target"
            } else {
                "EXCEEDS TARGET"
            }
        )?;
        for (i, s) in self.stage_footprint.iter().enumerate() {
            write!(
                f,
                "\n  stage {}: {} table(s), {} action(s), {} register(s)",
                i + 1,
                s.tables.len(),
                s.actions.len(),
                s.registers.len()
            )?;
        }
        Ok(())
    }
}

/// Bytes one entry of a key component costs.
fn key_bytes(kind: &MatchKind) -> usize {
    match kind {
        MatchKind::Exact => 4,
        MatchKind::Lpm { width } => usize::from(*width) / 8 + 1,
        // value + mask / lo + hi at 64-bit.
        MatchKind::Ternary | MatchKind::Range => 16,
    }
}

/// Critical-path cost of an action's primitive DAG.
#[allow(clippy::needless_range_loop)] // index loops mirror the DAG recurrence
fn action_chain_steps(a: &ActionDef, target: &TargetModel) -> u64 {
    let n = a.primitives.len();
    let mut cp = vec![0u64; n];
    for i in 0..n {
        let cost = if matches!(a.primitives[i], crate::action::Primitive::Msb { .. }) {
            u64::from(target.msb_cost)
        } else {
            1
        };
        let reads: HashSet<FieldId> = a.primitives[i].src_fields().into_iter().collect();
        let writes = a.primitives[i].dst_field();
        let reg = a.primitives[i].register_access();
        let mut best = 0u64;
        for j in 0..i {
            let j_writes = a.primitives[j].dst_field();
            let j_reads: HashSet<FieldId> = a.primitives[j].src_fields().into_iter().collect();
            let j_reg = a.primitives[j].register_access();
            // RAW: i reads what j wrote.
            let raw = j_writes.is_some_and(|w| reads.contains(&w));
            // WAW / WAR on the same field.
            let waw = writes.is_some() && writes == j_writes;
            let war = writes.is_some_and(|w| j_reads.contains(&w));
            // Same-register accesses serialise (stateful ALU semantics).
            let regdep = match (reg, j_reg) {
                (Some((r1, w1)), Some((r2, w2))) => r1 == r2 && (w1 || w2),
                _ => false,
            };
            if raw || waw || war || regdep {
                best = best.max(cp[j]);
            }
        }
        cp[i] = best + cost;
    }
    cp.into_iter().max().unwrap_or(0)
}

/// Worst-case chain steps contributed by a path item.
fn item_chain_steps(p: &Pipeline, item: Item, target: &TargetModel) -> u64 {
    match item {
        Item::Table(t) => {
            let worst = table_actions(p, t)
                .into_iter()
                .filter_map(|a| p.actions().get(a))
                .map(|a| action_chain_steps(a, target))
                .max()
                .unwrap_or(0);
            // +1 for the match itself.
            worst + 1
        }
        Item::Action(a) => p
            .actions()
            .get(a)
            .map(|a| action_chain_steps(a, target))
            .unwrap_or(0),
    }
}

/// Longest sequential dependency chain (in interpreter steps, `Msb`
/// charged at the target's cost) over any execution path. Shared with
/// the static verifier's step-budget check.
pub(crate) fn worst_path_steps(p: &Pipeline, target: &TargetModel) -> u64 {
    paths(p.control())
        .iter()
        .map(|path| {
            path.iter()
                .map(|i| item_chain_steps(p, *i, target))
                .sum::<u64>()
        })
        .max()
        .unwrap_or(0)
}

/// Analyses a built pipeline.
#[must_use]
pub fn analyze(p: &Pipeline) -> ResourceReport {
    let target = *p.target();

    let registers: Vec<(String, usize)> = p
        .registers()
        .iter()
        .map(|r| {
            let cell_bytes = (r.width_bits as usize).div_ceil(8);
            (r.name.clone(), r.cells.len() * cell_bytes)
        })
        .collect();
    let register_bytes = registers.iter().map(|(_, b)| b).sum();

    let tables: Vec<(String, usize)> = p
        .tables()
        .iter()
        .map(|t| {
            let key_cost: usize = t.def.keys.iter().map(|(_, k)| key_bytes(k)).sum();
            let data_cost = t
                .def
                .allowed_actions
                .iter()
                .filter_map(|a| p.actions().get(*a))
                .map(ActionDef::data_slots_required)
                .max()
                .unwrap_or(0)
                * 4;
            // +1 byte selecting the action.
            (t.def.name.clone(), t.def.max_entries * (key_cost + data_cost + 1))
        })
        .collect();
    let table_bytes = tables.iter().map(|(_, b)| b).sum();

    let mut action_chains: Vec<(String, u64)> = p
        .actions()
        .iter()
        .map(|a| (a.name.clone(), action_chain_steps(a, &target)))
        .collect();
    action_chains.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let longest_chain_steps = worst_path_steps(p, &target);

    let mut max_tables_per_packet = 0usize;
    let mut match_dependencies = 0usize;
    for path in paths(p.control()) {
        let tables_on_path: Vec<usize> = path
            .iter()
            .filter_map(|i| match i {
                Item::Table(t) => Some(*t),
                Item::Action(_) => None,
            })
            .collect();
        max_tables_per_packet = max_tables_per_packet.max(tables_on_path.len());

        let n = tables_on_path.len();
        let mut deps = 0usize;
        for j in 0..n {
            for i in 0..j {
                let writes = table_writes(p, tables_on_path[i]);
                let reads = table_reads(p, tables_on_path[j]);
                if writes.iter().any(|f| reads.contains(f)) {
                    deps += 1;
                }
            }
        }
        match_dependencies = match_dependencies.max(deps);
    }

    // Stage placement comes from the real allocator; diagnostics are the
    // verifier's concern (`crate::analysis::verify`), only the shape is
    // reported here.
    let tdg = TableDepGraph::build(p);
    let mut diags = Vec::new();
    let allocation = allocate(p, &tdg, &target, &mut diags);
    let reg_name = |r: usize| {
        p.registers()
            .get(r)
            .map_or_else(|| format!("#{r}"), |reg| reg.name.clone())
    };
    let stage_footprint: Vec<StageFootprint> = allocation
        .stages
        .iter()
        .map(|s| StageFootprint {
            tables: s
                .tables
                .iter()
                .map(|t| p.tables()[*t].def.name.clone())
                .collect(),
            actions: s
                .actions
                .iter()
                .map(|a| {
                    p.actions()
                        .get(*a)
                        .map_or_else(|| format!("#{a}"), |x| x.name.clone())
                })
                .collect(),
            registers: s.registers.iter().map(|r| reg_name(*r)).collect(),
        })
        .collect();

    ResourceReport {
        registers,
        tables,
        register_bytes,
        table_bytes,
        longest_chain_steps,
        max_tables_per_packet,
        match_dependencies,
        stage_estimate: allocation.depth,
        fits_target: allocation.fits,
        stage_footprint,
        action_chains,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionDef, Operand, Primitive};
    use crate::control::{CmpOp, Cond, Control};
    use crate::phv::fields;
    use crate::program::ProgramBuilder;
    use crate::table::{MatchKind, TableDef};

    #[test]
    fn register_bytes_model() {
        let mut b = ProgramBuilder::new();
        b.add_register("a", 64, 100); // 800 B
        b.add_register("b", 32, 10); // 40 B
        b.add_register("c", 8, 3); // 3 B
        let p = b.build(TargetModel::bmv2()).unwrap();
        let r = analyze(&p);
        assert_eq!(r.register_bytes, 843);
        assert_eq!(r.registers[0], ("a".into(), 800));
        assert_eq!(r.table_bytes, 0);
        assert_eq!(r.longest_chain_steps, 0);
        assert!(r.stage_footprint.is_empty());
    }

    #[test]
    fn chain_respects_data_dependencies() {
        // Three dependent ops: read -> add -> write (same register): all
        // serialise. Plus one independent op that does not extend the
        // chain.
        let mut b = ProgramBuilder::new();
        let reg = b.add_register("r", 64, 4);
        let a = b.add_action(ActionDef::new(
            "chain",
            vec![
                Primitive::RegRead {
                    dst: fields::M0,
                    register: reg,
                    index: Operand::Const(0),
                },
                Primitive::Add {
                    dst: fields::M0,
                    a: Operand::Field(fields::M0),
                    b: Operand::Const(1),
                },
                Primitive::RegWrite {
                    register: reg,
                    index: Operand::Const(0),
                    src: Operand::Field(fields::M0),
                },
                // Independent: writes a different field from constants.
                Primitive::Set {
                    dst: fields::scratch(5),
                    src: Operand::Const(9),
                },
            ],
        ));
        b.set_control(Control::ApplyAction(a));
        let p = b.build(TargetModel::bmv2()).unwrap();
        let r = analyze(&p);
        assert_eq!(r.longest_chain_steps, 3, "3 dependent, 1 parallel");
    }

    #[test]
    fn msb_charged_at_target_cost() {
        let mut b = ProgramBuilder::new();
        let a = b.add_action(ActionDef::new(
            "m",
            vec![
                Primitive::Msb {
                    dst: fields::M0,
                    src: Operand::Field(fields::PKT_LEN),
                },
                Primitive::Add {
                    dst: fields::M0,
                    a: Operand::Field(fields::M0),
                    b: Operand::Const(1),
                },
            ],
        ));
        b.set_control(Control::ApplyAction(a));
        let p = b.build(TargetModel::bmv2()).unwrap();
        let r = analyze(&p);
        assert_eq!(
            r.longest_chain_steps,
            u64::from(TargetModel::bmv2().msb_cost) + 1
        );
    }

    #[test]
    fn dependent_tables_counted() {
        let mut b = ProgramBuilder::new();
        // Table 1's action writes M0; table 2 matches on M0.
        let w = b.add_action(ActionDef::new(
            "w",
            vec![Primitive::Set {
                dst: fields::M0,
                src: Operand::Const(1),
            }],
        ));
        let n = b.add_action(ActionDef::new("n", vec![]));
        let t1 = b.add_table(TableDef {
            name: "t1".into(),
            keys: vec![(fields::IPV4_DST, MatchKind::Exact)],
            max_entries: 2,
            allowed_actions: vec![w],
            default_action: None,
        });
        let t2 = b.add_table(TableDef {
            name: "t2".into(),
            keys: vec![(fields::M0, MatchKind::Exact)],
            max_entries: 2,
            allowed_actions: vec![n],
            default_action: None,
        });
        b.set_control(Control::Seq(vec![
            Control::ApplyTable(t1),
            Control::ApplyTable(t2),
        ]));
        let p = b.build(TargetModel::bmv2()).unwrap();
        let r = analyze(&p);
        assert_eq!(r.max_tables_per_packet, 2);
        assert_eq!(r.match_dependencies, 1);
        assert_eq!(r.stage_estimate, 2);
        assert!(r.fits_target);
        assert_eq!(r.stage_footprint.len(), 2);
        assert_eq!(r.stage_footprint[0].tables, vec!["t1".to_string()]);
        assert_eq!(r.stage_footprint[1].tables, vec!["t2".to_string()]);
    }

    #[test]
    fn independent_tables_share_stage() {
        let mut b = ProgramBuilder::new();
        let n = b.add_action(ActionDef::new("n", vec![]));
        let t1 = b.add_table(TableDef {
            name: "t1".into(),
            keys: vec![(fields::IPV4_DST, MatchKind::Exact)],
            max_entries: 2,
            allowed_actions: vec![n],
            default_action: None,
        });
        let t2 = b.add_table(TableDef {
            name: "t2".into(),
            keys: vec![(fields::IPV4_SRC, MatchKind::Exact)],
            max_entries: 2,
            allowed_actions: vec![n],
            default_action: None,
        });
        b.set_control(Control::Seq(vec![
            Control::ApplyTable(t1),
            Control::ApplyTable(t2),
        ]));
        let p = b.build(TargetModel::bmv2()).unwrap();
        let r = analyze(&p);
        assert_eq!(r.match_dependencies, 0);
        assert_eq!(r.stage_estimate, 1, "independent tables pack together");
        assert_eq!(r.stage_footprint[0].tables.len(), 2);
    }

    #[test]
    fn branches_take_worst_path() {
        let mut b = ProgramBuilder::new();
        let long = b.add_action(ActionDef::new(
            "long",
            vec![
                Primitive::Set {
                    dst: fields::M0,
                    src: Operand::Const(1),
                },
                Primitive::Add {
                    dst: fields::M0,
                    a: Operand::Field(fields::M0),
                    b: Operand::Const(1),
                },
                Primitive::Add {
                    dst: fields::M0,
                    a: Operand::Field(fields::M0),
                    b: Operand::Const(1),
                },
            ],
        ));
        let short = b.add_action(ActionDef::new(
            "short",
            vec![Primitive::Set {
                dst: fields::M0,
                src: Operand::Const(0),
            }],
        ));
        b.set_control(Control::If {
            cond: Cond::new(Operand::Field(fields::PKT_LEN), CmpOp::Gt, Operand::Const(100)),
            then_branch: Box::new(Control::ApplyAction(long)),
            else_branch: Some(Box::new(Control::ApplyAction(short))),
        });
        let p = b.build(TargetModel::bmv2()).unwrap();
        let r = analyze(&p);
        assert_eq!(r.longest_chain_steps, 3);
    }

    #[test]
    fn table_bytes_model() {
        let mut b = ProgramBuilder::new();
        let fwd = b.add_action(ActionDef::new(
            "fwd",
            vec![Primitive::Forward {
                port: Operand::Data(0),
            }],
        ));
        b.add_table(TableDef {
            name: "routes".into(),
            keys: vec![(fields::IPV4_DST, MatchKind::Lpm { width: 32 })],
            max_entries: 100,
            allowed_actions: vec![fwd],
            default_action: None,
        });
        let p = b.build(TargetModel::bmv2()).unwrap();
        let r = analyze(&p);
        // (32/8 + 1) key + 4 data + 1 action byte = 10 per entry.
        assert_eq!(r.table_bytes, 1000);
        assert_eq!(r.total_bytes(), 1000);
        assert!((r.total_kb() - 1000.0 / 1024.0).abs() < 1e-9);
    }

    #[test]
    fn display_renders() {
        let b = ProgramBuilder::new();
        let p = b.build(TargetModel::bmv2()).unwrap();
        let r = analyze(&p);
        let s = r.to_string();
        assert!(s.contains("memory"));
        assert!(s.contains("fits target"));
    }
}
