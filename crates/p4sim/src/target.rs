//! Target capability models.
//!
//! The paper develops its algorithms against two implicit targets: the
//! bmv2 behavioural model (which executes arbitrary arithmetic except
//! division) and Tofino-class hardware (which additionally cannot
//! multiply two runtime values or shift by a runtime distance, and
//! bounds the number of pipeline stages). Programs are validated against
//! a [`TargetModel`] at build time, so choosing the hardware preset
//! forces the same design decisions the paper describes.

use serde::{Deserialize, Serialize};

/// Capabilities and costs of a deployment target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetModel {
    /// Target name for error messages and reports.
    pub name: &'static str,
    /// Whether two runtime values may be multiplied (`Mul` with two
    /// non-constant operands, or any `Mul` at all when
    /// `allow_const_mul` is false).
    pub allow_runtime_mul: bool,
    /// Whether `Mul` by a compile-time constant is allowed (compilers
    /// lower it to shift-add trees).
    pub allow_const_mul: bool,
    /// Whether shift distances may be runtime values.
    pub allow_dynamic_shift: bool,
    /// Sequential-step cost charged for an `Msb` primitive (the paper's
    /// if-cascade; 1 when a TCAM assists).
    pub msb_cost: u32,
    /// Pipeline stages available (the paper cites >10 for commercial
    /// targets).
    pub max_stages: u32,
    /// Hard per-packet interpreter step budget (loop backstop).
    pub step_budget: u64,
    /// Maximum times one packet may re-enter the pipeline
    /// (`Control::Recirculate`). Each pass costs a full pipeline
    /// traversal of throughput — the reason the paper avoids it.
    pub max_recirculations: u32,
    /// Register cell width in bits for the resource model.
    pub register_width_bits: u32,
    /// Match-action tables one stage can host (the stage allocator in
    /// [`crate::analysis`] bumps tables to later stages past this).
    pub tables_per_stage: u32,
    /// Distinct registers whose stateful ALUs one stage can host.
    pub registers_per_stage: u32,
    /// Whether a register may be touched by at most one read-modify-write
    /// point per packet path (true for PISA hardware, where a register
    /// lives in exactly one stage's stateful ALU; false for software
    /// targets like bmv2).
    pub single_register_access: bool,
    /// Guard bits the SEU-recovery saturation path reserves *above*
    /// each register's declared width: a flip that lands in the guard
    /// range is detected (value exceeds the width mask) and clamped
    /// (see `fault::SeuRecovery::Saturate`). Registers declared so
    /// wide that `width_bits + seu_headroom_bits > 64` leave the
    /// recovery nothing to detect with — the `S4L012` lint. Both
    /// standard presets set 0 (no SEU hardening demanded).
    pub seu_headroom_bits: u32,
}

impl TargetModel {
    /// The bmv2 behavioural model: everything except division.
    #[must_use]
    pub const fn bmv2() -> Self {
        Self {
            name: "bmv2",
            allow_runtime_mul: true,
            allow_const_mul: true,
            allow_dynamic_shift: true,
            // Software if-cascade over a 64-bit value.
            msb_cost: 7,
            max_stages: u32::MAX,
            step_budget: 100_000,
            max_recirculations: 16,
            register_width_bits: 64,
            tables_per_stage: u32::MAX,
            registers_per_stage: u32::MAX,
            single_register_access: false,
            seu_headroom_bits: 0,
        }
    }

    /// A Tofino-like hardware model: no runtime multiply, constant
    /// shifts only, TCAM-assisted MSB, bounded stages.
    #[must_use]
    pub const fn tofino_like() -> Self {
        Self {
            name: "tofino-like",
            allow_runtime_mul: false,
            allow_const_mul: true,
            allow_dynamic_shift: false,
            msb_cost: 1,
            max_stages: 12,
            step_budget: 10_000,
            max_recirculations: 1,
            register_width_bits: 32,
            tables_per_stage: 8,
            registers_per_stage: 8,
            single_register_access: true,
            seu_headroom_bits: 0,
        }
    }
}

impl Default for TargetModel {
    fn default() -> Self {
        Self::bmv2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_expected() {
        let b = TargetModel::bmv2();
        let t = TargetModel::tofino_like();
        assert!(b.allow_runtime_mul && !t.allow_runtime_mul);
        assert!(b.allow_dynamic_shift && !t.allow_dynamic_shift);
        assert!(t.max_stages < b.max_stages);
        assert!(t.msb_cost < b.msb_cost, "TCAM-assisted MSB is cheap");
        assert!(t.tables_per_stage < b.tables_per_stage);
        assert!(t.registers_per_stage < b.registers_per_stage);
        assert!(t.single_register_access && !b.single_register_access);
    }

    #[test]
    fn default_is_bmv2() {
        assert_eq!(TargetModel::default().name, "bmv2");
    }
}
