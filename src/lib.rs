//! # stat4-suite
//!
//! Umbrella crate for the Rust reproduction of *Stats 101 in P4: Towards
//! In-Switch Anomaly Detection* (Gao, Handley, Vissicchio — HotNets '21).
//!
//! This crate only re-exports the workspace members so the repository-level
//! `examples/` and `tests/` can exercise the whole system through one
//! dependency. The interesting code lives in the member crates:
//!
//! - [`stat4_core`] — the paper's contribution: integer-only online
//!   statistics (mean/variance/stddev via the *NX* trick, approximate
//!   square root, one-step-per-packet percentiles).
//! - [`p4sim`] — a P4-like match-action pipeline simulator enforcing the
//!   data-plane restrictions the paper works around.
//! - [`stat4_p4`] — Stat4 expressed as pipeline programs (the P4 library),
//!   including the echo validation app and the case-study app.
//! - [`packet`] — Ethernet/IPv4/TCP/UDP header views and builders.
//! - [`netsim`] — deterministic discrete-event network simulator.
//! - [`workloads`] — seeded synthetic traffic generators.
//! - [`anomaly`] — detection applications and the drill-down controller.

pub use anomaly;
pub use netsim;
pub use p4sim;
pub use packet;
pub use stat4_core;
pub use stat4_p4;
pub use telemetry;
pub use workloads;
