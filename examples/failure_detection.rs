//! Remote-failure detection via stalled flows (paper Table 1: "satisfy
//! uptime SLAs, stalled flows over time"): steady flow activity
//! collapses when a remote link fails; the lower-tail outlier check
//! (`N·x < Xsum − k·σ(NX)`) fires on the first quiet interval.
//!
//! ```text
//! cargo run --example failure_detection --release
//! ```

use anomaly::stalled::{StalledFlowConfig, StalledFlowDetector};
use rand::Rng;

fn main() {
    let interval_ns = 100_000_000u64; // 100 ms
    let failure_at = 5_000_000_000u64; // 5 s
    let mut detector = StalledFlowDetector::new(StalledFlowConfig {
        interval_ns,
        window: 50,
        k: 2,
        min_intervals: 10,
    });

    // Healthy phase: ~200 flow-progress events per 100 ms interval
    // with Poisson-ish jitter.
    let mut rng = workloads::rng(99);
    let mut t = 0u64;
    println!("healthy phase: ~2000 activity events/s until t = 5.0s");
    while t < failure_at {
        detector.observe_activity(t);
        t += rng.random_range(300_000u64..700_000);
    }
    assert!(
        detector.detected_at.is_none(),
        "healthy traffic must not alarm: {:?}",
        detector.alerts
    );

    // The failure: activity stops. A timer tick a few intervals later
    // (as the switch's idle timer would) closes the silent intervals.
    println!("link fails at t = {:.1}s; flows stall", failure_at as f64 / 1e9);
    let alert = detector.tick(failure_at + 3 * interval_ns);
    match alert {
        Some(a) => {
            println!(
                "ALERT at t = {:.2}s: {a:?}",
                a.at() as f64 / 1e9
            );
            let lag_ms = (a.at() - failure_at) as f64 / 1e6;
            println!(
                "failure surfaced {lag_ms:.0} ms after onset (bounded by interval length + tick)"
            );
        }
        None => {
            println!("failure NOT detected");
            std::process::exit(1);
        }
    }
}
