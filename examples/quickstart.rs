//! Quickstart: the Stat4 primitives in five minutes.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks through the paper's core ideas with the portable API: the
//! division-free `NX`-domain statistics, the shift-based square root,
//! constant-work frequency moments, and the one-step-per-packet median.

use stat4_core::freq::FrequencyDist;
use stat4_core::isqrt::{approx_isqrt, exact_isqrt};
use stat4_core::percentile::{PercentileTracker, Quantile};
use stat4_core::running::RunningStats;
use stat4_core::window::WindowedDist;

fn main() {
    println!("== 1. mean/variance without division: track NX instead of X ==");
    let mut stats = RunningStats::new();
    for rate in [100i64, 104, 98, 101, 99, 102, 97, 103] {
        stats.push(rate);
    }
    println!(
        "N = {}, Xsum = {} (the exact mean of NX), Xsumsq = {}",
        stats.n(),
        stats.xsum(),
        stats.xsumsq()
    );
    println!(
        "var(NX) = N*Xsumsq - Xsum^2 = {}, sd(NX) ~ {}",
        stats.variance_nx(),
        stats.sd_nx()
    );
    println!(
        "is 250 an outlier (N*x > Xsum + 2*sd)? {}",
        stats.is_upper_outlier(250, 2)
    );
    println!(
        "is 103 an outlier?                     {}",
        stats.is_upper_outlier(103, 2)
    );

    println!("\n== 2. the shift-based square root (paper Fig. 2) ==");
    for y in [106u64, 3, 1000, 99_980_001] {
        println!(
            "approx_isqrt({y}) = {} (exact {})",
            approx_isqrt(y),
            exact_isqrt(y)
        );
    }

    println!("\n== 3. frequency distributions with O(1) moment updates ==");
    let mut kinds = FrequencyDist::new(0, 3).expect("domain");
    // 0 = TCP data, 1 = SYN, 2 = UDP, 3 = QUIC.
    for k in [0i64, 0, 0, 2, 0, 1, 0, 3, 0, 0, 2, 0] {
        kinds.observe(k).expect("in domain");
    }
    println!(
        "distinct kinds N = {}, total Xsum = {}, Xsumsq = {} (updated as 2f+1 per packet)",
        kinds.n_distinct(),
        kinds.xsum(),
        kinds.xsumsq()
    );

    println!("\n== 4. online median, one marker step per packet (paper Fig. 3) ==");
    let mut median = PercentileTracker::median(1, 100).expect("domain");
    let mut p90 = PercentileTracker::new(1, 100, Quantile::percentile(90).expect("valid"))
        .expect("domain");
    for i in 0..500 {
        let v = 1 + (i * 37) % 100;
        median.observe(v).expect("in domain");
        p90.observe(v).expect("in domain");
    }
    println!(
        "median estimate = {:?} (true 50), p90 estimate = {:?} (true 90)",
        median.estimate(),
        p90.estimate()
    );

    println!("\n== 5. windowed rates: the case-study detector's state ==");
    let mut window = WindowedDist::new(100).expect("window");
    for i in 0..60 {
        window.accumulate(100 + (i % 5));
        window.close_interval();
    }
    println!(
        "after 60 intervals around 100 pkts: spike at 500? {} | at 103? {}",
        window.is_spike(500, 2, 10),
        window.is_spike(103, 2, 10)
    );
}
