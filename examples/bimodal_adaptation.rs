//! The paper's bimodal future-work scenario: "the controller has access
//! to all the values of distributions tracked by switches … if a
//! distribution is bimodal, the controller can instruct switches to
//! separately track and check the two modes."
//!
//! ```text
//! cargo run --example bimodal_adaptation --release
//! ```
//!
//! Phase 1 shows the pathology: per-interval traffic alternates between
//! an interactive mode (~100) and a bulk-backup mode (~10 000); a value
//! of 5 000 — wildly abnormal, sitting in the dead zone between modes —
//! passes the naive global mean ± 2σ check, because the bimodality
//! inflates σ to span the gap.
//!
//! Phase 2 is the paper's fix, division-free on the switch side: the
//! controller reads the tracked values, notices the bimodality,
//! computes a split threshold (the controller may divide), and rebinds
//! the switch to two distributions — values below the threshold checked
//! against the low mode, values above against the high mode. The same
//! 5 000 is now a screaming outlier of *both* modes.

use stat4_core::running::RunningStats;
use workloads::BimodalValues;

fn main() {
    let workload = BimodalValues {
        count: 2_000,
        anomaly: None,
        ..BimodalValues::default()
    };
    let (values, _) = workload.generate();
    let anomaly = 5_000i64;

    // ---- Phase 1: one global distribution -------------------------
    let mut global = RunningStats::new();
    for &v in &values {
        global.push(v);
    }
    let hidden =
        !global.is_upper_outlier(anomaly, 2) && !global.is_lower_outlier(anomaly, 2);
    println!("phase 1 — single distribution over both modes");
    println!(
        "  N = {}, mean ≈ {}, σ(NX)/N ≈ {}",
        global.n(),
        global.xsum() / global.n() as i64,
        global.sd_nx() / global.n()
    );
    println!(
        "  value {anomaly} (mid-gap, clearly anomalous) flagged? {} — {}",
        !hidden,
        if hidden {
            "MISSED: bimodality inflates sigma over the gap"
        } else {
            "unexpected"
        }
    );
    assert!(hidden, "the pathology the paper describes");

    // ---- Phase 2: controller splits the modes -----------------------
    // The controller (which can divide and inspect) reads the tracked
    // values and picks a split threshold; the switch then tracks two
    // distributions selected by one comparison — P4-legal.
    let threshold = workload.split_threshold();
    let mut low = RunningStats::new();
    let mut high = RunningStats::new();
    for &v in &values {
        if v < threshold {
            low.push(v);
        } else {
            high.push(v);
        }
    }
    println!("\nphase 2 — controller splits at {threshold} and rebinds");
    println!(
        "  low  mode: N = {}, mean ≈ {}",
        low.n(),
        low.xsum() / low.n() as i64
    );
    println!(
        "  high mode: N = {}, mean ≈ {}",
        high.n(),
        high.xsum() / high.n() as i64
    );
    // The anomaly is routed to one mode by the same comparison; it is
    // an outlier there (and would be in the other too).
    let flagged = if anomaly < threshold {
        low.is_upper_outlier(anomaly, 2)
    } else {
        high.is_lower_outlier(anomaly, 2)
    };
    println!("  value {anomaly} flagged now? {flagged}");
    assert!(flagged, "split modes expose the mid-gap anomaly");
    println!("\nper-mode checks detect what the global band cannot — the paper's adaptation loop.");
}
