//! Load-balance monitoring (paper Table 1: "avoid imbalances, traffic
//! rate across IPs"): traffic is supposed to be spread evenly over a
//! server pool; the frequency-outlier check flags a server drawing a
//! disproportionate share.
//!
//! ```text
//! cargo run --example load_balancing --release
//! ```

use packet::{EthernetFrame, Ipv4Packet};
use stat4_core::freq::FrequencyDist;
use std::net::Ipv4Addr;
use workloads::SpikeWorkload;

fn main() {
    // Reuse the spike workload: uniform background over 36 servers,
    // then one server starts absorbing 10x traffic — exactly a broken
    // load balancer.
    let workload = SpikeWorkload {
        background_pps: 50_000,
        spike_multiplier: 10,
        spike_start_range: (400_000_000, 500_000_000),
        duration: 1_000_000_000,
        seed: 13,
        ..SpikeWorkload::default()
    };
    let (schedule, truth) = workload.generate();
    let servers = workload.destinations();
    println!(
        "workload: {} packets over {} servers; imbalance toward {} from t = {:.2}s",
        schedule.len(),
        servers.len(),
        truth.spike_dest,
        truth.spike_start as f64 / 1e9
    );

    // One frequency cell per server.
    let mut shares = FrequencyDist::new(0, servers.len() as i64 - 1).expect("domain");
    let index_of = |ip: Ipv4Addr| servers.iter().position(|s| *s == ip);

    let mut detected: Option<(u64, usize)> = None;
    for (t, frame) in &schedule {
        let eth = EthernetFrame::new_checked(&frame[..]).expect("frame");
        let ip = Ipv4Packet::new_checked(eth.payload()).expect("ip");
        let Some(idx) = index_of(ip.dst()) else {
            continue;
        };
        shares.observe(idx as i64).expect("in domain");
        // The integer imbalance test with a relative margin (an eighth
        // of the total), mirroring the in-switch check.
        let f = shares.frequency(idx as i64);
        let n = shares.n_distinct();
        // Warm-up gate: Poisson noise on per-server counts shrinks as
        // 1/sqrt(mean), so judge only once the pool has ~300 packets per
        // server on average; below that the 2-sigma + 12.5% band is
        // narrower than the natural noise.
        if n >= 30 && shares.xsum() >= 10_000 {
            let margin = (shares.xsum() >> 3).max(4);
            let bound =
                u128::from(shares.xsum()) + 2 * u128::from(shares.sd_nx()) + u128::from(margin);
            if u128::from(n) * u128::from(f) > bound {
                detected = Some((*t, idx));
                break;
            }
        }
    }

    match detected {
        Some((t, idx)) => {
            let guilty = servers[idx];
            println!(
                "imbalance detected at t = {:.3}s toward {guilty} — {}",
                t as f64 / 1e9,
                if guilty == truth.spike_dest {
                    "CORRECT server identified"
                } else {
                    "wrong server"
                }
            );
            assert!(t >= truth.spike_start, "no false positive before the skew");
            assert_eq!(guilty, truth.spike_dest);
            let lag_ms = (t - truth.spike_start) as f64 / 1e6;
            println!("detection lag after the skew began: {lag_ms:.1} ms");
        }
        None => {
            println!("no imbalance detected");
            std::process::exit(1);
        }
    }
}
