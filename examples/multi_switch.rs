//! Network-wide monitoring with two switches (paper future work:
//! "possibly performing statistical analyses across multiple
//! switches"): each switch runs the case-study rate monitor for its own
//! half of the address space and pushes alerts to one shared
//! controller, which localises the anomaly to a switch without polling
//! either.
//!
//! ```text
//! cargo run --example multi_switch --release
//! ```

use netsim::host::{SinkHost, TraceGen, TrafficSource};
use netsim::{P4SwitchNode, RecordingController, Simulation, MICROS, MILLIS};
use stat4_p4::{CaseStudyApp, CaseStudyParams, Stat4Config, DIGEST_SPIKE};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use workloads::SpikeWorkload;

fn main() {
    let params = CaseStudyParams {
        interval_log2: 21, // ~2.1 ms
        window_size: 32,
        min_intervals: 8,
        config: Stat4Config {
            counter_num: 2,
            counter_size: 256,
            width_bits: 64,
        },
        // Switch A monitors 10/8, switch B monitors 11/8.
        ..CaseStudyParams::default()
    };
    let interval_ns = 1u64 << params.interval_log2;

    // Two workloads: quiet traffic through switch A, a spike through B.
    let quiet = SpikeWorkload {
        net: 10,
        background_pps: 20_000,
        spike_start_range: (u64::MAX - 2, u64::MAX - 1), // never
        duration: 60 * interval_ns,
        seed: 2,
        ..SpikeWorkload::default()
    };
    let spiky = SpikeWorkload {
        net: 11,
        background_pps: 20_000,
        spike_multiplier: 10,
        spike_start_range: (30 * interval_ns, 31 * interval_ns),
        duration: 60 * interval_ns,
        seed: 3,
        ..SpikeWorkload::default()
    };
    let (sched_a, _) = quiet.generate();
    let (sched_b, truth_b) = spiky.generate();

    let app_a = CaseStudyApp::build(CaseStudyParams {
        monitored_prefix: (0x0a00_0000, 8),
        ..params
    })
    .expect("builds");
    let app_b = CaseStudyApp::build(CaseStudyParams {
        monitored_prefix: (0x0b00_0000, 8),
        ..params
    })
    .expect("builds");

    let mut sim = Simulation::new();
    let controller = sim.add_node(Box::new(RecordingController::new()));
    let src_a = sim.add_node(Box::new(TrafficSource::new(Box::new(TraceGen::new(
        sched_a,
    )))));
    let src_b = sim.add_node(Box::new(TrafficSource::new(Box::new(TraceGen::new(
        sched_b,
    )))));
    let sink = sim.add_node(Box::new(SinkHost::new(Arc::new(AtomicU64::new(0)))));
    let sw_a = sim.add_node(Box::new(
        P4SwitchNode::new(app_a.pipeline).with_controller(controller),
    ));
    let sw_b = sim.add_node(Box::new(
        P4SwitchNode::new(app_b.pipeline).with_controller(controller),
    ));
    sim.connect(src_a, 0, sw_a, 0, 20 * MICROS);
    sim.connect(src_b, 0, sw_b, 0, 20 * MICROS);
    sim.connect(sw_a, 1, sink, 0, 20 * MICROS);
    sim.connect(sw_b, 1, sink, 1, 20 * MICROS);
    sim.connect_control(sw_a, controller, 2 * MILLIS);
    sim.connect_control(sw_b, controller, 2 * MILLIS);
    sim.run();

    let rec = sim
        .node_as::<RecordingController>(controller)
        .expect("controller");
    let spikes: Vec<_> = rec
        .digests
        .iter()
        .filter(|(_, _, d)| d.id == DIGEST_SPIKE)
        .collect();
    println!(
        "controller received {} digests total, {} spike alerts",
        rec.digests.len(),
        spikes.len()
    );
    for (at, from, d) in &spikes {
        println!(
            "  t = {:.3}s  from switch node {}  interval_count = {}",
            *at as f64 / 1e9,
            from,
            d.values[0]
        );
    }
    assert!(!spikes.is_empty(), "the spike must surface");
    assert!(
        spikes.iter().all(|(_, from, _)| *from == sw_b),
        "every spike alert names the spiky switch"
    );
    println!(
        "\nanomaly localised to switch {} (the one fronting 11/8, spiked at t = {:.3}s) — \
         network-wide view without polling.",
        sw_b,
        truth_b.spike_start as f64 / 1e9
    );
}
