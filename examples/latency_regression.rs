//! Percentile change-rate monitoring (paper Sec. 2: "we can track
//! values and change rates of percentiles, which may be indicative of
//! anomalies"): a service's response-time distribution degrades — the
//! *volume* of traffic is unchanged, so rate checks stay silent, but
//! the median marker goes on a long walk and its movement rate spikes.
//!
//! ```text
//! cargo run --example latency_regression --release
//! ```

use anomaly::shift::{PercentileShiftDetector, ShiftConfig};
use rand::Rng;
use stat4_core::percentile::Quantile;

fn main() {
    let mut rng = workloads::rng(31);
    let mut detector = PercentileShiftDetector::new(ShiftConfig {
        quantile: Quantile::median(),
        domain: (0, 1023),
        interval_ns: 10_000_000, // 10 ms
        window: 32,
        k: 2,
        min_intervals: 10,
    });

    // Healthy service: response times ~ uniform(80..120) µs-equivalents,
    // ~10k observations/second.
    let mut t = 0u64;
    println!("healthy phase: median response ≈ 100 for 0.5 s");
    for _ in 0..5_000 {
        detector.observe(t, rng.random_range(80..120));
        t += 100_000;
    }
    assert!(
        detector.detected_at.is_none(),
        "no false alarms in the healthy phase: {:?}",
        detector.alerts
    );
    println!(
        "  median estimate: {:?}, no alerts",
        detector.estimate()
    );

    // Regression: a dependency slows down; the distribution shifts to
    // ~uniform(260..340). Same observation rate.
    let regression_at = t;
    println!(
        "\nregression at t = {:.2}s: median jumps to ≈ 300 (volume unchanged)",
        regression_at as f64 / 1e9
    );
    for _ in 0..10_000 {
        detector.observe(t, rng.random_range(260..340));
        t += 100_000;
    }

    match detector.detected_at {
        Some(at) => {
            println!(
                "ALERT at t = {:.3}s — {:.1} ms after the regression began",
                at as f64 / 1e9,
                (at - regression_at) as f64 / 1e6
            );
            println!(
                "median marker now at {:?} (walked from ~100 to ~300, one cell per packet)",
                detector.estimate()
            );
            assert!(at >= regression_at, "no false positive");
        }
        None => {
            println!("regression NOT detected");
            std::process::exit(1);
        }
    }
    println!(
        "\nthe rate-based checks never fire here (volume is constant) — the percentile \
         change-rate signal is what catches shape-only anomalies."
    );
}
