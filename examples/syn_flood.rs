//! SYN-flood detection (paper Table 1): legitimate TCP traffic, then a
//! storm of spoofed SYNs at one server; the detector flags the flood
//! via the SYN share of the packet-kind frequency distribution and the
//! SYN rate window — both integer-only Stat4 checks.
//!
//! ```text
//! cargo run --example syn_flood --release
//! ```

use anomaly::synflood::{SynFloodConfig, SynFloodDetector, KIND_SYN};
use packet::{EthernetFrame, Ipv4Packet, TcpSegment};
use workloads::SynFloodWorkload;

fn kind_of(frame: &[u8]) -> i64 {
    let eth = EthernetFrame::new_checked(frame).expect("frame");
    let ip = Ipv4Packet::new_checked(eth.payload()).expect("ip");
    match TcpSegment::new_checked(ip.payload()) {
        Ok(t) if t.syn() && !t.ack() => KIND_SYN,
        Ok(_) => 0,
        Err(_) => 2,
    }
}

fn main() {
    let workload = SynFloodWorkload {
        servers: 8,
        background_cps: 2_000,
        flood_pps: 100_000,
        flood_start: 1_000_000_000,
        duration: 2_000_000_000,
        seed: 42,
    };
    let (schedule, victim) = workload.generate();
    println!(
        "workload: {} packets; flood of {} SYN/s at {victim} from t = {:.1}s",
        schedule.len(),
        workload.flood_pps,
        workload.flood_start as f64 / 1e9
    );

    let mut detector = SynFloodDetector::new(SynFloodConfig::default());
    for (t, frame) in &schedule {
        if let Some(alert) = detector.observe(*t, kind_of(frame)) {
            println!("ALERT at t = {:.3}s: {alert:?}", alert.at() as f64 / 1e9);
            break;
        }
    }
    match detector.detected_at {
        Some(at) => {
            let lag_ms = (at - workload.flood_start) as f64 / 1e6;
            println!(
                "flood detected {lag_ms:.1} ms after onset ({} alerts total would follow)",
                detector.alerts.len()
            );
            assert!(at >= workload.flood_start, "no false positives");
        }
        None => {
            println!("flood NOT detected");
            std::process::exit(1);
        }
    }
}
