//! The paper's case study, end to end: a volumetric spike hits one of
//! 36 destinations behind a P4 switch; the switch detects the spike
//! in-dataplane within one interval and the controller drills down to
//! the victim by editing binding tables.
//!
//! ```text
//! cargo run --example ddos_drilldown --release
//! ```

use anomaly::drilldown::{DrilldownController, DrilldownPhase, DrilldownTopology};
use netsim::host::{SinkHost, TraceGen, TrafficSource};
use netsim::{P4SwitchNode, Simulation, MICROS, MILLIS, SECONDS};
use stat4_p4::{CaseStudyApp, CaseStudyParams, Stat4Config};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use workloads::SpikeWorkload;

fn main() {
    // ~8.4 ms intervals, 100-interval window: the paper's defaults.
    let params = CaseStudyParams {
        interval_log2: 23,
        window_size: 100,
        min_intervals: 16,
        config: Stat4Config {
            counter_num: 2,
            counter_size: 256,
            width_bits: 64,
        },
        ..CaseStudyParams::default()
    };
    let interval_ns = 1u64 << params.interval_log2;
    let workload = SpikeWorkload {
        background_pps: 20_000,
        spike_multiplier: 10,
        spike_start_range: (25 * interval_ns, 26 * interval_ns),
        duration: 25 * interval_ns + 4 * SECONDS,
        seed: 7,
        ..SpikeWorkload::default()
    };
    let (schedule, truth) = workload.generate();
    println!(
        "workload: {} packets; spike of 10x onto {} at t = {:.3}s",
        schedule.len(),
        truth.spike_dest,
        truth.spike_start as f64 / 1e9
    );

    let app = CaseStudyApp::build(params).expect("app builds");
    let handles = app.handles();
    let mut sim = Simulation::new();
    let source = sim.add_node(Box::new(TrafficSource::new(Box::new(TraceGen::new(
        schedule,
    )))));
    let sink = sim.add_node(Box::new(SinkHost::new(Arc::new(AtomicU64::new(0)))));
    let switch = sim.add_node(Box::new(P4SwitchNode::new(app.pipeline)));
    let controller = sim.add_node(Box::new(DrilldownController::new(
        handles,
        switch,
        DrilldownTopology {
            net: 10,
            subnets: 6,
            hosts_per_subnet: 6,
        },
    )));
    sim.node_as_mut::<P4SwitchNode>(switch)
        .expect("switch")
        .controller = Some(controller);
    sim.connect(source, 0, switch, 0, 20 * MICROS);
    sim.connect(switch, 1, sink, 0, 20 * MICROS);
    // Control-plane one-way latency: 400 ms, modelling bmv2 digest
    // handling + P4Runtime updates.
    sim.connect_control(switch, controller, 400 * MILLIS);
    sim.run();

    let ctl = sim
        .node_as::<DrilldownController>(controller)
        .expect("controller");
    println!("\ncontroller timeline:");
    for alert in &ctl.alerts {
        println!("  t = {:>8.3}s  {alert:?}", alert.at() as f64 / 1e9);
    }
    match ctl.phase {
        DrilldownPhase::Done { dest } => {
            let ok = dest == truth.spike_dest;
            println!(
                "\npinpointed {dest} — {}",
                if ok { "CORRECT" } else { "WRONG" }
            );
            if let Some(lat) = ctl.report.pinpoint_latency() {
                println!(
                    "pinpoint latency (spike alert -> destination): {:.2}s (paper: 2-3s)",
                    lat as f64 / 1e9
                );
            }
            assert!(ok);
        }
        other => {
            println!("\ndrill-down incomplete: {other:?}");
            std::process::exit(1);
        }
    }
}
