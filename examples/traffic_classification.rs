//! Traffic-composition drift (paper Table 1: "traffic classification —
//! correctness, packets by type"): the mix of TCP data / SYN / UDP /
//! QUIC shifts mid-stream, the situation that silently invalidates an
//! in-network ML classifier; the windowed per-kind rate check flags it.
//!
//! ```text
//! cargo run --example traffic_classification --release
//! ```

use anomaly::classify::{DriftConfig, DriftMonitor};
use workloads::{PacketKind, PacketMixWorkload};

fn main() {
    let workload = PacketMixWorkload {
        weights_before: [70, 5, 15, 10],
        weights_after: [30, 5, 15, 50], // QUIC surges, TCP data halves
        shift_at: 300_000_000,
        packets: 60_000,
        gap_ns: 10_000,
        seed: 21,
    };
    let (schedule, kinds) = workload.generate();
    println!(
        "workload: {} packets; composition shift at t = {:.2}s (QUIC 10% -> 50%)",
        schedule.len(),
        workload.shift_at as f64 / 1e9
    );

    let mut monitor = DriftMonitor::new(DriftConfig {
        kinds: 4,
        interval_ns: 10_000_000,
        window: 20,
        k: 4,
        min_intervals: 10,
    });
    for ((t, _), kind) in schedule.iter().zip(&kinds) {
        monitor.observe(*t, kind.index());
    }

    match monitor.detected_at {
        Some(at) => {
            println!(
                "drift detected at t = {:.3}s ({:.1} ms after the shift)",
                at as f64 / 1e9,
                (at.saturating_sub(workload.shift_at)) as f64 / 1e6
            );
            let names = ["TcpData", "TcpSyn", "Udp", "Quic"];
            for k in monitor.drifted_kinds() {
                println!("  drifting kind: {}", names.get(k).unwrap_or(&"?"));
            }
            assert!(at >= workload.shift_at, "no false positives");
            assert!(
                monitor.drifted_kinds().contains(&PacketKind::Quic.index())
                    || monitor
                        .drifted_kinds()
                        .contains(&PacketKind::TcpData.index())
            );
        }
        None => {
            println!("no drift detected");
            std::process::exit(1);
        }
    }
}
