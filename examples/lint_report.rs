//! Compile-time verification of a data-plane program, end to end.
//!
//! ```text
//! cargo run --example lint_report
//! ```
//!
//! Builds the echo validation app twice — the bmv2 prototype with exact
//! multiplication, and the hardware variant with the unrolled shift-add
//! multiplier — and runs the p4sim verifier on both. Then does what a
//! porting engineer would: takes the bmv2-built prototype and re-checks
//! it against the Tofino-like target with [`p4sim::verify_against`],
//! showing the exact lint findings that block a naive port.

use p4sim::{verify, verify_against, Severity, TargetModel};
use stat4_p4::echo::VarianceMode;
use stat4_p4::{EchoApp, Stat4Config};

fn main() {
    let cfg = Stat4Config::default();

    println!("== echo app on its own targets ==\n");
    let sw = EchoApp::build(&cfg).expect("bmv2 build");
    println!("{}\n", verify(&sw.pipeline));

    let hw = EchoApp::build_with(
        &cfg,
        TargetModel::tofino_like(),
        VarianceMode::UnrolledShiftAdd { bits: 16 },
    )
    .expect("tofino build");
    println!("{}\n", verify(&hw.pipeline));

    println!("== porting check: the bmv2 prototype vetted for hardware ==\n");
    let port = verify_against(&sw.pipeline, &TargetModel::tofino_like());
    println!("{port}\n");
    let blockers = port
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    println!(
        "verdict: {} — {blockers} blocking finding(s); the shift-add \
         variance mode exists to clear them",
        if port.passes(false) { "portable as-is" } else { "NOT portable as-is" },
    );
}
