//! Offline vendored subset of `parking_lot`, backed by `std::sync`.
//!
//! Matches the parking_lot calling convention the workspace uses:
//! `lock()` / `read()` / `write()` return guards directly (no poison
//! `Result`). A poisoned std lock is recovered transparently — panics
//! while holding a lock propagate from the panicking thread anyway, so
//! no error is hidden.

/// Mutex with parking_lot's panic-free `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// RwLock with parking_lot's panic-free `read`/`write`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicking holder");
    }
}
