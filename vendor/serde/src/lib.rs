//! Offline vendored facade for `serde`.
//!
//! Re-exports the no-op derive macros from the vendored `serde_derive`
//! so `use serde::{Serialize, Deserialize}` plus `#[derive(...)]`
//! compiles exactly as with the real crate. No serialisation machinery
//! exists — nothing in this workspace serialises; the derives document
//! intent for downstream consumers who link the real serde.

pub use serde_derive::{Deserialize, Serialize};
