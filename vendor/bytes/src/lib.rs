//! Offline vendored subset of the `bytes` crate.
//!
//! The container image this workspace builds in has no network access to
//! crates.io, so the few `bytes` APIs the workspace actually uses are
//! reimplemented here: a cheaply clonable, immutable byte buffer. The
//! semantics match the real crate for the covered surface (`new`,
//! `from_static`, `From<Vec<u8>>`, `Deref<Target = [u8]>`, equality by
//! content); anything else is intentionally absent so accidental use of
//! unvendored API fails at compile time rather than diverging silently.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes(Inner);

#[derive(Clone)]
enum Inner {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer; does not allocate.
    #[must_use]
    pub const fn new() -> Self {
        Bytes(Inner::Static(&[]))
    }

    /// Wraps a static slice without copying.
    #[must_use]
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Inner::Static(bytes))
    }

    /// Copies `data` into a new shared buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Inner::Shared(Arc::from(data)))
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True if the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Inner::Static(s) => s,
            Inner::Shared(s) => s,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Inner::Shared(Arc::from(v.into_boxed_slice())))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_static(s)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_shared_agree() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(&a[1..3], b"el");
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn empty() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default().len(), 0);
    }
}
