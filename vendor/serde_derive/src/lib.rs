//! No-op stand-ins for serde's `Serialize` / `Deserialize` derives.
//!
//! This workspace annotates types with serde derives for downstream
//! consumers, but nothing in-tree serialises: there is no serde_json /
//! bincode dependency, and the build environment cannot fetch the real
//! serde. These derives accept the same attribute grammar (including
//! `#[serde(...)]` helper attributes) and expand to nothing, so the
//! annotations compile without pulling in a serialisation framework.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
