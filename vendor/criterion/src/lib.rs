//! Offline vendored micro-benchmark harness.
//!
//! Source-compatible with the subset of criterion this workspace's
//! benches use (`criterion_group!` / `criterion_main!`, `Criterion`,
//! benchmark groups, `iter`, `iter_batched_ref`, `BatchSize`). Instead
//! of criterion's statistical machinery it runs a warm-up, then timed
//! samples, and reports the median and min/max time per iteration on
//! stdout — enough to compare variants and spot regressions by eye,
//! with no external dependencies.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Batch sizing hints (accepted for compatibility; batching is always
/// per-iteration in this vendored harness).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Setup output per batch of iterations.
    PerIteration,
}

/// The timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    measurement: Duration,
    warm_up: Duration,
    /// Measured per-iteration times, nanoseconds.
    results_ns: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize, measurement: Duration, warm_up: Duration) -> Self {
        Self {
            samples,
            measurement,
            warm_up,
            results_ns: Vec::new(),
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, counting
        // iterations to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            std_black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget_per_sample = self.measurement.as_secs_f64() / self.samples as f64;
        let batch = ((budget_per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let dt = t0.elapsed().as_secs_f64();
            self.results_ns.push(dt * 1e9 / batch as f64);
        }
    }

    /// Times `routine` over a fresh `setup()` value each batch, passed
    /// by mutable reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            let mut input = setup();
            std_black_box(routine(&mut input));
            warm_iters += 1;
        }
        for _ in 0..self.samples {
            let mut input = setup();
            let t0 = Instant::now();
            std_black_box(routine(&mut input));
            self.results_ns.push(t0.elapsed().as_secs_f64() * 1e9);
        }
    }

    /// Times `routine` over a fresh `setup()` value each batch, passed
    /// by value.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            std_black_box(routine(setup()));
            warm_iters += 1;
        }
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            std_black_box(routine(input));
            self.results_ns.push(t0.elapsed().as_secs_f64() * 1e9);
        }
    }

    fn report(&mut self, name: &str) {
        if self.results_ns.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        self.results_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        let median = self.results_ns[self.results_ns.len() / 2];
        let lo = self.results_ns[0];
        let hi = self.results_ns[self.results_ns.len() - 1];
        println!(
            "{name:<44} time: [{} {} {}]",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// The top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement: Duration::from_millis(500),
            warm_up: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Accepted for compatibility; this harness reads no CLI arguments.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.measurement, self.warm_up);
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let mut b = Bencher::new(
            self.criterion.sample_size,
            self.criterion.measurement,
            self.criterion.warm_up,
        );
        f(&mut b);
        b.report(&full);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, either positionally or with
/// `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_runs() {
        let mut c = quick();
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_batched() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.bench_function("batched", |b| {
            b.iter_batched_ref(|| vec![1u64; 8], |v| v.iter().sum::<u64>(), BatchSize::SmallInput);
        });
        g.finish();
    }

    criterion_group!(positional, noop_bench);
    criterion_group! {
        name = configured;
        config = quick();
        targets = noop_bench,
    }

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("macro_noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn macros_compose() {
        positional();
        configured();
    }
}
