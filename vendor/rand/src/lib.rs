//! Offline vendored subset of the `rand` 0.9 API.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements exactly the surface the workspace uses:
//!
//! - [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! - [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64 — *not* the
//!   upstream ChaCha12, but every consumer in this workspace only relies
//!   on determinism-for-a-seed, not on a particular stream),
//! - `Rng::random_range` over integer `Range` / `RangeInclusive`,
//! - `Rng::random` for the primitive types the workloads draw.
//!
//! Streams are deterministic per seed and stable across runs, which is
//! the property the seeded workload generators and tests depend on.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let v = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&v[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface.
pub trait SeedableRng: Sized {
    /// Constructs a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws from `[0, span)` without modulo bias using a widening multiply.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire's method, one rejection loop for exactness.
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = if span > u128::from(u64::MAX) {
                    rng.next_u64()
                } else {
                    uniform_below(rng, span as u64)
                };
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level drawing interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from an integer range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform draw of a primitive value.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64.
    ///
    /// Upstream's `StdRng` is ChaCha12; only the determinism contract is
    /// relied upon here, not the stream values.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: this vendored build has a single generator.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn all_values_reachable() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
