//! Offline vendored mini property-testing framework.
//!
//! The build environment cannot fetch the real `proptest`, so this crate
//! provides a source-compatible subset of its surface, sized to what the
//! workspace's tests use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`],
//! - integer range strategies (`0u64..48`, `-255i64..=255`),
//! - [`any`]`::<T>()` for primitives,
//! - tuple strategies,
//! - [`collection::vec`].
//!
//! **Deliberately absent:** shrinking and persistence. On failure the
//! panic message includes the generated inputs (`Debug`) and the case
//! seed so a failing case can be reproduced by rerunning the test (the
//! stream is deterministic per test name).

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Failure raised by `prop_assert!` and friends.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type each property body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic source of randomness for strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator (SplitMix64-expanded xoshiro256++).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Unbiased draw from `[0, span)`.
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(span);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A generator of random values (no shrinking in this vendored build).
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = if span > u128::from(u64::MAX) {
                    rng.next_u64()
                } else {
                    rng.below(span as u64)
                };
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `Just` — always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt;
    use std::ops::{Range, RangeInclusive};

    /// Length distribution for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, 0..200)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test module needs.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Stable 64-bit FNV-1a over the test name: per-test deterministic seed.
#[doc(hidden)]
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Declares property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(128))]
///     #[test]
///     fn prop(x in 0u64..10, v in proptest::collection::vec(0i64..5, 0..20)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::seed_from_u64(
                    seed ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let result: $crate::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    {
                        Ok(())
                    }
                })();
                if let Err(e) = result {
                    let inputs = format!(
                        concat!($("\n    ", stringify!($arg), " = {:?}",)+),
                        $(&$arg,)+
                    );
                    panic!(
                        "proptest {} failed at case {case}/{}: {e}\n  inputs:{inputs}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) so the harness can report the inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_respected(x in 3u64..10, y in -5i64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn vectors_sized(v in collection::vec(0u8..=255, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
        }

        #[test]
        fn tuples_compose(pair in (any::<u32>(), 1u8..=32)) {
            prop_assert!(pair.1 >= 1);
            prop_assert_eq!(u64::from(pair.0), u64::from(pair.0));
        }

        #[test]
        fn early_ok_return_supported(flag in any::<bool>()) {
            if flag {
                return Ok(());
            }
            prop_assert!(!flag);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::seed_from_u64(super::seed_for("x"));
        let mut b = TestRng::seed_from_u64(super::seed_for("x"));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    #[allow(unnameable_test_items)]
    fn failure_reports_inputs() {
        proptest! {
            #[test]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
